"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``info``
    List the machine presets and their calibrated specs.
``factor``
    Run one fault-tolerant factorization (real or shadow mode), optionally
    with an injected fault, and print the run report.
``capability``
    Regenerate a Table VII/VIII-style capability table for a machine/size.
``overhead``
    Sweep relative overhead of a scheme across the paper's sizes.
``analyze-trace``
    Statically check a schedule (a dumped trace or a fresh shadow run)
    against the ABFT protocol invariants and scan it for RAW/WAW hazards.
``lint``
    Run the repo lint rules over source trees: the classic AST tier
    (RPL001–RPL009) and, with ``--flow``, the flow-sensitive tier
    (RPL101–RPL103: CFG + dataflow + call graph).  ``--format sarif``
    emits SARIF 2.1.0 for CI annotation consumers.
``bench``
    Benchmark the verification hot path (batched engine vs per-tile
    loop) plus the tile-DAG runtime (serial vs threaded with lookahead)
    and write ``BENCH_hotpath.json``.
``serve``
    Run the async fault-tolerant solve service against a synthetic or
    stdin (JSONL) job stream; print metrics when the stream drains.
``loadgen``
    Drive the service with a Poisson open-loop or closed-loop workload
    and print a latency/throughput report.  ``--cluster N`` drives an
    N-shard cluster instead (optionally killing a shard mid-run).
``cluster``
    Operate the sharded cluster front-end: ``start`` N shard processes
    behind a consistent-hash router, ``status``/``drain`` a running
    cluster via its manifest, and ``bench`` throughput scaling vs a
    single shard (writes ``BENCH_cluster.json``).
``chaos``
    Run the chaos campaign: system-level fault scenarios (worker kill,
    wedge, shm corruption, queue flood, kill-and-restart recovery …)
    against the service with per-scenario invariants; writes
    ``BENCH_chaos.json`` and exits nonzero on any violation.
(Regenerating every paper figure is ``python examples/paper_figures.py``.)
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.blas.spd import random_spd
from repro.core import AbftConfig, enhanced_potrf, offline_potrf, online_potrf
from repro.experiments import capability
from repro.experiments.common import overhead_sweep, sweep_for
from repro.faults.injector import no_faults, single_computing_fault, single_storage_fault
from repro.hetero.machine import Machine
from repro.hetero.spec import PRESETS
from repro.magma.host import factorization_residual
from repro.util.exceptions import ValidationError
from repro.util.formatting import render_series, render_table

_SCHEMES = {
    "offline": offline_potrf,
    "online": online_potrf,
    "enhanced": enhanced_potrf,
}


def _parse_injection(text: str | None):
    """Parse ``storage:i,j@it`` / ``computing:i,j@it`` fault specs."""
    if text is None:
        return no_faults()
    try:
        kind, rest = text.split(":", 1)
        coords, iteration = rest.split("@", 1)
        i, j = (int(v) for v in coords.split(","))
        it = int(iteration)
    except ValueError as exc:
        raise SystemExit(
            f"bad --inject spec {text!r}; expected kind:i,j@iteration"
        ) from exc
    if kind == "storage":
        return single_storage_fault(block=(i, j), iteration=it)
    if kind == "computing":
        return single_computing_fault(block=(i, j), iteration=it)
    raise SystemExit(f"unknown fault kind {kind!r} (storage|computing)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine", default="tardis", choices=sorted(PRESETS), help="testbed preset"
    )
    parser.add_argument("--block-size", type=int, default=None)


def cmd_info(_args: argparse.Namespace) -> int:
    rows = []
    for spec in PRESETS.values():
        rows.append(
            (
                spec.name,
                spec.gpu.name,
                f"{spec.gpu.peak_gflops:.0f}",
                spec.gpu.max_concurrent_kernels,
                spec.cpu.name,
                f"{spec.link.bandwidth_gbs:.0f} GB/s",
                spec.default_block_size,
            )
        )
    print(
        render_table(
            ["machine", "gpu", "peak GF", "queues", "cpu", "pcie", "B"],
            rows,
            title="machine presets (calibrated to the paper's testbeds)",
        )
    )
    return 0


def cmd_factor(args: argparse.Namespace) -> int:
    machine = Machine.preset(args.machine)
    potrf = _SCHEMES[args.scheme]
    config = AbftConfig(
        verify_interval=args.k,
        recalc_streams=args.streams,
        updating_placement=args.placement,
    )
    injector = _parse_injection(args.inject)
    if args.shadow:
        res = potrf(
            machine,
            n=args.n,
            block_size=args.block_size,
            config=config,
            injector=injector,
            numerics="shadow",
        )
        residual = None
    else:
        a = random_spd(args.n, rng=args.seed)
        pristine = a.copy()
        res = potrf(
            machine,
            a=a,
            block_size=args.block_size,
            config=config,
            injector=injector,
        )
        residual = factorization_residual(pristine, res.factor)

    print(f"scheme={res.scheme} machine={res.machine} n={res.n} B={res.block_size}")
    print(f"simulated time : {res.makespan:.6f} s  ({res.gflops:.1f} GFLOPS)")
    print(f"restarts       : {res.restarts}")
    print(f"placement      : {res.placement}")
    print(
        f"verification   : {res.stats.tiles_verified} tiles, "
        f"{res.stats.data_corrections} data corrections, "
        f"{res.stats.checksum_corrections} checksum repairs"
    )
    if residual is not None:
        print(f"residual       : {residual:.3e}")
    return 0


def cmd_capability(args: argparse.Namespace) -> int:
    res = capability.run(args.machine, args.n, block_size=args.block_size)
    print(res.render(f"capability — {args.machine}, n={args.n}"))
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    config = AbftConfig(verify_interval=args.k)
    sizes = tuple(args.sizes) if args.sizes else sweep_for(args.machine)
    series = {}
    for scheme in args.schemes:
        _, ys = overhead_sweep(args.machine, scheme, config, sizes)
        series[scheme] = ys
    print(
        render_series(
            "n",
            list(sizes),
            series,
            title=f"relative overhead — {args.machine}, K={args.k}",
        )
    )
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.experiments import latency

    res = latency.run(args.machine, args.n, block_size=args.block_size)
    print(res.render(f"detection latency — {args.machine}, n={args.n}"))
    return 0


def cmd_kpolicy(args: argparse.Namespace) -> int:
    from repro.experiments import kpolicy

    res = kpolicy.run(args.machine, args.n, rates=tuple(args.rates))
    print(res.render(f"optimal K vs fault rate — {args.machine}, n={args.n}"))
    for rate in args.rates:
        print(f"rate {rate:g} faults/GB/s -> K = {res.optimal_k(rate)}")
    return 0


def cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.analysis import check_protocol, find_hazards, render_json, render_text
    from repro.analysis.trace_io import dump_trace, load_trace

    if args.trace is not None:
        timeline, scheme = load_trace(args.trace)
        scheme = args.scheme or scheme
        title = f"analyze-trace {args.trace} [{scheme}]"
    else:
        scheme = args.scheme or "enhanced"
        machine = Machine.preset(args.machine)
        res = _SCHEMES[scheme](
            machine,
            n=args.n,
            block_size=args.block_size,
            config=AbftConfig(verify_interval=args.k),
            numerics="shadow",
        )
        timeline = res.timeline
        title = f"analyze-trace {scheme} n={args.n} ({args.machine})"
        if args.dump:
            dump_trace(timeline, scheme, args.dump)

    findings = check_protocol(timeline, scheme)
    findings += find_hazards(timeline)
    render = render_json if args.json else render_text
    print(render(findings, title=title))
    return 1 if any(f.severity == "error" for f in findings) else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import render_json, render_text
    from repro.analysis.lint import RULES, run_lint

    paths = args.paths or [Path(__file__).parent]
    tiers = ("classic", "flow") if args.flow else ("classic",)
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    findings = run_lint(paths, select=args.select, tiers=tiers, cache_dir=cache_dir)
    fmt = args.format or ("json" if args.json else "text")
    if fmt == "sarif":
        from repro.analysis.sarif import render_sarif

        ran = {
            rule.id: rule.description
            for rule in RULES.values()
            if (args.select and rule.id in args.select)
            or (not args.select and rule.tier in tiers)
        }
        print(render_sarif(findings, ran))
    else:
        render = render_json if fmt == "json" else render_text
        print(render(findings, title="lint"))
    return 1 if findings else 0


def _service_from_args(args: argparse.Namespace):
    from repro.service import RetryPolicy, ServiceConfig, SolveService

    config = ServiceConfig(
        workers=tuple(args.workers),
        max_queue_depth=args.max_depth,
        job_timeout_s=args.job_timeout,
        retry=RetryPolicy(max_retries=args.max_retries),
        trace_dir=args.trace_dir,
        executor=args.executor,
        exec_workers=args.exec_workers,
        batch_max=args.batch_max,
        batch_linger_s=args.batch_linger,
        intra_workers=args.intra_workers,
    )
    return SolveService(config)


def _write_service_outputs(service, args: argparse.Namespace) -> None:
    if args.metrics_out:
        from pathlib import Path

        Path(args.metrics_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.metrics_out).write_text(service.metrics.to_json() + "\n")
        print(f"metrics JSON written to {args.metrics_out}")
    if args.prometheus_out:
        from pathlib import Path

        Path(args.prometheus_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.prometheus_out).write_text(service.metrics.to_prometheus())
        print(f"Prometheus metrics written to {args.prometheus_out}")


def _jobs_from_stdin(args: argparse.Namespace) -> list:
    """Parse one job per JSONL line: {"n": 96, "scheme": ..., "priority": ...}."""
    import json

    from repro.service import Job

    jobs = []
    for index, line in enumerate(sys.stdin):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"stdin line {index + 1}: not valid JSON ({exc})") from exc
        injector = None
        if raw.get("inject"):
            injector = _parse_injection(str(raw["inject"]))
        scheme = str(raw.get("scheme", args.scheme))
        # the --intra-workers default only applies to dag jobs; other
        # schemes are single-threaded and reject intra_workers > 1
        intra_default = args.intra_workers if scheme == "dag" else 1
        jobs.append(
            Job(
                job_id=int(raw.get("id", len(jobs))),
                n=int(raw.get("n", 96)),
                scheme=scheme,
                priority=raw.get("priority", "batch"),
                block_size=int(raw["block_size"]) if raw.get("block_size") else args.block_size,
                numerics=str(raw.get("numerics", "real")),
                seed=int(raw.get("seed", args.seed)),
                injector=injector,
                intra_workers=int(raw.get("intra_workers", intra_default)),
            )
        )
    return jobs


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import LoadGenConfig, LoadReport, make_jobs
    from repro.service.job import JobStatus

    service = _service_from_args(args)
    if args.synthetic is not None:
        cfg = LoadGenConfig(
            jobs=args.synthetic,
            sizes=tuple(args.sizes),
            block_size=args.block_size,
            scheme=args.scheme,
            fault_prob=args.fault_prob,
            seed=args.seed,
            intra_workers=args.intra_workers,
        )
        jobs = make_jobs(cfg)
    else:
        jobs = _jobs_from_stdin(args)
    if not jobs:
        print("no jobs to serve", file=sys.stderr)
        return 2

    async def drive() -> None:
        import time

        await service.start_executor()  # pool spawn is not billed to job 0
        service.start()
        t0 = time.monotonic()
        for job in jobs:
            decision = service.submit(job)
            while not decision.accepted and not service.queue.closed:
                await asyncio.sleep(decision.retry_after_s or 0.01)
                decision = service.submit(job)
        await service.stop()
        print(LoadReport.from_service(service, time.monotonic() - t0).render("serve report"))

    asyncio.run(drive())
    _write_service_outputs(service, args)
    failed = [r for r in service.results.values() if r.status is JobStatus.FAILED]
    return 1 if failed else 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import LoadGenConfig, run_load
    from repro.service.job import JobStatus

    if args.cluster:
        return _cmd_loadgen_cluster(args)
    service = _service_from_args(args)
    cfg = LoadGenConfig(
        jobs=args.jobs,
        sizes=tuple(args.sizes),
        block_size=args.block_size,
        scheme=args.scheme,
        fault_prob=args.fault_prob,
        fault_kind=args.fault_kind,
        seed=args.seed,
        rate=args.rate,
        concurrency=args.closed,
        intra_workers=args.intra_workers,
    )
    report, results = asyncio.run(run_load(service, cfg))
    if args.json:
        import dataclasses
        import json

        print(json.dumps(dataclasses.asdict(report), indent=2, sort_keys=True))
    else:
        mode = f"open rate={args.rate}/s" if args.rate else f"closed x{args.closed}"
        print(report.render(f"loadgen — {cfg.jobs} jobs, {mode}, fault_prob={cfg.fault_prob}"))
    _write_service_outputs(service, args)
    failed = [r for r in results if r.status is JobStatus.FAILED]
    if failed:
        for r in failed:
            print(f"job {r.job_id} failed: {r.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_loadgen_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import json
    from pathlib import Path

    from repro.cluster import ClusterConfig, cluster_to_prometheus, run_cluster_load
    from repro.service import LoadGenConfig

    cluster_cfg = ClusterConfig(
        shards=args.cluster,
        workers=tuple(args.workers),
        executor=args.executor,
        exec_workers=args.exec_workers,
        max_queue_depth=args.max_depth,
        job_timeout_s=args.job_timeout,
    )
    cfg = LoadGenConfig(
        jobs=args.jobs,
        sizes=tuple(args.sizes),
        block_size=args.block_size,
        scheme=args.scheme,
        fault_prob=args.fault_prob,
        fault_kind=args.fault_kind,
        seed=args.seed,
        rate=args.rate,
        concurrency=args.closed,
    )
    report, results, aggregate = asyncio.run(
        run_cluster_load(
            cluster_cfg,
            cfg,
            kill_shard_after=args.kill_shard_after,
            kill_index=args.kill_index,
        )
    )
    if args.json:
        import dataclasses

        print(json.dumps(dataclasses.asdict(report), indent=2, sort_keys=True))
    else:
        chaos = (
            f", kill shard-{args.kill_index} after {args.kill_shard_after}"
            if args.kill_shard_after is not None
            else ""
        )
        print(report.render(f"cluster loadgen — {cfg.jobs} jobs, {args.cluster} shards{chaos}"))
    # notices go to stderr: with --json, stdout is the scorecard document
    if args.metrics_out:
        Path(args.metrics_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.metrics_out).write_text(json.dumps(aggregate, indent=2, sort_keys=True) + "\n")
        print(f"cluster metrics JSON written to {args.metrics_out}", file=sys.stderr)
    if args.prometheus_out:
        Path(args.prometheus_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.prometheus_out).write_text(cluster_to_prometheus(aggregate))
        print(f"cluster Prometheus metrics written to {args.prometheus_out}", file=sys.stderr)
    failed = [r for r in results if not r.completed]
    if report.lost or failed:
        for r in failed:
            print(f"job {r.key} failed on {r.shard}: {r.error}", file=sys.stderr)
        if report.lost:
            print(f"repro: loadgen: {report.lost} accepted job(s) never resolved", file=sys.stderr)
        return 1
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from repro.util.exceptions import ClusterError

    try:
        if args.cluster_cmd == "start":
            return _cmd_cluster_start(args)
        if args.cluster_cmd == "status":
            return _cmd_cluster_status(args)
        if args.cluster_cmd == "drain":
            from repro.cluster.ops import cluster_drain

            drained = asyncio.run(cluster_drain(args.workdir, timeout_s=args.timeout))
            print(f"drained: {', '.join(drained) if drained else 'no shards reachable'}")
            return 0 if drained else 1
        return _cmd_cluster_bench(args)
    except ClusterError as exc:
        # Operational errors (no manifest, unreachable shards) are expected
        # operator mistakes, not crashes — same contract as ValidationError.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def _cmd_cluster_start(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.cluster import ClusterConfig, ClusterRouter
    from repro.cluster.ops import write_manifest

    async def serve() -> None:
        cfg = ClusterConfig(
            shards=args.shards,
            workdir=args.workdir,
            workers=tuple(args.workers),
            executor=args.executor,
            exec_workers=args.exec_workers,
            max_queue_depth=args.max_depth,
            job_timeout_s=args.job_timeout,
        )
        router = ClusterRouter(cfg)
        await router.start()
        manifest = await asyncio.to_thread(write_manifest, router)
        print(f"cluster up: {cfg.shards} shards, manifest at {manifest}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
            print("cluster shutting down")
        finally:
            await router.stop()
            with contextlib.suppress(FileNotFoundError):
                manifest.unlink()

    asyncio.run(serve())
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import asyncio
    import json
    from pathlib import Path

    from repro.cluster import cluster_to_prometheus
    from repro.cluster.ops import cluster_status

    doc = asyncio.run(cluster_status(args.workdir, timeout_s=args.timeout))
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        rows = []
        for shard in doc["shards"]:
            if shard["alive"]:
                rows.append(
                    (
                        shard["name"],
                        "up",
                        shard["queue_depth"],
                        shard["inflight"],
                        shard["completed"],
                        shard["failed"],
                        shard["rejected"],
                    )
                )
            else:
                rows.append((shard["name"], "unreachable", "-", "-", "-", "-", "-"))
        print(
            render_table(
                ["shard", "state", "queued", "inflight", "completed", "failed", "rejected"],
                rows,
                title=f"cluster status — {doc['workdir']}",
            )
        )
    if args.prometheus_out:
        Path(args.prometheus_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.prometheus_out).write_text(cluster_to_prometheus(doc["metrics"]))
        print(f"cluster Prometheus metrics written to {args.prometheus_out}")
    return 0 if all(s["alive"] for s in doc["shards"]) else 1


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    import json
    import os
    from pathlib import Path

    from repro.cluster import bench_cluster
    from repro.service import LoadGenConfig

    cfg = LoadGenConfig(
        jobs=args.jobs,
        sizes=tuple(args.sizes),
        block_size=args.block_size,
        seed=args.seed,
        concurrency=args.closed,
    )
    doc = bench_cluster(
        cfg,
        shard_counts=(1, args.shards),
        workers_per_shard=tuple(args.workers),
        exec_workers=args.exec_workers or 2,
    )
    rows = [
        (r["shards"], f"{r['jobs_per_s']:.2f}", f"{r['wall_s']:.2f}",
         r["completed"], r["lost"], r["duplicates"])
        for r in doc["runs"]
    ]
    print(
        render_table(
            ["shards", "jobs/s", "wall s", "completed", "lost", "duplicates"],
            rows,
            title=f"cluster scaling — {cfg.jobs} jobs, closed x{cfg.concurrency}",
        )
    )
    speedup = doc["speedup_vs_one_shard"][str(args.shards)]
    print(f"{args.shards}-shard speedup vs 1 shard: {speedup:.2f}x")
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"bench JSON written to {args.out}")
    if args.history:
        from repro.experiments.stamp import append_history

        print(f"run appended to {append_history(doc, bench='cluster', path=args.history)}")
    if any(r["lost"] or r["failed"] for r in doc["runs"]):
        print("repro: cluster bench: lost or failed jobs in a scaling run", file=sys.stderr)
        return 1
    if args.fail_below is not None:
        cores = os.cpu_count() or 1
        if cores < 4:
            print(
                f"repro: cluster bench: NOTICE — host has {cores} core(s) (< 4); "
                f"the --fail-below {args.fail_below:g}x scaling gate is skipped",
                file=sys.stderr,
            )
        elif speedup < args.fail_below:
            print(
                f"repro: cluster bench: {args.shards}-shard speedup {speedup:.2f}x "
                f"below the --fail-below {args.fail_below:g}x gate",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import hotpath

    if args.service:
        return _cmd_bench_service(args)
    dag_sizes = hotpath._DAG_SIZES if args.dag_grid is None else tuple(args.dag_grid)
    doc = hotpath.run(
        n=args.n,
        block_size=args.block_size or 32,
        machine=args.machine,
        scheme=args.scheme,
        repeats=args.repeats,
        seed=args.seed,
        dag_workers=args.dag_workers,
        dag_sizes=dag_sizes,
    )
    print(hotpath.render(doc))
    if args.out:
        path = hotpath.write(doc, args.out)
        print(f"bench JSON written to {path}")
    if args.history:
        from repro.experiments.stamp import append_history

        print(f"run appended to {append_history(doc, bench='hotpath', path=args.history)}")
    if not all(doc["bit_identical"].values()):
        print("repro: bench: batched results diverge from per-tile", file=sys.stderr)
        return 1
    grid = doc["dag"]["grid"]
    for point in grid:
        if not all(point["bit_identical"].values()):
            print(
                f"repro: bench: DAG runtime diverges from serial at n={point['n']}",
                file=sys.stderr,
            )
            return 1
    if args.fail_below is not None and doc["speedup"]["verify_check"] < args.fail_below:
        print(
            f"repro: bench: verify speedup {doc['speedup']['verify_check']:.2f}x "
            f"below the --fail-below {args.fail_below:g}x gate",
            file=sys.stderr,
        )
        return 1
    if args.dag_gate is not None and grid:
        cores = os.cpu_count() or 1
        top = grid[-1]
        if cores < 4:
            print(
                f"repro: bench: NOTICE — host has {cores} core(s) (< 4); "
                f"the --dag-gate {args.dag_gate:g}x speedup gate is skipped "
                f"(measured {top['speedup']:.2f}x at n={top['n']})",
                file=sys.stderr,
            )
        elif top["speedup"] < args.dag_gate:
            print(
                f"repro: bench: DAG speedup {top['speedup']:.2f}x at "
                f"n={top['n']} below the --dag-gate {args.dag_gate:g}x gate",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import scaling
    from repro.experiments.stamp import append_history

    doc = scaling.run(
        jobs=args.service_jobs,
        executors=tuple(args.executors),
        workers=tuple(args.workers_sweep),
        grid_sizes=tuple(args.grid_sizes),
        grid_jobs=args.grid_jobs,
    )
    print(scaling.render(doc))
    if args.service_out:
        path = scaling.write(doc, args.service_out)
        print(f"bench JSON written to {path}")
    if args.history:
        print(f"run appended to {append_history(doc, bench='service', path=args.history)}")
    if not all(doc["bit_identical"].values()):
        print("repro: bench: backends disagree on job results/factors", file=sys.stderr)
        return 1
    ratio = doc["speedup_vs_1_worker"].get("process")
    if args.fail_below is not None:
        cores = os.cpu_count() or 1
        if cores < 4:
            print(
                f"repro: bench: NOTICE — host has {cores} core(s) (< 4); "
                f"the --fail-below {args.fail_below:g}x process-scaling gate is skipped",
                file=sys.stderr,
            )
        elif ratio is not None and ratio < args.fail_below:
            print(
                f"repro: bench: process scaling {ratio:.2f}x below the "
                f"--fail-below {args.fail_below:g}x gate",
                file=sys.stderr,
            )
            return 1
    if args.grid_gate:
        size_grid = doc.get("size_grid")
        cores = os.cpu_count() or 1
        if cores < 4:
            print(
                f"repro: bench: NOTICE — host has {cores} core(s) (< 4); "
                "the --grid-gate inline-vs-process crossover gate is skipped",
                file=sys.stderr,
            )
        elif not size_grid:
            print(
                "repro: bench: --grid-gate needs the size grid "
                "(do not pass an empty --grid-sizes)",
                file=sys.stderr,
            )
            return 1
        else:
            top = str(max(size_grid["sizes"]))
            inline_jps = size_grid["cells"]["inline"][top]["jobs_per_s"]
            process_jps = size_grid["cells"]["process"][top]["jobs_per_s"]
            if process_jps < inline_jps:
                print(
                    f"repro: bench: process backend {process_jps:.2f} jobs/s "
                    f"below inline {inline_jps:.2f} jobs/s at n={top} "
                    "(--grid-gate)",
                    file=sys.stderr,
                )
                return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import chaos

    if args.list:
        for name, fn in chaos.SCENARIOS.items():
            quick = " [quick]" if name in chaos.QUICK_SCENARIOS else ""
            print(f"{name:18} {(fn.__doc__ or '').splitlines()[0]}{quick}")
        return 0
    if args.scenarios:
        names = tuple(args.scenarios)
    elif args.quick:
        names = chaos.QUICK_SCENARIOS
    else:
        names = tuple(chaos.SCENARIOS)
    cfg = chaos.ChaosConfig(
        jobs=args.jobs,
        n=args.n,
        block_size=args.block_size,
        seed=args.seed,
        exec_workers=args.exec_workers,
    )
    doc = chaos.run_chaos(cfg, names)
    print(chaos.render(doc))
    if args.out:
        path = chaos.write(doc, args.out)
        print(f"chaos scorecard written to {path}")
    if args.history:
        from repro.experiments.stamp import append_history

        print(f"run appended to {append_history(doc, bench='chaos', path=args.history)}")
    if not doc["ok"]:
        print("repro: chaos: invariant violations detected", file=sys.stderr)
        return 1
    return 0


def cmd_recovery(args: argparse.Namespace) -> int:
    from repro.experiments import recovery

    doc = recovery.run(
        n=args.n,
        block_size=args.block_size,
        machine=args.machine,
        scheme=args.scheme,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(recovery.render(doc))
    if args.out:
        path = recovery.write(doc, args.out)
        print(f"recovery bench written to {path}")
    if args.history:
        from repro.experiments.stamp import append_history

        print(f"run appended to {append_history(doc, bench='recovery', path=args.history)}")
    if not doc["bit_identical"]:
        print(
            "repro: recovery: resumed factor diverged from the uninterrupted run",
            file=sys.stderr,
        )
        return 1
    if any(r["recomputed_fraction"] >= 1.0 for r in doc["crash_grid"][1:]):
        print(
            "repro: recovery: forward resume recomputed as much as a full restart",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    path = write_report(path=args.out, quick=not args.full)
    print(f"report written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Enhanced Online-ABFT Cholesky reproduction (IPDPS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list machine presets").set_defaults(fn=cmd_info)

    p = sub.add_parser("factor", help="run one fault-tolerant factorization")
    _add_common(p)
    p.add_argument("--n", type=int, default=2048)
    p.add_argument("--scheme", default="enhanced", choices=sorted(_SCHEMES))
    p.add_argument("--k", type=int, default=1, help="verification interval K")
    p.add_argument("--streams", type=int, default=None, help="recalc streams")
    p.add_argument(
        "--placement",
        default="auto",
        choices=["auto", "gpu_main", "gpu_stream", "cpu"],
    )
    p.add_argument("--shadow", action="store_true", help="paper-scale shadow mode")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--inject",
        default=None,
        metavar="KIND:I,J@IT",
        help="inject one fault, e.g. storage:4,2@3",
    )
    p.set_defaults(fn=cmd_factor)

    p = sub.add_parser("capability", help="regenerate a capability table")
    _add_common(p)
    p.add_argument("--n", type=int, default=20480)
    p.set_defaults(fn=cmd_capability)

    p = sub.add_parser("overhead", help="overhead sweep")
    _add_common(p)
    p.add_argument("--k", type=int, default=1)
    p.add_argument(
        "--schemes", nargs="+", default=["offline", "online", "enhanced"],
        choices=sorted(_SCHEMES),
    )
    p.add_argument("--sizes", nargs="*", type=int, default=None)
    p.set_defaults(fn=cmd_overhead)

    p = sub.add_parser("latency", help="corruption exposure time per scheme")
    _add_common(p)
    p.add_argument("--n", type=int, default=8192)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("kpolicy", help="optimal K for a fault rate")
    _add_common(p)
    p.add_argument("--n", type=int, default=20480)
    p.add_argument(
        "--rates", nargs="+", type=float, default=[1e-6, 1e-3, 1e-1, 1.0]
    )
    p.set_defaults(fn=cmd_kpolicy)

    p = sub.add_parser(
        "analyze-trace",
        help="static ABFT-protocol and hazard analysis of a schedule",
    )
    _add_common(p)
    p.add_argument(
        "trace", nargs="?", default=None,
        help="dumped trace JSON (omit to shadow-run --scheme in-process)",
    )
    p.add_argument("--scheme", default=None, choices=sorted(_SCHEMES))
    p.add_argument("--n", type=int, default=2048)
    p.add_argument("--k", type=int, default=1, help="verification interval K")
    p.add_argument("--dump", default=None, help="also dump the generated trace here")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_analyze_trace)

    def add_service_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", nargs="+", default=["tardis:2"],
            metavar="PRESET[:CONCURRENCY]",
            help="worker pool, e.g. --workers tardis:2 bulldozer64:1",
        )
        p.add_argument("--max-depth", type=int, default=64, help="queue admission limit")
        p.add_argument("--job-timeout", type=float, default=120.0, help="per-attempt seconds")
        p.add_argument("--max-retries", type=int, default=2)
        p.add_argument(
            "--scheme", default="enhanced", choices=sorted([*_SCHEMES, "dag"])
        )
        p.add_argument("--block-size", type=int, default=32)
        p.add_argument("--sizes", nargs="+", type=int, default=[64, 96, 128])
        p.add_argument("--fault-prob", type=float, default=0.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--trace-dir", default=None, help="dump per-job timelines here")
        p.add_argument("--metrics-out", default=None, help="write metrics JSON here")
        p.add_argument("--prometheus-out", default=None, help="write Prometheus text here")
        p.add_argument(
            "--executor", default="thread", choices=["inline", "thread", "process", "auto"],
            help="execution backend for blocking attempts ('auto' places each "
            "job on inline/thread/process via the dispatch cost model)",
        )
        p.add_argument(
            "--exec-workers", type=int, default=None, metavar="N",
            help="backend concurrency (thread width / process pool size; "
            "default: the scheduler's total worker concurrency)",
        )
        p.add_argument(
            "--batch-max", type=int, default=1, metavar="K",
            help="coalesce up to K compatible queued jobs into one dispatch "
            "unit (1 = singleton dispatch, the default)",
        )
        p.add_argument(
            "--batch-linger", type=float, default=0.0, metavar="SECONDS",
            help="how long an under-filled batch may wait for more queued "
            "jobs before dispatching (the latency budget for coalescing)",
        )
        p.add_argument(
            "--intra-workers", type=int, default=1, metavar="W",
            help="per-job thread width for the 'dag' scheme's tile runtime "
            "(each job charges W backend slots; other schemes require 1)",
        )

    p = sub.add_parser("serve", help="run the async solve service over a job stream")
    add_service_common(p)
    p.add_argument(
        "--synthetic", type=int, default=None, metavar="N",
        help="serve N generated jobs instead of reading JSONL jobs from stdin",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("loadgen", help="drive the service with a synthetic workload")
    add_service_common(p)
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument(
        "--rate", type=float, default=None,
        help="open-loop Poisson arrivals per second (omit for closed loop)",
    )
    p.add_argument(
        "--closed", type=int, default=4, metavar="CONCURRENCY",
        help="closed-loop outstanding jobs (used when --rate is omitted)",
    )
    p.add_argument("--fault-kind", default="storage", choices=["storage", "computing"])
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument(
        "--cluster", type=int, default=None, metavar="N",
        help="drive an N-shard cluster instead of a single in-process service",
    )
    p.add_argument(
        "--kill-shard-after", type=int, default=None, metavar="K",
        help="with --cluster: SIGKILL a shard after K completions (handoff smoke)",
    )
    p.add_argument(
        "--kill-index", type=int, default=0, metavar="I",
        help="with --kill-shard-after: which shard to kill (default 0)",
    )
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("cluster", help="operate the sharded cluster front-end")
    cluster_sub = p.add_subparsers(dest="cluster_cmd", required=True)

    def add_cluster_common(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--shards", type=int, default=3)
        cp.add_argument(
            "--workers", nargs="+", default=["tardis:2"], metavar="PRESET[:CONCURRENCY]",
            help="worker pool per shard",
        )
        cp.add_argument(
            "--executor", default="thread", choices=["inline", "thread", "process", "auto"],
        )
        cp.add_argument("--exec-workers", type=int, default=2, metavar="N")
        cp.add_argument("--max-depth", type=int, default=256, help="queue depth per shard")
        cp.add_argument("--job-timeout", type=float, default=120.0)

    cp = cluster_sub.add_parser("start", help="run N shard processes until SIGINT/SIGTERM")
    add_cluster_common(cp)
    cp.add_argument(
        "--workdir", default=".repro-cluster",
        help="journals + manifest directory (status/drain read the manifest here)",
    )
    cp.set_defaults(fn=cmd_cluster)

    cp = cluster_sub.add_parser("status", help="health + metrics of a running cluster")
    cp.add_argument("--workdir", default=".repro-cluster")
    cp.add_argument("--timeout", type=float, default=5.0, help="per-shard reply timeout")
    cp.add_argument("--json", action="store_true", help="machine-readable status")
    cp.add_argument("--prometheus-out", default=None, help="write aggregated Prometheus text here")
    cp.set_defaults(fn=cmd_cluster)

    cp = cluster_sub.add_parser("drain", help="ask every shard to finish its queue")
    cp.add_argument("--workdir", default=".repro-cluster")
    cp.add_argument("--timeout", type=float, default=60.0, help="per-shard drain timeout")
    cp.set_defaults(fn=cmd_cluster)

    cp = cluster_sub.add_parser(
        "bench", help="throughput scaling: the same workload at 1 and N shards"
    )
    add_cluster_common(cp)
    cp.add_argument("--jobs", type=int, default=24)
    cp.add_argument("--sizes", nargs="+", type=int, default=[64, 96, 128])
    cp.add_argument("--block-size", type=int, default=32)
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--closed", type=int, default=8, metavar="CONCURRENCY")
    cp.add_argument(
        "--out", default="BENCH_cluster.json",
        help="output JSON path ('' to skip writing)",
    )
    cp.add_argument(
        "--history", default="results/bench_history.jsonl",
        help="append the run to this JSONL perf trajectory ('' to skip)",
    )
    cp.add_argument(
        "--fail-below", type=float, default=None, metavar="X",
        help="exit nonzero if N-shard speedup vs 1 shard is below X "
        "(skipped with a notice on hosts under 4 cores)",
    )
    cp.set_defaults(fn=cmd_cluster)

    p = sub.add_parser("bench", help="verification hot-path benchmark")
    _add_common(p)
    p.add_argument("--n", type=int, default=1024)
    p.add_argument("--scheme", default="enhanced", choices=sorted(_SCHEMES))
    p.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", default="BENCH_hotpath.json",
        help="output JSON path ('' to skip writing)",
    )
    p.add_argument(
        "--history", default="results/bench_history.jsonl",
        help="append the run to this JSONL perf trajectory ('' to skip)",
    )
    p.add_argument(
        "--fail-below", type=float, default=None, metavar="X",
        help="exit nonzero if the verify speedup (or, with --service, the "
        "process pool's jobs/sec scaling) is below X (CI gate; the "
        "service gate is skipped with a notice on hosts under 4 cores)",
    )
    p.add_argument(
        "--service", action="store_true",
        help="benchmark service scaling across execution backends instead "
        "of the verification hot path (writes BENCH_service.json)",
    )
    p.add_argument("--service-jobs", type=int, default=12, help="jobs per scaling cell")
    p.add_argument(
        "--executors", nargs="+", default=["inline", "thread", "process"],
        choices=["inline", "thread", "process", "auto"],
        help="backends to sweep (with --service)",
    )
    p.add_argument(
        "--workers-sweep", nargs="+", type=int, default=[1, 2, 4],
        help="pool widths to sweep (with --service)",
    )
    p.add_argument(
        "--grid-sizes", nargs="*", type=int, default=[256, 512, 1024, 2048],
        metavar="N",
        help="matrix orders for the inline-vs-process job-size grid "
        "(with --service; pass no values to skip the grid)",
    )
    p.add_argument(
        "--grid-jobs", type=int, default=3,
        help="jobs per size-grid cell (with --service)",
    )
    p.add_argument(
        "--grid-gate", action="store_true",
        help="exit nonzero unless the process backend meets or beats inline "
        "jobs/s at the largest grid size (skipped with a notice on hosts "
        "under 4 cores)",
    )
    p.add_argument(
        "--service-out", default="BENCH_service.json",
        help="service bench output JSON path ('' to skip writing)",
    )
    p.add_argument(
        "--dag-workers", type=int, default=None, metavar="W",
        help="thread count for the tile-DAG runtime grid "
        "(default: 2-4 bounded by host cores)",
    )
    p.add_argument(
        "--dag-grid", nargs="*", type=int, default=None, metavar="N",
        help="matrix orders for the serial-vs-DAG runtime grid "
        "(default 512 1024 2048; pass no values to skip)",
    )
    p.add_argument(
        "--dag-gate", type=float, nargs="?", const=1.5, default=None, metavar="X",
        help="exit nonzero unless the DAG runtime beats serial by at least "
        "X (default 1.5) at the largest grid size (skipped with a notice "
        "on hosts under 4 cores)",
    )
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "chaos", help="system-level chaos campaign against the solve service"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset (see QUICK_SCENARIOS; includes the erasure-recovery pair)",
    )
    p.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="explicit scenario names (see --list); overrides --quick",
    )
    p.add_argument("--list", action="store_true", help="list scenarios and exit")
    p.add_argument("--jobs", type=int, default=6, help="jobs per scenario")
    p.add_argument("--n", type=int, default=64, help="matrix size per job")
    p.add_argument("--block-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--exec-workers", type=int, default=2, help="backend pool width per scenario"
    )
    p.add_argument(
        "--out", default="BENCH_chaos.json",
        help="scorecard JSON path ('' to skip writing)",
    )
    p.add_argument(
        "--history", default="results/bench_history.jsonl",
        help="append the run to this JSONL perf trajectory ('' to skip)",
    )
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "recovery", help="forward-recovery benchmark: crash-resume cost vs full restart"
    )
    p.add_argument("--n", type=int, default=256, help="matrix size")
    p.add_argument("--block-size", type=int, default=32)
    p.add_argument("--machine", default="tardis")
    p.add_argument("--scheme", default="enhanced", choices=("online", "enhanced"))
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--repeats", type=int, default=3, help="timing samples per point")
    p.add_argument(
        "--out", default="results/BENCH_recovery.json",
        help="bench JSON path ('' to skip writing)",
    )
    p.add_argument(
        "--history", default="results/bench_history.jsonl",
        help="append the run to this JSONL perf trajectory ('' to skip)",
    )
    p.set_defaults(fn=cmd_recovery)

    p = sub.add_parser("lint", help="repo lint rules (RPL001-RPL009, --flow adds RPL101-RPL103)")
    p.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories (default: the installed repro package)",
    )
    p.add_argument("--select", nargs="+", default=None, help="rule ids to run")
    p.add_argument(
        "--flow", action="store_true",
        help="also run the flow-sensitive tier (CFG/dataflow: RPL101-RPL103)",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        help="output format (default text; sarif emits SARIF 2.1.0)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output (same as --format json)")
    p.add_argument(
        "--cache-dir", default=None,
        help="directory for the call-graph cache (keyed on source digest)",
    )
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("report", help="consolidated evaluation report")
    p.add_argument("--full", action="store_true", help="full paper sweeps")
    p.add_argument("--out", default=None, help="output path (default results/report.txt)")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(linewidth=120)
    try:
        return args.fn(args)
    except ValidationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
