"""Checkpoint + periodic verification: the composed-resilience baseline.

The ABFT literature the paper builds on also composes ABFT with periodic
checkpointing (Bosilca et al., "Composing resilience techniques: ABFT,
periodic and incremental checkpointing").  This module implements the
natural such composition for Cholesky:

- every C iterations, snapshot the matrix *and* its checksum strips to
  host memory (one device→host copy of the live state), then verify all
  live tiles offline-style;
- on unrecoverable corruption (or a fail-stop POTF2), roll back to the
  last snapshot and replay from there, instead of restarting from scratch.

Compared with the paper's Enhanced scheme this trades memory traffic and
rollback-replay time for skipping the per-operation verification; the
benchmark shows where each wins — checkpointing's recovery is bounded by
C iterations, but its fault-free overhead (periodic O(n²) copies plus
sweep verifications) exceeds Enhanced's once C is small enough to matter,
and it still cannot *correct* in place, only replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blas.flops import potrf_flops
from repro.core.checksum import issue_encoding
from repro.core.correct import Verifier, VerifyStats
from repro.core.update import ChecksumUpdater
from repro.desim.trace import Timeline
from repro.faults.injector import FaultInjector, Hook, no_faults
from repro.hetero.machine import Machine
from repro.magma.ops import gemm_op, potf2_op, syrk_op, trsm_op
from repro.util.exceptions import (
    RestartExhaustedError,
    SingularBlockError,
    UnrecoverableError,
)
from repro.util.validation import check_block_size, check_square, require


@dataclass
class CheckpointResult:
    """Outcome of a checkpointed factorization."""

    machine: str
    n: int
    block_size: int
    interval: int
    makespan: float
    rollbacks: int
    checkpoints_taken: int
    stats: VerifyStats
    timeline: Timeline
    factor: np.ndarray | None = field(default=None, repr=False)

    @property
    def gflops(self) -> float:
        return potrf_flops(self.n) / self.makespan / 1e9


def checkpoint_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    interval: int = 4,
    injector: FaultInjector | None = None,
    numerics: str = "real",
    max_rollbacks: int = 4,
) -> CheckpointResult:
    """Factor under checkpoint + periodic offline verification."""
    require(interval >= 1, "checkpoint interval must be >= 1")
    if numerics == "real":
        require(a is not None, "real mode requires the matrix a")
        n = check_square("a", a)
    else:
        require(n is not None, "shadow mode requires n")
    bs = block_size if block_size is not None else machine.default_block_size
    nb = check_block_size(n, bs)
    inj = injector if injector is not None else no_faults()

    ctx = machine.context(numerics=numerics)
    work = a.copy() if numerics == "real" else None
    matrix = ctx.alloc_matrix(n, bs, data=work)
    chk = ctx.alloc_checksums(n, bs)
    inj.bind("matrix", matrix)
    inj.bind("checksum", chk)
    main = ctx.stream("main")
    stats = VerifyStats()
    verifier = Verifier(ctx, matrix, chk, n_streams=16, stats=stats)
    updater = ChecksumUpdater(ctx, matrix, chk, "gpu_stream", main)
    tile_bytes = ctx.tile_bytes(bs)
    state_bytes = n * n * 8 + chk.nbytes

    main.last = issue_encoding(
        ctx, matrix, chk, verifier.streams, engine=verifier.engine
    )

    # Host-side snapshots (real mode keeps actual copies; shadow keeps taint
    # snapshots).  The snapshot transfer is priced on the d2h link.
    snapshot_data: np.ndarray | None = work.copy() if work is not None else None
    snapshot_chk: np.ndarray | None = chk.array.copy() if chk.array is not None else None
    snapshot_taint = _taint_snapshot(matrix, chk)
    snapshot_iter = 0
    rollbacks = 0
    checkpoints = 0

    def take_checkpoint(j: int) -> None:
        nonlocal snapshot_data, snapshot_chk, snapshot_iter, checkpoints, snapshot_taint
        ctx.transfer_d2h(state_bytes, name=f"ckpt[{j}]", stream=main, iteration=j)
        if work is not None:
            snapshot_data = work.copy()
            snapshot_chk = chk.array.copy()
        snapshot_taint = _taint_snapshot(matrix, chk)
        snapshot_iter = j
        checkpoints += 1

    def restore() -> int:
        nonlocal rollbacks
        ctx.transfer_h2d(state_bytes, name=f"restore[{snapshot_iter}]", stream=main)
        if work is not None:
            work[:] = snapshot_data
            chk.array[:] = snapshot_chk
        _taint_restore(matrix, chk, snapshot_taint)
        rollbacks += 1
        return snapshot_iter

    def one_iteration(j: int) -> None:
        syrk_op(ctx, matrix, j, main)
        inj.fire(Hook.AFTER_SYRK, j)
        updater.update_syrk(j)
        ev = ctx.record_event(main)
        d2h = ctx.transfer_d2h(tile_bytes, name=f"d2h_diag[{j}]", deps=[ev.marker], iteration=j)
        gemm_op(ctx, matrix, j, main)
        inj.fire(Hook.AFTER_GEMM, j)
        updater.update_gemm(j)
        potf2 = potf2_op(ctx, matrix, j, deps=[d2h])
        inj.fire(Hook.AFTER_POTF2, j)
        h2d = ctx.transfer_h2d(tile_bytes, name=f"h2d_diag[{j}]", deps=[potf2], iteration=j)
        updater.update_potf2(j, deps=[h2d])
        wait = ctx.graph.new(f"wait_diag[{j}]", kind="event")
        wait.after(main.last, h2d)
        main.last = wait
        trsm_op(ctx, matrix, j, main)
        inj.fire(Hook.AFTER_TRSM, j)
        updater.update_trsm(j)
        inj.fire(Hook.STORAGE_WINDOW, j)

    j = 0
    while j < nb:
        try:
            one_iteration(j)
            boundary = (j + 1) % interval == 0 or j == nb - 1
            if boundary:
                # Offline-style sweep over the live region; corrects what
                # the two-checksum code can, raises otherwise.
                verifier.verify_batch(
                    verifier.lower_keys(), f"sweep[{j}]"
                )
                take_checkpoint(j + 1)
            j += 1
        except (UnrecoverableError, SingularBlockError):
            if rollbacks >= max_rollbacks:
                raise RestartExhaustedError(
                    f"checkpointed run: {rollbacks} rollbacks exhausted"
                )
            # One-shot faults don't recur on replay.
            inj.disarm()
            j = restore()

    sim = ctx.simulate()
    return CheckpointResult(
        machine=machine.name,
        n=n,
        block_size=bs,
        interval=interval,
        makespan=sim.makespan,
        rollbacks=rollbacks,
        checkpoints_taken=checkpoints,
        stats=stats,
        timeline=sim.timeline,
        factor=np.tril(work) if work is not None else None,
    )


def _taint_snapshot(matrix, chk):
    return matrix.snapshot_taint(), chk.snapshot_taint()


def _taint_restore(matrix, chk, snapshot) -> None:
    m_taint, c_taint = snapshot
    matrix.restore_taint(m_taint)
    chk.restore_taint(c_taint)
