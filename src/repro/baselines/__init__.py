"""General-purpose redundancy baselines: DMR and TMR.

Section I of the paper motivates ABFT against the generic alternatives:
"Double Modular Redundancy ... works by comparing the results of two
identical computations" (detection only, ≈100% overhead) and "Triple
Modular Redundancy ... three identical computations ... compared and
voted" (correction, ≈200% overhead).  This subpackage implements both on
the simulated machine so the comparison is measured, not asserted:

- :mod:`repro.baselines.modular` — DMR/TMR Cholesky drivers that really
  run the factorization 2-3 times (real mode: actual NumPy replicas, so
  injected faults genuinely disagree/vote), plus the compare/vote step
  priced as the O(n²) device-memory pass it is.
"""

from repro.baselines.checkpoint import CheckpointResult, checkpoint_potrf
from repro.baselines.modular import ModularResult, dmr_potrf, tmr_potrf

__all__ = [
    "CheckpointResult",
    "checkpoint_potrf",
    "ModularResult",
    "dmr_potrf",
    "tmr_potrf",
]
