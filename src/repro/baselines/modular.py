"""DMR and TMR Cholesky: the paper's Introduction baselines, executable.

Both drivers replicate the *whole* factorization on the simulated machine
(replicas run back-to-back on the same GPU, the transient-error deployment
the paper describes: "on the same hardware platform but replicated ...
for tolerating transient errors").

- **DMR** runs twice and compares.  A mismatch only *detects* — recovery
  is a full re-run of both replicas (so a single transient costs ≈4× the
  plain time, against ABFT's ≈1×).
- **TMR** runs three times and votes element-wise; a single corrupted
  replica is outvoted.  Two corrupted replicas that disagree leave no
  majority → re-run.

The compare/vote step is priced as the device-bandwidth pass it is
(2 or 3 full-matrix reads), which is why its cost is visible but small
next to the replicated O(n³).

Fault injection: the injector is bound per replica; a fired plan corrupts
only the replica executing when its hook matches — exactly a transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blas.flops import potrf_flops
from repro.faults.injector import FaultInjector, no_faults
from repro.hetero.machine import Machine
from repro.magma.potrf import factorization_loop
from repro.util.exceptions import RestartExhaustedError, SingularBlockError
from repro.util.validation import check_block_size, check_square, require

_DOUBLE = 8


@dataclass
class ModularResult:
    """Outcome of a DMR/TMR run."""

    kind: str  # "dmr" | "tmr"
    machine: str
    n: int
    block_size: int
    makespan: float  # total simulated seconds, re-runs included
    replicas_run: int
    reruns: int
    mismatch_detected: bool
    voted_corrections: int
    factor: np.ndarray | None = field(default=None, repr=False)

    @property
    def gflops(self) -> float:
        """Useful-flop rate: one factorization's flops over total time."""
        return potrf_flops(self.n) / self.makespan / 1e9


def _run_replica(
    machine: Machine,
    a: np.ndarray | None,
    n: int,
    block_size: int,
    numerics: str,
    injector: FaultInjector,
):
    """One full factorization attempt; returns (factor|None, seconds)."""
    ctx = machine.context(numerics=numerics)
    work = a.copy() if numerics == "real" else None
    matrix = ctx.alloc_matrix(n, block_size, data=work)
    injector.bind("matrix", matrix)
    try:
        factorization_loop(ctx, matrix, injector=injector)
    except SingularBlockError:
        # A corrupted replica may fail-stop; it counts as a mismatch.
        sim = ctx.simulate()
        return None, sim.makespan
    sim = ctx.simulate()
    factor = np.tril(work) if numerics == "real" else None
    return factor, sim.makespan


def _compare_time(machine: Machine, n: int, replicas: int) -> float:
    """Streaming compare/vote over *replicas* full matrices."""
    nbytes = replicas * n * n * _DOUBLE
    gpu = machine.spec.gpu
    return nbytes / (0.8 * gpu.mem_bandwidth_gbs * 1e9)


def dmr_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
    max_reruns: int = 1,
    rtol: float = 1e-12,
) -> ModularResult:
    """Double modular redundancy: run twice, compare, re-run on mismatch."""
    return _modular(
        "dmr", 2, machine, a, n, block_size, injector, numerics, max_reruns, rtol
    )


def tmr_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
    max_reruns: int = 1,
    rtol: float = 1e-12,
) -> ModularResult:
    """Triple modular redundancy: run thrice, majority-vote element-wise."""
    return _modular(
        "tmr", 3, machine, a, n, block_size, injector, numerics, max_reruns, rtol
    )


def _modular(
    kind: str,
    replicas: int,
    machine: Machine,
    a: np.ndarray | None,
    n: int | None,
    block_size: int | None,
    injector: FaultInjector | None,
    numerics: str,
    max_reruns: int,
    rtol: float,
) -> ModularResult:
    if numerics == "real":
        require(a is not None, "real mode requires the matrix a")
        n = check_square("a", a)
    else:
        require(n is not None, "shadow mode requires n")
    bs = block_size if block_size is not None else machine.default_block_size
    check_block_size(n, bs)
    inj = injector if injector is not None else no_faults()

    total = 0.0
    replicas_run = 0
    reruns = 0
    mismatch_ever = False
    for attempt in range(max_reruns + 1):
        factors: list[np.ndarray | None] = []
        for _ in range(replicas):
            factor, seconds = _run_replica(machine, a, n, bs, numerics, inj)
            factors.append(factor)
            total += seconds
            replicas_run += 1
        total += _compare_time(machine, n, replicas)

        if numerics == "shadow":
            # Shadow semantics: a fired fault corrupted exactly one replica.
            corrupted = inj.fired and attempt == 0
            if not corrupted:
                return ModularResult(
                    kind, machine.name, n, bs, total, replicas_run, reruns,
                    mismatch_detected=mismatch_ever, voted_corrections=0,
                )
            mismatch_ever = True
            if kind == "tmr":
                # two clean replicas outvote the corrupted one
                return ModularResult(
                    kind, machine.name, n, bs, total, replicas_run, reruns,
                    mismatch_detected=True, voted_corrections=1,
                )
            inj.disarm()
            reruns += 1
            continue

        outcome = _resolve_real(kind, factors, rtol)
        if outcome is not None:
            factor, voted = outcome
            return ModularResult(
                kind, machine.name, n, bs, total, replicas_run, reruns,
                mismatch_detected=mismatch_ever or voted > 0,
                voted_corrections=voted, factor=factor,
            )
        mismatch_ever = True
        inj.disarm()
        reruns += 1
    raise RestartExhaustedError(f"{kind}: no agreement after {max_reruns} re-run(s)")


def _resolve_real(
    kind: str, factors: list[np.ndarray | None], rtol: float
) -> tuple[np.ndarray, int] | None:
    """Compare/vote replica factors; None means no resolution (re-run)."""
    live = [f for f in factors if f is not None]
    if len(live) < 2:
        return None  # not enough survivors to compare
    scale = np.abs(live[0]).max() or 1.0
    tol = rtol * scale

    if kind == "dmr":
        if len(live) < 2 or len(factors) != len(live):
            return None  # a replica fail-stopped: detection, re-run
        if np.allclose(factors[0], factors[1], rtol=0.0, atol=tol):
            return factors[0], 0
        return None

    if len(live) == 2:
        # One replica fail-stopped; the two survivors form the majority.
        if np.allclose(live[0], live[1], rtol=0.0, atol=tol):
            return live[0], 1
        return None
    factors = live

    # TMR: element-wise majority of three
    a01 = np.isclose(factors[0], factors[1], rtol=0.0, atol=tol)
    a02 = np.isclose(factors[0], factors[2], rtol=0.0, atol=tol)
    a12 = np.isclose(factors[1], factors[2], rtol=0.0, atol=tol)
    if a01.all() and a02.all():
        return factors[0], 0
    no_majority = ~(a01 | a02 | a12)
    if no_majority.any():
        return None
    voted = np.where(a01 | a02, factors[0], factors[1])
    corrections = int((~(a01 & a02)).sum() > 0)
    return voted, corrections
