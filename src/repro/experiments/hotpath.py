"""Hot-path benchmark: batched vs per-tile checksum verification.

``python -m repro bench`` runs the same fault-tolerant factorization
twice — once with the stacked :class:`~repro.core.batchverify.BatchVerifyEngine`
and once with the historical per-tile Python loop — and emits
``BENCH_hotpath.json``: per-phase wall timings, the batched-vs-per-tile
speedup, and the bit-identity verdicts (factors, corrected sites,
verifier statistics must match exactly; only the wall time may differ).

The file at the repo root is the perf trajectory: every PR that touches
the hot path regenerates it, and the CI perf-smoke job fails if batched
verification ever becomes slower than the loop it replaced.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.blas.spd import random_spd
from repro.core import AbftConfig, enhanced_potrf, offline_potrf, online_potrf
from repro.core.base import FtPotrfResult
from repro.core.checksum import issue_encoding
from repro.core.correct import Verifier
from repro.experiments.stamp import run_stamp
from repro.faults.injector import single_storage_fault
from repro.hetero.machine import Machine
from repro.util.validation import require

#: Schema 2 added the ``stamp`` provenance block (git rev, hostname, CPU
#: count, timestamp).  :func:`read` still accepts schema-1 documents.
SCHEMA_VERSION = 2

_SCHEMES = {
    "offline": offline_potrf,
    "online": online_potrf,
    "enhanced": enhanced_potrf,
}

#: Where the fault is planted (tile, iteration) — early enough that every
#: scheme's verification sees and corrects it, so the bench also pins the
#: correction path's parity between the two modes.
_FAULT_BLOCK = (3, 1)
_FAULT_ITERATION = 1


def _factor(
    machine: Machine,
    a: np.ndarray,
    block_size: int,
    scheme: str,
    batched: bool,
    inject: bool,
) -> tuple[FtPotrfResult, float]:
    """One full factorization; returns the result and its host wall time."""
    config = AbftConfig(batched_verify=batched)
    injector = (
        single_storage_fault(block=_FAULT_BLOCK, iteration=_FAULT_ITERATION)
        if inject
        else None
    )
    work = a.copy()
    t0 = time.perf_counter()
    res = _SCHEMES[scheme](
        machine, a=work, block_size=block_size, config=config, injector=injector
    )
    return res, time.perf_counter() - t0


def _sweep_times(
    machine: Machine, a: np.ndarray, block_size: int, repeats: int
) -> dict[str, float]:
    """Pure detection microbenchmark: one full lower-triangle sweep.

    Isolates the engine from the driver — no factorization, no simulated
    schedule, just ``check_real`` over every lower tile, best of *repeats*.
    """
    ctx = machine.context(numerics="real")
    matrix = ctx.alloc_matrix(a.shape[0], block_size, data=a.copy())
    chk = ctx.alloc_checksums(a.shape[0], block_size)
    verifier = Verifier(ctx, matrix, chk, n_streams=16)
    issue_encoding(ctx, matrix, chk, verifier.streams, engine=verifier.engine)
    keys = verifier.lower_keys()
    out: dict[str, float] = {}
    for mode in ("batched", "per_tile"):
        verifier.batched = mode == "batched"
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            verifier.check_real(keys)
            best = min(best, time.perf_counter() - t0)
        out[mode] = best
    return out


def run(
    n: int = 1024,
    block_size: int = 32,
    machine: str = "tardis",
    scheme: str = "enhanced",
    repeats: int = 3,
    seed: int = 0,
    inject: bool = True,
) -> dict[str, Any]:
    """Benchmark both verify modes and return the BENCH_hotpath document."""
    require(n % block_size == 0, "n must be a multiple of block_size")
    mach = Machine.preset(machine)
    a = random_spd(n, rng=seed)

    results: dict[str, FtPotrfResult] = {}
    factor_s: dict[str, float] = {}
    verify_s: dict[str, float] = {}
    for mode in ("batched", "per_tile"):
        batched = mode == "batched"
        best_wall = float("inf")
        for _ in range(repeats):
            res, wall = _factor(mach, a, block_size, scheme, batched, inject)
            if wall < best_wall:
                best_wall = wall
                results[mode] = res
        factor_s[mode] = best_wall
        verify_s[mode] = results[mode].stats.check_wall_s

    sweep_s = _sweep_times(mach, a, block_size, repeats)

    batched_res, per_tile_res = results["batched"], results["per_tile"]
    identical = {
        "factor": bool(np.array_equal(batched_res.factor, per_tile_res.factor)),
        "stats": batched_res.stats == per_tile_res.stats,
        "corrected_sites": (
            batched_res.stats.corrected_sites == per_tile_res.stats.corrected_sites
        ),
    }

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro bench",
        "stamp": run_stamp(),
        "machine": machine,
        "scheme": scheme,
        "n": n,
        "block_size": block_size,
        "nb": n // block_size,
        "repeats": repeats,
        "seed": seed,
        "fault_injected": inject,
        "tiles_verified": batched_res.stats.tiles_verified,
        "data_corrections": batched_res.stats.data_corrections,
        "phases_s": {
            "factor_total": factor_s,
            "verify_check": verify_s,
            "sweep_check": sweep_s,
        },
        "speedup": {
            "verify_check": verify_s["per_tile"] / verify_s["batched"],
            "sweep_check": sweep_s["per_tile"] / sweep_s["batched"],
        },
        "bit_identical": identical,
    }


def write(doc: dict[str, Any], path: str | Path) -> Path:
    """Write the bench document as stable, diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def read(path: str | Path) -> dict[str, Any]:
    """Load a bench document, accepting schema 1 (pre-stamp) and 2.

    Schema-1 documents are normalized in place: they gain an empty
    ``stamp`` block so readers can always index ``doc["stamp"]``.
    """
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    require(
        schema in (1, SCHEMA_VERSION),
        f"unsupported bench schema {schema!r} in {path} (have 1..{SCHEMA_VERSION})",
    )
    doc.setdefault("stamp", {})
    return doc


def render(doc: dict[str, Any]) -> str:
    """Human summary of one bench document."""
    ph = doc["phases_s"]
    sp = doc["speedup"]
    ok = doc["bit_identical"]
    lines = [
        f"hotpath bench — {doc['scheme']} n={doc['n']} B={doc['block_size']} "
        f"(nb={doc['nb']}, {doc['machine']}, best of {doc['repeats']})",
        f"  verify wall : per-tile {ph['verify_check']['per_tile'] * 1e3:8.2f} ms"
        f" | batched {ph['verify_check']['batched'] * 1e3:8.2f} ms"
        f" | speedup {sp['verify_check']:5.2f}x",
        f"  full sweep  : per-tile {ph['sweep_check']['per_tile'] * 1e3:8.2f} ms"
        f" | batched {ph['sweep_check']['batched'] * 1e3:8.2f} ms"
        f" | speedup {sp['sweep_check']:5.2f}x",
        f"  factor wall : per-tile {ph['factor_total']['per_tile']:8.3f} s "
        f" | batched {ph['factor_total']['batched']:8.3f} s",
        f"  bit-identical: factor={ok['factor']} stats={ok['stats']} "
        f"sites={ok['corrected_sites']} "
        f"({doc['tiles_verified']} tiles verified, "
        f"{doc['data_corrections']} corrections)",
    ]
    return "\n".join(lines)
