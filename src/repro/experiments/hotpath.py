"""Hot-path benchmark: batched verification and the tile-DAG runtime.

``python -m repro bench`` runs the same fault-tolerant factorization
twice — once with the stacked :class:`~repro.core.batchverify.BatchVerifyEngine`
and once with the historical per-tile Python loop — and emits
``BENCH_hotpath.json``: per-phase wall timings, the batched-vs-per-tile
speedup, and the bit-identity verdicts (factors, corrected sites,
verifier statistics must match exactly; only the wall time may differ).

Schema 3 adds the ``dag`` section: the :mod:`repro.runtime` tile-DAG
scheme timed serial (1 worker, program order) against threaded with
lookahead over an n-grid, fault injected, with the same bit-identity
verdicts — the runtime's contract is that the schedule changes only the
wall clock, never a bit of the result.

The file at the repo root is the perf trajectory: every PR that touches
the hot path regenerates it, and the CI perf-smoke job fails if batched
verification ever becomes slower than the loop it replaced (and, on
hosts with enough cores, if the DAG runtime stops beating serial).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.blas.spd import random_spd
from repro.core import AbftConfig, enhanced_potrf, offline_potrf, online_potrf
from repro.core.base import FtPotrfResult
from repro.core.checksum import issue_encoding
from repro.core.correct import Verifier
from repro.experiments.stamp import run_stamp
from repro.faults.injector import single_storage_fault
from repro.hetero.machine import Machine
from repro.runtime.scheme import DagPotrfResult, dag_potrf
from repro.util.validation import require

#: Schema 2 added the ``stamp`` provenance block (git rev, hostname, CPU
#: count, timestamp); schema 3 the ``dag`` section (tile-DAG runtime
#: serial-vs-threaded grid).  :func:`read` still accepts older documents.
SCHEMA_VERSION = 3

_SCHEMES = {
    "offline": offline_potrf,
    "online": online_potrf,
    "enhanced": enhanced_potrf,
}

#: Where the fault is planted (tile, iteration) — early enough that every
#: scheme's verification sees and corrects it, so the bench also pins the
#: correction path's parity between the two modes.
_FAULT_BLOCK = (3, 1)
_FAULT_ITERATION = 1

#: The dag grid: larger tiles than the verify bench so BLAS work per task
#: dwarfs Python dispatch (nb = 4/8/16 over the grid), n chosen so the
#: fault tile (3, 1) exists at every point.
_DAG_SIZES = (512, 1024, 2048)
_DAG_BLOCK = 128


def default_dag_workers() -> int:
    """Thread count the dag side of the bench uses by default: 2–4,
    bounded by the host (1-core hosts still measure, honestly, ≈1×)."""
    return max(2, min(4, os.cpu_count() or 1))


def _factor(
    machine: Machine,
    a: np.ndarray,
    block_size: int,
    scheme: str,
    batched: bool,
    inject: bool,
) -> tuple[FtPotrfResult, float]:
    """One full factorization; returns the result and its host wall time."""
    config = AbftConfig(batched_verify=batched)
    injector = (
        single_storage_fault(block=_FAULT_BLOCK, iteration=_FAULT_ITERATION)
        if inject
        else None
    )
    work = a.copy()
    t0 = time.perf_counter()
    res = _SCHEMES[scheme](
        machine, a=work, block_size=block_size, config=config, injector=injector
    )
    return res, time.perf_counter() - t0


def _sweep_times(
    machine: Machine, a: np.ndarray, block_size: int, repeats: int
) -> dict[str, float]:
    """Pure detection microbenchmark: one full lower-triangle sweep.

    Isolates the engine from the driver — no factorization, no simulated
    schedule, just ``check_real`` over every lower tile, best of *repeats*.
    """
    ctx = machine.context(numerics="real")
    matrix = ctx.alloc_matrix(a.shape[0], block_size, data=a.copy())
    chk = ctx.alloc_checksums(a.shape[0], block_size)
    verifier = Verifier(ctx, matrix, chk, n_streams=16)
    issue_encoding(ctx, matrix, chk, verifier.streams, engine=verifier.engine)
    keys = verifier.lower_keys()
    out: dict[str, float] = {}
    for mode in ("batched", "per_tile"):
        verifier.batched = mode == "batched"
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            verifier.check_real(keys)
            best = min(best, time.perf_counter() - t0)
        out[mode] = best
    return out


def _dag_factor(
    machine: Machine, a: np.ndarray, workers: int, seed: int
) -> tuple[DagPotrfResult, float]:
    """One tile-DAG factorization with the standard fault, timed."""
    injector = single_storage_fault(block=_FAULT_BLOCK, iteration=_FAULT_ITERATION)
    work = a.copy()
    t0 = time.perf_counter()
    res = dag_potrf(
        machine,
        a=work,
        block_size=_DAG_BLOCK,
        config=AbftConfig(dag_workers=workers),
        injector=injector,
    )
    return res, time.perf_counter() - t0


def dag_grid(
    machine: Machine,
    sizes: tuple[int, ...],
    workers: int,
    repeats: int,
    seed: int,
) -> list[dict[str, Any]]:
    """Serial-vs-threaded DAG runtime over the n-grid, fault injected.

    Each point records best-of-*repeats* ``factor_total`` for 1 worker
    (program order — the bit-identity reference) and for *workers*
    threads with lookahead, plus the bit-identity verdicts between them.
    """
    min_n = (max(_FAULT_BLOCK) + 1) * _DAG_BLOCK
    points: list[dict[str, Any]] = []
    for n in sizes:
        require(
            n % _DAG_BLOCK == 0 and n >= min_n,
            f"dag grid size {n} must be a multiple of {_DAG_BLOCK} and at "
            f"least {min_n} so the standard fault tile {_FAULT_BLOCK} exists",
        )
        a = random_spd(n, rng=seed)
        best: dict[str, float] = {}
        res: dict[str, DagPotrfResult] = {}
        for mode, w in (("serial", 1), ("dag", workers)):
            wall = float("inf")
            for _ in range(repeats):
                r, t = _dag_factor(machine, a, w, seed)
                if t < wall:
                    wall = t
                    res[mode] = r
            best[mode] = wall
        serial, dag = res["serial"], res["dag"]
        points.append(
            {
                "n": n,
                "nb": n // _DAG_BLOCK,
                "factor_total": best,
                "speedup": best["serial"] / best["dag"],
                "restarts": dag.restarts,
                "data_corrections": dag.stats.data_corrections,
                "tasks": dag.runtime["tasks"],
                "max_lookahead_depth": dag.runtime["max_lookahead_depth"],
                "bit_identical": {
                    "factor": bool(np.array_equal(serial.factor, dag.factor)),
                    "stats": serial.stats == dag.stats,
                    "corrected_sites": (
                        serial.stats.corrected_sites == dag.stats.corrected_sites
                    ),
                },
            }
        )
    return points


def run(
    n: int = 1024,
    block_size: int = 32,
    machine: str = "tardis",
    scheme: str = "enhanced",
    repeats: int = 3,
    seed: int = 0,
    inject: bool = True,
    dag_workers: int | None = None,
    dag_sizes: tuple[int, ...] = _DAG_SIZES,
) -> dict[str, Any]:
    """Benchmark both verify modes and the DAG runtime; returns the
    BENCH_hotpath document (schema 3)."""
    require(n % block_size == 0, "n must be a multiple of block_size")
    mach = Machine.preset(machine)
    a = random_spd(n, rng=seed)

    results: dict[str, FtPotrfResult] = {}
    factor_s: dict[str, float] = {}
    verify_s: dict[str, float] = {}
    for mode in ("batched", "per_tile"):
        batched = mode == "batched"
        best_wall = float("inf")
        for _ in range(repeats):
            res, wall = _factor(mach, a, block_size, scheme, batched, inject)
            if wall < best_wall:
                best_wall = wall
                results[mode] = res
        factor_s[mode] = best_wall
        verify_s[mode] = results[mode].stats.check_wall_s

    sweep_s = _sweep_times(mach, a, block_size, repeats)

    workers = dag_workers if dag_workers is not None else default_dag_workers()
    grid = dag_grid(mach, tuple(dag_sizes), workers, repeats, seed)

    batched_res, per_tile_res = results["batched"], results["per_tile"]
    identical = {
        "factor": bool(np.array_equal(batched_res.factor, per_tile_res.factor)),
        "stats": batched_res.stats == per_tile_res.stats,
        "corrected_sites": (
            batched_res.stats.corrected_sites == per_tile_res.stats.corrected_sites
        ),
    }

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro bench",
        "stamp": run_stamp(),
        "machine": machine,
        "scheme": scheme,
        "n": n,
        "block_size": block_size,
        "nb": n // block_size,
        "repeats": repeats,
        "seed": seed,
        "fault_injected": inject,
        "tiles_verified": batched_res.stats.tiles_verified,
        "data_corrections": batched_res.stats.data_corrections,
        "phases_s": {
            "factor_total": factor_s,
            "verify_check": verify_s,
            "sweep_check": sweep_s,
        },
        "speedup": {
            "verify_check": verify_s["per_tile"] / verify_s["batched"],
            "sweep_check": sweep_s["per_tile"] / sweep_s["batched"],
        },
        "bit_identical": identical,
        "dag": {
            "workers": workers,
            "lookahead": 1,
            "block_size": _DAG_BLOCK,
            "host_cores": os.cpu_count() or 1,
            "grid": grid,
        },
    }


def write(doc: dict[str, Any], path: str | Path) -> Path:
    """Write the bench document as stable, diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def read(path: str | Path) -> dict[str, Any]:
    """Load a bench document, accepting schemas 1 (pre-stamp), 2 and 3.

    Older documents are normalized in place: schema 1 gains an empty
    ``stamp`` block, schemas 1–2 an empty ``dag`` section
    (``doc["dag"]["grid"] == []``), so readers can always index both.
    """
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    require(
        schema in (1, 2, SCHEMA_VERSION),
        f"unsupported bench schema {schema!r} in {path} (have 1..{SCHEMA_VERSION})",
    )
    doc.setdefault("stamp", {})
    doc.setdefault("dag", {"workers": 0, "lookahead": 0, "block_size": 0, "grid": []})
    return doc


def render(doc: dict[str, Any]) -> str:
    """Human summary of one bench document."""
    ph = doc["phases_s"]
    sp = doc["speedup"]
    ok = doc["bit_identical"]
    lines = [
        f"hotpath bench — {doc['scheme']} n={doc['n']} B={doc['block_size']} "
        f"(nb={doc['nb']}, {doc['machine']}, best of {doc['repeats']})",
        f"  verify wall : per-tile {ph['verify_check']['per_tile'] * 1e3:8.2f} ms"
        f" | batched {ph['verify_check']['batched'] * 1e3:8.2f} ms"
        f" | speedup {sp['verify_check']:5.2f}x",
        f"  full sweep  : per-tile {ph['sweep_check']['per_tile'] * 1e3:8.2f} ms"
        f" | batched {ph['sweep_check']['batched'] * 1e3:8.2f} ms"
        f" | speedup {sp['sweep_check']:5.2f}x",
        f"  factor wall : per-tile {ph['factor_total']['per_tile']:8.3f} s "
        f" | batched {ph['factor_total']['batched']:8.3f} s",
        f"  bit-identical: factor={ok['factor']} stats={ok['stats']} "
        f"sites={ok['corrected_sites']} "
        f"({doc['tiles_verified']} tiles verified, "
        f"{doc['data_corrections']} corrections)",
    ]
    dag = doc.get("dag") or {}
    for point in dag.get("grid", []):
        pok = point["bit_identical"]
        lines.append(
            f"  dag n={point['n']:5d} (nb={point['nb']:2d}, "
            f"{dag['workers']} workers): serial "
            f"{point['factor_total']['serial']:7.3f} s | dag "
            f"{point['factor_total']['dag']:7.3f} s | speedup "
            f"{point['speedup']:5.2f}x | bit-identical "
            f"{pok['factor'] and pok['stats'] and pok['corrected_sites']}"
        )
    return "\n".join(lines)
