"""Forward-recovery benchmark: what does a crash cost with salvage vs without?

Two curves make the erasure-recovery layer's case:

- **capacity vs overhead** — each extra checksum row buys one more
  survivable erasure (and half an unknown error) per tile column, at a
  linear recalculation and storage cost.  This is the knob that sets how
  many simultaneous row losses a salvaged snapshot can decode through.
- **forward vs backward** — a worker crash after iteration *j* leaves a
  snapshot holding iterations ``0..j``.  Forward recovery replays only
  the remaining iterations; backward recovery (a full retry) replays
  everything.  The recomputed-work ratio falls with *j* exactly as the
  trailing-flops fraction predicts, and the resumed factor is
  bit-identical to the uninterrupted run.

``python -m repro recovery`` regenerates ``results/BENCH_recovery.json``
(same stamp/history conventions as the hotpath and chaos documents); the
exit code gates on bit-identity and on forward work staying strictly
below a restart for every crash point past iteration 0.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.multierror import MultiErrorCodec, recalc_flops
from repro.experiments.stamp import run_stamp
from repro.hetero.machine import Machine
from repro.recovery import (
    SnapshotLayout,
    SnapshotWriter,
    choose_recovery,
    execute_resume,
    read_snapshot,
    zero_epochs,
)
from repro.service.job import Job
from repro.service.policy import execute_attempt
from repro.util.formatting import render_table
from repro.util.rng import resolve_rng
from repro.util.validation import check_positive

SCHEMA_VERSION = 1

#: checksum counts on the capacity/overhead curve
COUNTS = (2, 3, 4, 6, 8)


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def _capacity_curve(block_size: int, repeats: int) -> list[dict[str, Any]]:
    tile = resolve_rng(0).standard_normal((block_size, block_size))
    rows = []
    for m in COUNTS:
        codec = MultiErrorCodec(block_size, n_checksums=m)
        strip = codec.encode(tile)
        rows.append(
            {
                "checksums": m,
                "correct_unknown": codec.correctable_unknown,
                "correct_erasures": codec.correctable_erasures,
                "recalc_flops": recalc_flops(block_size, m),
                "space_overhead": m / block_size,
                "verify_s": _median_seconds(
                    lambda: codec.verify_and_correct(tile.copy(), strip), repeats
                ),
            }
        )
    return rows


def run(
    n: int = 256,
    block_size: int = 32,
    machine: str = "tardis",
    scheme: str = "enhanced",
    seed: int = 11,
    repeats: int = 3,
) -> dict[str, Any]:
    """Measure the forward-recovery trade across every crash iteration."""
    check_positive("repeats", repeats)
    mach = Machine.preset(machine)
    job = Job(job_id=1, n=n, block_size=block_size, scheme=scheme, seed=seed)
    nb = n // block_size
    layout = SnapshotLayout(n, block_size)

    # One uninterrupted run, capturing the snapshot state after every
    # iteration — each capture is exactly what a crash at that point
    # would leave behind for the parent to salvage.
    captures: list[np.ndarray] = []
    buf = np.zeros(layout.shape)
    zero_epochs(buf)
    writer = SnapshotWriter(buf, layout)

    def capture(iteration: int, matrix: np.ndarray, chk: np.ndarray) -> None:
        writer.publish(iteration, matrix, chk)
        captures.append(buf.copy())

    ref = execute_attempt(job, mach, progress=capture)
    backward_s = _median_seconds(lambda: execute_attempt(job, mach), repeats)

    crash_grid: list[dict[str, Any]] = []
    bit_identical = True
    for j, snap in enumerate(captures[:-1]):  # a crash after the last
        # iteration leaves nothing to resume
        salvage = read_snapshot(snap, layout)
        decision = choose_recovery(job, mach, salvage)
        forward_s = _median_seconds(
            lambda: execute_resume(job, mach, read_snapshot(snap, layout)), repeats
        )
        out = execute_resume(job, mach, read_snapshot(snap, layout))
        identical = bool(np.array_equal(out.factor, ref.factor))
        bit_identical = bit_identical and identical
        crash_grid.append(
            {
                "crash_after_iteration": j,
                "resume_iteration": salvage.resume_iteration,
                "recovered_fraction": decision.recovered_fraction,
                "recomputed_fraction": 1.0 - decision.recovered_fraction,
                "forward": decision.forward,
                "forward_s": forward_s,
                "backward_s": backward_s,
                "wall_ratio": forward_s / backward_s,
                "bit_identical": identical,
            }
        )

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro recovery",
        "stamp": run_stamp(),
        "machine": machine,
        "scheme": scheme,
        "n": n,
        "block_size": block_size,
        "nb": nb,
        "seed": seed,
        "repeats": repeats,
        "capacity": _capacity_curve(block_size, repeats),
        "crash_grid": crash_grid,
        "backward_s": backward_s,
        "bit_identical": bit_identical,
    }


def render(doc: dict[str, Any]) -> str:
    cap = render_table(
        ["checksums", "erasures", "unknown", "recalc flops/tile", "space", "verify s"],
        [
            (
                r["checksums"],
                r["correct_erasures"],
                r["correct_unknown"],
                r["recalc_flops"],
                f"{r['space_overhead']:.4f}",
                f"{r['verify_s']:.2e}",
            )
            for r in doc["capacity"]
        ],
        title=f"erasure capacity vs overhead — B={doc['block_size']}",
    )
    grid = render_table(
        ["crash after", "resume at", "banked", "recomputed", "fwd s", "bwd s", "ratio", "bits"],
        [
            (
                r["crash_after_iteration"],
                r["resume_iteration"],
                f"{r['recovered_fraction']:.2f}",
                f"{r['recomputed_fraction']:.2f}",
                f"{r['forward_s']:.3f}",
                f"{r['backward_s']:.3f}",
                f"{r['wall_ratio']:.2f}",
                "=" if r["bit_identical"] else "DIVERGED",
            )
            for r in doc["crash_grid"]
        ],
        title=(
            f"forward vs backward recovery — {doc['scheme']}, "
            f"n={doc['n']}, nb={doc['nb']}"
        ),
    )
    return cap + "\n\n" + grid


def write(doc: dict[str, Any], path: str | Path) -> Path:
    """Write the bench document as stable, diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
