"""Experiment harness: regenerates every table and figure of Section VII.

Each module exposes ``run(...)`` returning a result record and
``render(result)`` producing the text table/series.  All experiments run in
shadow mode at the paper's sizes (real-mode equivalents at laptop scale
live in the test suite).

==================  =====================================================
Table I, II-VI      :mod:`repro.experiments.analytic`
Tables VII/VIII     :mod:`repro.experiments.capability`
Figures 8/9         :mod:`repro.experiments.opt1`
Figures 10/11       :mod:`repro.experiments.opt2`
Figures 12/13       :mod:`repro.experiments.opt3`
Figures 14/15       :mod:`repro.experiments.overhead`
Figures 16/17       :mod:`repro.experiments.performance`
Hot-path bench      :mod:`repro.experiments.hotpath` (real mode, host wall)
==================  =====================================================
"""

from repro.experiments.common import (
    BULLDOZER_SWEEP,
    TARDIS_SWEEP,
    baseline_time,
    relative_overhead,
    scheme_runner,
    sweep_for,
)

__all__ = [
    "BULLDOZER_SWEEP",
    "TARDIS_SWEEP",
    "baseline_time",
    "relative_overhead",
    "scheme_runner",
    "sweep_for",
]
