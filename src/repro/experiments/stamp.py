"""Provenance stamping for benchmark documents.

Every benchmark JSON the repo tracks (``BENCH_hotpath.json``,
``BENCH_service.json``) carries a ``stamp`` block — git revision,
hostname, CPU count, ISO timestamp — so a number in the perf trajectory
is always attributable to a machine and a commit.  Runs are additionally
appended to ``results/bench_history.jsonl`` (one compact JSON document
per line) so the trajectory is queryable with a one-liner::

    jq 'select(.bench=="hotpath") | [.stamp.git_rev, .speedup.verify_check]' \
        results/bench_history.jsonl
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

#: default history sink, relative to the current working directory
HISTORY_PATH = Path("results") / "bench_history.jsonl"


def git_revision(cwd: str | Path | None = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def run_stamp() -> dict[str, Any]:
    """The provenance block benchmarks embed under ``"stamp"``."""
    return {
        "git_rev": git_revision(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count() or 1,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def append_history(doc: dict[str, Any], bench: str, path: str | Path | None = None) -> Path:
    """Append *doc* (tagged with the benchmark name) to the history JSONL."""
    path = Path(path) if path is not None else HISTORY_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps({"bench": bench, **doc}, sort_keys=True)
    with path.open("a") as fh:
        fh.write(line + "\n")
    return path
