"""Tables VII/VIII: fault-tolerance capability comparison.

For each scheme × {no error, computation error, memory error} we run one
paper-scale shadow factorization with the scenario's injector and record
the total simulated time (restarts included).  Expected shape:

- no error: all three schemes within a few percent of each other;
- computation error: Offline ≈ 2× (detected only by the final sweep →
  full re-run), Online and Enhanced unaffected (corrected in place);
- memory error (a bit flip striking a *finished* L tile between its last
  verification and its next read): Offline and Online ≈ 2×, Enhanced
  unaffected (pre-access verification corrects it).

The memory fault targets tile (nb-1, nb-2) in the window after iteration
nb-2, so Online's detection happens on the last iteration — the worst
case, matching the paper's ≈2.15× measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AbftConfig
from repro.experiments.common import scheme_runner
from repro.faults.injector import (
    FaultInjector,
    no_faults,
    single_computing_fault,
    single_storage_fault,
)
from repro.hetero.machine import Machine
from repro.util.exceptions import ValidationError
from repro.util.formatting import render_table
from repro.util.validation import check_block_size

SCENARIOS = ("no_error", "computing_error", "memory_error")
SCHEME_ORDER = ("enhanced", "online", "offline")


@dataclass
class CapabilityResult:
    """One capability table: times[scheme][scenario] and restart counts."""

    machine: str
    n: int
    block_size: int
    times: dict[str, dict[str, float]]
    restarts: dict[str, dict[str, int]]

    def render(self, title: str) -> str:
        rows = [
            (
                scheme,
                *(f"{self.times[scheme][s]:.4f}s" for s in SCENARIOS),
                *(str(self.restarts[scheme][s]) for s in SCENARIOS),
            )
            for scheme in SCHEME_ORDER
        ]
        return render_table(
            [
                "scheme",
                "no error",
                "computation error",
                "memory error",
                "r(none)",
                "r(comp)",
                "r(mem)",
            ],
            rows,
            title=title,
        )


def build_injector(scenario: str, nb: int) -> FaultInjector:
    """The paper's three injection scenarios, placed per the module doc."""
    if scenario == "no_error":
        return no_faults()
    if scenario == "computing_error":
        # One bad element in the GEMM output panel, mid-factorization.
        q = max(1, nb // 2)
        return single_computing_fault(block=(min(q + 1, nb - 1), q), iteration=q)
    if scenario == "memory_error":
        # Bit flip in a finished L tile, after its last verification.
        q = max(0, nb - 2)
        return single_storage_fault(block=(nb - 1, q), iteration=q)
    raise ValidationError(f"unknown scenario {scenario!r}")


def run(
    machine_name: str,
    n: int,
    block_size: int | None = None,
    config: AbftConfig | None = None,
) -> CapabilityResult:
    """Regenerate one capability table (VII for tardis, VIII for bulldozer64)."""
    machine = Machine.preset(machine_name)
    bs = block_size if block_size is not None else machine.default_block_size
    nb = check_block_size(n, bs)
    cfg = config if config is not None else AbftConfig()
    times: dict[str, dict[str, float]] = {}
    restarts: dict[str, dict[str, int]] = {}
    for scheme in SCHEME_ORDER:
        times[scheme] = {}
        restarts[scheme] = {}
        for scenario in SCENARIOS:
            res = scheme_runner(scheme)(
                machine,
                n=n,
                block_size=bs,
                config=cfg,
                injector=build_injector(scenario, nb),
                numerics="shadow",
            )
            times[scheme][scenario] = res.makespan
            restarts[scheme][scenario] = res.restarts
    return CapabilityResult(
        machine=machine_name, n=n, block_size=bs, times=times, restarts=restarts
    )


def run_table7() -> CapabilityResult:
    """Table VII: Tardis, 20480×20480."""
    return run("tardis", 20480)


def run_table8() -> CapabilityResult:
    """Table VIII: Bulldozer64, 30720×30720."""
    return run("bulldozer64", 30720)
