"""Figures 8/9: Optimization 1 — concurrent checksum recalculation.

Relative overhead of Enhanced Online-ABFT before (one CUDA stream, every
recalculation kernel serialized) and after (16 streams, kernels co-resident
up to the GPU's concurrent-kernel capability) across the size sweep.

Expected shape: both curves fall with n; the gap is small on Tardis (Fermi
achieves little real kernel concurrency) and large on Bulldozer64 (Kepler's
Hyper-Q) — the paper reports ≈2% vs ≈10%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import AbftConfig
from repro.experiments.common import overhead_sweep
from repro.util.formatting import render_ascii_chart, render_series


@dataclass
class Opt1Result:
    machine: str
    sizes: tuple[int, ...]
    before: list[float]
    after: list[float]

    def render(self, title: str) -> str:
        series = {"before opt1": self.before, "after opt1": self.after}
        return (
            render_series("n", self.sizes, series, title=title)
            + "\n\n"
            + render_ascii_chart(list(self.sizes), series, title="relative overhead")
        )


#: Both configurations share K=1 and the unoptimized updating placement so
#: the curves isolate the recalculation change, like the paper's figures.
BASE = AbftConfig(verify_interval=1, updating_placement="gpu_main", recalc_streams=1)


def run(machine_name: str, sizes: tuple[int, ...] | None = None) -> Opt1Result:
    _, before = overhead_sweep(machine_name, "enhanced", BASE, sizes)
    sweep, after = overhead_sweep(
        machine_name, "enhanced", replace(BASE, recalc_streams=16), sizes
    )
    return Opt1Result(machine=machine_name, sizes=sweep, before=before, after=after)
