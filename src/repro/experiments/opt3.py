"""Figures 12/13: Optimization 3 — the verification interval K.

Relative overhead of Enhanced Online-ABFT for K ∈ {1, 3, 5} (Optimizations
1 and 2 on).  Expected shape: overhead falls markedly from K=1 to K=3 and
less from K=3 to K=5, since the deferrable (GEMM/TRSM-input) recalculation
— the dominant cost — scales as 1/K while the always-on SYRK/POTF2
verification does not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import AbftConfig
from repro.experiments.common import overhead_sweep
from repro.util.formatting import render_ascii_chart, render_series

K_VALUES = (1, 3, 5)

BASE = AbftConfig(verify_interval=1, updating_placement="auto", recalc_streams=16)


@dataclass
class Opt3Result:
    machine: str
    sizes: tuple[int, ...]
    overheads: dict[int, list[float]]  # K -> overhead per size

    def render(self, title: str) -> str:
        series = {f"K={k}": ys for k, ys in self.overheads.items()}
        return (
            render_series("n", self.sizes, series, title=title)
            + "\n\n"
            + render_ascii_chart(list(self.sizes), series, title="relative overhead")
        )


def run(
    machine_name: str,
    sizes: tuple[int, ...] | None = None,
    k_values: tuple[int, ...] = K_VALUES,
) -> Opt3Result:
    overheads: dict[int, list[float]] = {}
    sweep: tuple[int, ...] = ()
    for k in k_values:
        sweep, ys = overhead_sweep(
            machine_name, "enhanced", replace(BASE, verify_interval=k), sizes
        )
        overheads[k] = ys
    return Opt3Result(machine=machine_name, sizes=sweep, overheads=overheads)
