"""Tables I-VI: render the analytic models as text tables."""

from __future__ import annotations

from repro.models.overhead import overhead_breakdown
from repro.models.verification import VERIFICATION_TABLE, total_verified_tiles
from repro.util.formatting import render_table


def render_table1() -> str:
    """Table I: verification comparison."""
    rows = [
        (r.operation, r.online_verifies, r.online_blocks_big_o,
         r.enhanced_verifies, r.enhanced_blocks_big_o)
        for r in VERIFICATION_TABLE
    ]
    return render_table(
        ["operation", "online verify", "online #blocks",
         "enhanced verify", "enhanced #blocks"],
        rows,
        title="Table I — verification comparison",
    )


def render_verified_tile_counts(nb: int, k_values: tuple[int, ...] = (1, 3, 5)) -> str:
    """Exact totals behind Table I's O() entries for an nb-tile matrix."""
    rows = [("online", "-", total_verified_tiles(nb, "online"))]
    for k in k_values:
        rows.append(("enhanced", k, total_verified_tiles(nb, "enhanced", k)))
    return render_table(
        ["scheme", "K", f"tiles verified (nb={nb})"],
        rows,
        title="Verified-tile totals",
    )


def render_table6(
    points: tuple[tuple[int, int, int], ...] = (
        (20480, 256, 1),
        (23040, 256, 1),
        (30720, 512, 1),
        (30720, 512, 3),
        (30720, 512, 5),
    ),
) -> str:
    """Table VI: overall relative overhead at representative points."""
    rows = []
    for n, b, k in points:
        o = overhead_breakdown(n, b, k)
        rows.append(
            (n, b, k, f"{o.online_total:.5f}", f"{o.enhanced_total:.5f}",
             f"{2.0 / b:.5f}", f"{(2.0 * k + 2.0) / (b * k):.5f}")
        )
    return render_table(
        ["n", "B", "K", "online total", "enhanced total",
         "online limit", "enhanced limit"],
        rows,
        title="Table VI — overall relative overhead",
    )
