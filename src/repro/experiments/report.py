"""One-call consolidated report: every paper artifact plus the ablations.

``build_report()`` runs the full evaluation (or the quick variant) and
returns one text document mirroring the paper's Section VII structure;
``write_report()`` also saves it next to the per-artifact files in
``results/``.  This is what ``python -m repro`` users reach for when they
want "the whole evaluation, one file".
"""

from __future__ import annotations

import pathlib
import time

from repro.experiments import (
    analytic,
    capability,
    kpolicy,
    latency,
    opt1,
    opt2,
    opt3,
    overhead,
    performance,
)

QUICK_SIZES = {
    "tardis": (5120, 12800, 20480),
    "bulldozer64": (5120, 15360, 30720),
}

_RULE = "=" * 78


def build_report(quick: bool = True) -> str:
    """Run the evaluation and return the consolidated text report."""
    sizes = QUICK_SIZES if quick else {"tardis": None, "bulldozer64": None}
    sections: list[str] = [
        "REPRODUCTION REPORT — Enhanced Online-ABFT Cholesky (IPDPS 2016)",
        f"mode: {'quick sweep' if quick else 'full paper sweep'}",
    ]

    def add(title: str, body: str) -> None:
        sections.append(f"{_RULE}\n{title}\n{_RULE}\n{body}")

    add("Analytic models (Tables I, VI)",
        analytic.render_table1() + "\n\n" + analytic.render_table6())

    add(
        "Fault-tolerance capability (Tables VII/VIII)",
        capability.run_table7().render("Table VII — Tardis, 20480²")
        + "\n\n"
        + capability.run_table8().render("Table VIII — Bulldozer64, 30720²"),
    )

    for title, module, machine in (
        ("Optimization 1 — concurrent recalculation (Figs 8/9)", opt1, None),
        ("Optimization 2 — updating placement (Figs 10/11)", opt2, None),
        ("Optimization 3 — verification interval (Figs 12/13)", opt3, None),
        ("Scheme overheads (Figs 14/15)", overhead, None),
        ("Performance (Figs 16/17)", performance, None),
    ):
        parts = []
        for m in ("tardis", "bulldozer64"):
            parts.append(module.run(m, sizes[m]).render(f"{title} — {m}"))
        add(title, "\n\n".join(parts))

    lat_n = 4096 if quick else 8192
    pol_n = 5120 if quick else 20480
    add(
        "Detection latency (extension)",
        latency.run("tardis", lat_n).render(
            f"mid-run storage fault, tardis n={lat_n}"
        ),
    )
    add(
        "K policy (extension)",
        kpolicy.run("tardis", pol_n, rates=(1e-6, 1e-2, 1.0)).render(
            f"optimal K vs fault rate, tardis n={pol_n}"
        ),
    )
    return "\n\n".join(sections) + "\n"


def write_report(
    path: str | pathlib.Path | None = None, quick: bool = True
) -> pathlib.Path:
    """Build the report and write it to *path* (default: results/report.txt)."""
    t0 = time.perf_counter()
    text = build_report(quick=quick)
    if path is None:
        path = pathlib.Path(__file__).resolve().parents[3] / "results" / "report.txt"
    path = pathlib.Path(path)
    path.parent.mkdir(exist_ok=True)
    path.write_text(text)
    elapsed = time.perf_counter() - t0
    return path if elapsed >= 0 else path
