"""Figures 10/11: Optimization 2 — checksum-updating placement.

Relative overhead of Enhanced Online-ABFT with updating serialized in the
GPU's main stream (before) versus the placement the Section V-B decision
model chooses (after): the idle CPU on Tardis, a dedicated GPU stream on
Bulldozer64.  Optimization 1 is on in both configurations (the paper
applies its optimizations cumulatively).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import AbftConfig
from repro.core.placement import choose_updating_placement
from repro.experiments.common import overhead_sweep
from repro.hetero.machine import Machine
from repro.util.formatting import render_ascii_chart, render_series


@dataclass
class Opt2Result:
    machine: str
    sizes: tuple[int, ...]
    before: list[float]
    after: list[float]
    chosen_placement: str

    def render(self, title: str) -> str:
        series = {"before opt2": self.before, "after opt2": self.after}
        return (
            render_series("n", self.sizes, series, title=title)
            + f"\n(decision model chose: {self.chosen_placement})\n\n"
            + render_ascii_chart(list(self.sizes), series, title="relative overhead")
        )


BASE = AbftConfig(verify_interval=1, updating_placement="gpu_main", recalc_streams=16)


def run(machine_name: str, sizes: tuple[int, ...] | None = None) -> Opt2Result:
    _, before = overhead_sweep(machine_name, "enhanced", BASE, sizes)
    sweep, after = overhead_sweep(
        machine_name, "enhanced", replace(BASE, updating_placement="auto"), sizes
    )
    machine = Machine.preset(machine_name)
    chosen = choose_updating_placement(
        machine.spec, sweep[-1], machine.default_block_size
    )
    return Opt2Result(
        machine=machine_name,
        sizes=sweep,
        before=before,
        after=after,
        chosen_placement=chosen,
    )
