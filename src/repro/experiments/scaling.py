"""Service scaling benchmark: execution backends × pool widths.

``python -m repro bench --service`` drives the same closed-loop workload
through every execution backend (``inline`` | ``thread`` | ``process``)
at several pool widths and emits ``BENCH_service.json``: jobs/sec and
p50/p95 latency per cell, the process-pool scaling ratio, and the
determinism verdict (per-job results and the raw factor bits must be
identical whichever backend executed them).

NumPy factorizations hold the GIL for most of an attempt, so the thread
backend cannot scale on CPU-bound work — the process pool is the row
that should grow with workers, and only on hosts with the cores to back
it (the document records ``stamp.cpu_count`` so a flat curve on a 1-core
box is attributable).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.exec import BACKENDS, AttemptRequest, make_executor
from repro.experiments.stamp import run_stamp
from repro.hetero.machine import Machine
from repro.service.core import ServiceConfig, SolveService
from repro.service.job import JobStatus
from repro.service.loadgen import LoadGenConfig, make_job, run_load
from repro.util.validation import require

SCHEMA_VERSION = 1

#: (executor, workers) cells measured by default; ``inline`` has no pool
#: so only width 1 is meaningful there.
DEFAULT_WORKERS = (1, 2, 4)


def _cell_config(executor: str, workers: int, jobs: int) -> tuple[ServiceConfig, LoadGenConfig]:
    service = ServiceConfig(
        workers=(f"tardis:{workers}",),
        executor=executor,
        exec_workers=workers,
        job_timeout_s=300.0,
    )
    load = LoadGenConfig(
        jobs=jobs,
        sizes=(64, 96),
        block_size=32,
        scheme="enhanced",
        seed=0,
        concurrency=max(2, 2 * workers),
    )
    return service, load


def _job_fingerprint(result) -> tuple:
    """The per-job fields the determinism contract pins across backends."""
    return (
        result.job_id,
        result.status.value,
        None if result.residual is None else float(result.residual).hex(),
        result.corrected_errors,
        tuple(tuple(site) for site in result.corrected_sites),
        result.fallback_used,
    )


def _measure_cell(executor: str, workers: int, jobs: int) -> dict[str, Any]:
    service_cfg, load_cfg = _cell_config(executor, workers, jobs)
    service = SolveService(service_cfg)
    report, results = asyncio.run(run_load(service, load_cfg))
    failed = [r for r in results if r.status is JobStatus.FAILED]
    require(not failed, f"{executor} x{workers}: {len(failed)} jobs failed")
    latency = service.metrics["service_latency_seconds"]
    return {
        "jobs_per_s": report.jobs_per_s,
        "p50_s": latency.percentile(0.5),
        "p95_s": latency.percentile(0.95),
        "wall_s": report.wall_s,
        "completed": report.completed,
        "fingerprints": sorted(_job_fingerprint(r) for r in results),
    }


def _factor_parity(executors: tuple[str, ...], probes: int = 2) -> bool:
    """Bit-compare raw factors across backends for a few probe jobs."""
    load = LoadGenConfig(jobs=probes, sizes=(64, 96), block_size=32, scheme="enhanced", seed=0)
    machine = Machine.preset("tardis")
    reference: list[np.ndarray] = []
    identical = True
    for name in executors:
        executor = make_executor(name, workers=1)
        factors = []
        try:
            for index in range(probes):
                request = AttemptRequest(job=make_job(load, index), preset="tardis", machine=machine)
                factors.append(executor.run_sync(request).factor)
        finally:
            stop = getattr(executor, "stop_sync", None)
            if stop is not None:
                stop()
        if not reference:
            reference = factors
        else:
            identical = identical and all(
                np.array_equal(a, b) for a, b in zip(reference, factors)
            )
    return identical


def run(
    jobs: int = 12,
    executors: tuple[str, ...] = BACKENDS,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
) -> dict[str, Any]:
    """Measure the scaling grid and return the BENCH_service document."""
    require(jobs >= 2, "need at least two jobs per cell")
    require(all(e in BACKENDS for e in executors), f"executors must be in {BACKENDS}")
    require(all(w >= 1 for w in workers), "worker widths must be >= 1")

    grid: dict[str, dict[str, dict[str, Any]]] = {}
    fingerprints: dict[tuple, list[str]] = {}
    for name in executors:
        widths = (1,) if name == "inline" else tuple(workers)
        grid[name] = {}
        for width in widths:
            cell = _measure_cell(name, width, jobs)
            prints = tuple(cell.pop("fingerprints"))
            fingerprints.setdefault(prints, []).append(f"{name}:{width}")
            grid[name][str(width)] = cell

    # Every cell ran the identical workload; one equivalence class means
    # every backend produced the same per-job outcomes.
    results_identical = len(fingerprints) == 1
    factors_identical = _factor_parity(tuple(executors))

    speedups: dict[str, float] = {}
    for name, cells in grid.items():
        lo, hi = cells.get("1"), cells.get(str(max(workers)))
        if lo and hi and lo["jobs_per_s"] > 0:
            speedups[name] = hi["jobs_per_s"] / lo["jobs_per_s"]

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro bench --service",
        "stamp": run_stamp(),
        "jobs_per_cell": jobs,
        "sizes": [64, 96],
        "block_size": 32,
        "scheme": "enhanced",
        "workers_sweep": list(workers),
        "grid": grid,
        "speedup_vs_1_worker": speedups,
        "bit_identical": {
            "job_results": results_identical,
            "factors": factors_identical,
        },
    }


def write(doc: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def render(doc: dict[str, Any]) -> str:
    """Human summary of one scaling document."""
    lines = [
        f"service scaling — {doc['jobs_per_cell']} jobs/cell, sizes {doc['sizes']}, "
        f"B={doc['block_size']}, host cpus={doc['stamp'].get('cpu_count', '?')}",
        f"  {'backend':8} {'workers':>7} {'jobs/s':>8} {'p50 ms':>8} {'p95 ms':>8}",
    ]
    for name, cells in doc["grid"].items():
        for width in sorted(cells, key=int):
            cell = cells[width]
            lines.append(
                f"  {name:8} {width:>7} {cell['jobs_per_s']:8.2f} "
                f"{cell['p50_s'] * 1e3:8.1f} {cell['p95_s'] * 1e3:8.1f}"
            )
    for name, ratio in doc["speedup_vs_1_worker"].items():
        lines.append(f"  {name} speedup at max width: {ratio:.2f}x")
    ok = doc["bit_identical"]
    lines.append(
        f"  bit-identical: job_results={ok['job_results']} factors={ok['factors']}"
    )
    return "\n".join(lines)
