"""Service scaling benchmark: execution backends × pool widths.

``python -m repro bench --service`` drives the same closed-loop workload
through every execution backend (``inline`` | ``thread`` | ``process``)
at several pool widths and emits ``BENCH_service.json``: jobs/sec and
p50/p95 latency per cell, the process-pool scaling ratio, and the
determinism verdict (per-job results and the raw factor bits must be
identical whichever backend executed them).

NumPy factorizations hold the GIL for most of an attempt, so the thread
backend cannot scale on CPU-bound work — the process pool is the row
that should grow with workers, and only on hosts with the cores to back
it (the document records ``stamp.cpu_count`` so a flat curve on a 1-core
box is attributable).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.exec import (
    BACKENDS,
    EXECUTOR_CHOICES,
    AttemptRequest,
    make_executor,
    predicted_crossover_n,
)
from repro.experiments.stamp import run_stamp
from repro.hetero.machine import Machine
from repro.service.core import ServiceConfig, SolveService
from repro.service.job import JobStatus
from repro.service.loadgen import LoadGenConfig, make_job, run_load
from repro.util.validation import require

#: Schema 2 adds the job-size grid (``size_grid``): inline-vs-process
#: jobs/s per matrix order plus the measured and model-predicted
#: crossover order.  :func:`load_service_doc` reads schema-1 documents
#: by backfilling ``size_grid: None``.
SCHEMA_VERSION = 2

#: (executor, workers) cells measured by default; ``inline`` has no pool
#: so only width 1 is meaningful there.
DEFAULT_WORKERS = (1, 2, 4)

#: Matrix orders swept by the inline-vs-process size grid.  The small end
#: is where per-dispatch overhead dominates (inline wins); the large end
#: is where multicore compute dominates (process should win — on hosts
#: with the cores to back it).
DEFAULT_GRID_SIZES = (256, 512, 1024, 2048)


def _cell_config(executor: str, workers: int, jobs: int) -> tuple[ServiceConfig, LoadGenConfig]:
    service = ServiceConfig(
        workers=(f"tardis:{workers}",),
        executor=executor,
        exec_workers=workers,
        job_timeout_s=300.0,
    )
    load = LoadGenConfig(
        jobs=jobs,
        sizes=(64, 96),
        block_size=32,
        scheme="enhanced",
        seed=0,
        concurrency=max(2, 2 * workers),
    )
    return service, load


def _job_fingerprint(result) -> tuple:
    """The per-job fields the determinism contract pins across backends."""
    return (
        result.job_id,
        result.status.value,
        None if result.residual is None else float(result.residual).hex(),
        result.corrected_errors,
        tuple(tuple(site) for site in result.corrected_sites),
        result.fallback_used,
    )


def _measure_cell(executor: str, workers: int, jobs: int) -> dict[str, Any]:
    service_cfg, load_cfg = _cell_config(executor, workers, jobs)
    service = SolveService(service_cfg)
    report, results = asyncio.run(run_load(service, load_cfg))
    failed = [r for r in results if r.status is JobStatus.FAILED]
    require(not failed, f"{executor} x{workers}: {len(failed)} jobs failed")
    latency = service.metrics["service_latency_seconds"]
    return {
        "jobs_per_s": report.jobs_per_s,
        "p50_s": latency.percentile(0.5),
        "p95_s": latency.percentile(0.95),
        "wall_s": report.wall_s,
        "completed": report.completed,
        "fingerprints": sorted(_job_fingerprint(r) for r in results),
    }


def _factor_parity(executors: tuple[str, ...], probes: int = 2) -> bool:
    """Bit-compare raw factors across backends for a few probe jobs."""
    load = LoadGenConfig(jobs=probes, sizes=(64, 96), block_size=32, scheme="enhanced", seed=0)
    machine = Machine.preset("tardis")
    reference: list[np.ndarray] = []
    identical = True
    for name in executors:
        executor = make_executor(name, workers=1)
        factors = []
        try:
            for index in range(probes):
                request = AttemptRequest(job=make_job(load, index), preset="tardis", machine=machine)
                factors.append(executor.run_sync(request).factor)
        finally:
            stop = getattr(executor, "stop_sync", None)
            if stop is not None:
                stop()
        if not reference:
            reference = factors
        else:
            identical = identical and all(
                np.array_equal(a, b) for a, b in zip(reference, factors)
            )
    return identical


def _measure_size_cell(executor: str, n: int, jobs: int, width: int) -> dict[str, Any]:
    """One size-grid cell: *jobs* closed-loop jobs of order *n*."""
    service = SolveService(
        ServiceConfig(
            workers=(f"tardis:{width}",),
            executor=executor,
            exec_workers=width,
            job_timeout_s=600.0,
        )
    )
    load = LoadGenConfig(
        jobs=jobs,
        sizes=(n,),
        block_size=32,
        scheme="enhanced",
        seed=0,
        concurrency=max(2, 2 * width),
    )
    report, results = asyncio.run(run_load(service, load))
    failed = [r for r in results if r.status is JobStatus.FAILED]
    require(not failed, f"size grid {executor} n={n}: {len(failed)} jobs failed")
    return {
        "jobs_per_s": report.jobs_per_s,
        "seconds_per_job": report.wall_s / max(1, report.completed),
        "wall_s": report.wall_s,
        "completed": report.completed,
        "dispatch_latency_s": service.executor.dispatch_latency_s(),
    }


def run_size_grid(
    sizes: tuple[int, ...] = DEFAULT_GRID_SIZES,
    jobs: int = 3,
    width: int = 2,
) -> dict[str, Any]:
    """Inline-vs-process jobs/s per matrix order, plus the crossover.

    ``measured_crossover_n`` is the smallest swept order at which the
    process backend's throughput meets or beats inline (``None`` if it
    never does — expected on single-core hosts, where forking buys no
    parallelism to amortize the dispatch against).
    ``predicted_crossover_n`` asks the backend chooser's cost model the
    same question, fed with the measured inline seconds-per-job and the
    process pool's measured dispatch-latency EWMA, so the two fields
    disagreeing is a finding about the model, not noise.
    """
    require(jobs >= 1, "need at least one job per grid cell")
    require(all(n >= 32 for n in sizes), "grid sizes must be >= 32")
    require(width >= 1, "grid width must be >= 1")
    sizes = tuple(sorted(sizes))
    cells: dict[str, dict[str, dict[str, Any]]] = {"inline": {}, "process": {}}
    for n in sizes:
        cells["inline"][str(n)] = _measure_size_cell("inline", n, jobs, width)
        cells["process"][str(n)] = _measure_size_cell("process", n, jobs, width)

    measured: int | None = None
    for n in sizes:
        if cells["process"][str(n)]["jobs_per_s"] >= cells["inline"][str(n)]["jobs_per_s"]:
            measured = n
            break

    inline_s = {n: cells["inline"][str(n)]["seconds_per_job"] for n in sizes}
    overheads = [cells["process"][str(n)]["dispatch_latency_s"] for n in sizes]
    overhead_process_s = sum(overheads) / len(overheads)
    predicted = predicted_crossover_n(
        lambda n: inline_s[n],
        overhead_process_s=overhead_process_s,
        process_capacity=width,
        sizes=sizes,
    )
    return {
        "sizes": list(sizes),
        "jobs_per_cell": jobs,
        "process_workers": width,
        "cells": cells,
        "overhead_process_s": overhead_process_s,
        "measured_crossover_n": measured,
        "predicted_crossover_n": predicted,
    }


def run(
    jobs: int = 12,
    executors: tuple[str, ...] = BACKENDS,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    grid_sizes: tuple[int, ...] = DEFAULT_GRID_SIZES,
    grid_jobs: int = 3,
) -> dict[str, Any]:
    """Measure the scaling grid and return the BENCH_service document.

    ``grid_sizes=()`` skips the inline-vs-process size grid (the document
    then carries ``size_grid: None``, same as a schema-1 reader sees).
    """
    require(jobs >= 2, "need at least two jobs per cell")
    require(
        all(e in EXECUTOR_CHOICES for e in executors),
        f"executors must be in {EXECUTOR_CHOICES}",
    )
    require(all(w >= 1 for w in workers), "worker widths must be >= 1")

    grid: dict[str, dict[str, dict[str, Any]]] = {}
    fingerprints: dict[tuple, list[str]] = {}
    for name in executors:
        widths = (1,) if name == "inline" else tuple(workers)
        grid[name] = {}
        for width in widths:
            cell = _measure_cell(name, width, jobs)
            prints = tuple(cell.pop("fingerprints"))
            fingerprints.setdefault(prints, []).append(f"{name}:{width}")
            grid[name][str(width)] = cell

    # Every cell ran the identical workload; one equivalence class means
    # every backend produced the same per-job outcomes.
    results_identical = len(fingerprints) == 1
    factors_identical = _factor_parity(tuple(executors))

    speedups: dict[str, float] = {}
    for name, cells in grid.items():
        lo, hi = cells.get("1"), cells.get(str(max(workers)))
        if lo and hi and lo["jobs_per_s"] > 0:
            speedups[name] = hi["jobs_per_s"] / lo["jobs_per_s"]

    size_grid = None
    if grid_sizes:
        size_grid = run_size_grid(tuple(grid_sizes), jobs=grid_jobs, width=max(workers))

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro bench --service",
        "stamp": run_stamp(),
        "jobs_per_cell": jobs,
        "sizes": [64, 96],
        "block_size": 32,
        "scheme": "enhanced",
        "workers_sweep": list(workers),
        "grid": grid,
        "speedup_vs_1_worker": speedups,
        "size_grid": size_grid,
        "bit_identical": {
            "job_results": results_identical,
            "factors": factors_identical,
        },
    }


def load_service_doc(path: str | Path) -> dict[str, Any]:
    """Read a BENCH_service document of any schema version.

    Schema-1 documents predate the size grid; they come back with
    ``size_grid: None`` so consumers can treat "not measured" and
    "skipped" uniformly instead of branching on the version.
    """
    doc = json.loads(Path(path).read_text())
    version = int(doc.get("schema", 1))
    require(
        version <= SCHEMA_VERSION,
        f"BENCH_service schema {version} is newer than this reader ({SCHEMA_VERSION})",
    )
    if version < 2:
        doc.setdefault("size_grid", None)
    return doc


def write(doc: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def render(doc: dict[str, Any]) -> str:
    """Human summary of one scaling document."""
    lines = [
        f"service scaling — {doc['jobs_per_cell']} jobs/cell, sizes {doc['sizes']}, "
        f"B={doc['block_size']}, host cpus={doc['stamp'].get('cpu_count', '?')}",
        f"  {'backend':8} {'workers':>7} {'jobs/s':>8} {'p50 ms':>8} {'p95 ms':>8}",
    ]
    for name, cells in doc["grid"].items():
        for width in sorted(cells, key=int):
            cell = cells[width]
            lines.append(
                f"  {name:8} {width:>7} {cell['jobs_per_s']:8.2f} "
                f"{cell['p50_s'] * 1e3:8.1f} {cell['p95_s'] * 1e3:8.1f}"
            )
    for name, ratio in doc["speedup_vs_1_worker"].items():
        lines.append(f"  {name} speedup at max width: {ratio:.2f}x")
    size_grid = doc.get("size_grid")
    if size_grid:
        lines.append(
            f"  size grid (x{size_grid['process_workers']} process pool, "
            f"{size_grid['jobs_per_cell']} jobs/cell):"
        )
        lines.append(f"  {'n':>6} {'inline j/s':>11} {'process j/s':>12}")
        for n in size_grid["sizes"]:
            lines.append(
                f"  {n:>6} {size_grid['cells']['inline'][str(n)]['jobs_per_s']:11.2f} "
                f"{size_grid['cells']['process'][str(n)]['jobs_per_s']:12.2f}"
            )
        lines.append(
            f"  crossover n: measured={size_grid['measured_crossover_n']} "
            f"predicted={size_grid['predicted_crossover_n']}"
        )
    ok = doc["bit_identical"]
    lines.append(
        f"  bit-identical: job_results={ok['job_results']} factors={ok['factors']}"
    )
    return "\n".join(lines)
