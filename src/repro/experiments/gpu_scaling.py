"""Future-GPU scaling: does the <6% overhead survive faster accelerators?

The paper's overhead model says the asymptotic cost of Enhanced is the
checksum *recalculation* — a bandwidth-bound O(n³/B)-byte stream — while
the protected work is compute-bound O(n³).  GPU generations have grown
FLOPS faster than memory bandwidth, so the relative overhead should
*worsen* on future parts unless B grows with them (as MAGMA indeed did:
256 on Fermi, 512 on Kepler).

This experiment scales a baseline machine's compute peak by factors while
holding memory bandwidth fixed, and reports Enhanced's relative overhead —
with and without the compensating block-size increase.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import AbftConfig, enhanced_potrf
from repro.hetero.machine import Machine
from repro.hetero.spec import PRESETS, MachineSpec
from repro.magma.potrf import magma_potrf
from repro.util.formatting import render_table
from repro.util.validation import check_positive, require


def scaled_machine(base: MachineSpec, compute_factor: float) -> Machine:
    """A hypothetical next-generation part: ×compute, same memory system."""
    check_positive("compute_factor", compute_factor)
    gpu = replace(base.gpu, peak_gflops=base.gpu.peak_gflops * compute_factor)
    return Machine(replace(base, gpu=gpu))


@dataclass(frozen=True)
class ScalingPoint:
    compute_factor: float
    block_size: int
    baseline_seconds: float
    enhanced_seconds: float

    @property
    def overhead(self) -> float:
        return self.enhanced_seconds / self.baseline_seconds - 1.0


@dataclass
class ScalingResult:
    machine: str
    n: int
    fixed_b: list[ScalingPoint]
    scaled_b: list[ScalingPoint]

    def render(self, title: str) -> str:
        rows = []
        for fixed, scaled in zip(self.fixed_b, self.scaled_b):
            rows.append(
                (
                    f"{fixed.compute_factor:g}x",
                    fixed.block_size,
                    f"{fixed.overhead:.4f}",
                    scaled.block_size,
                    f"{scaled.overhead:.4f}",
                )
            )
        return render_table(
            ["compute", "B (fixed)", "overhead", "B (scaled)", "overhead"],
            rows,
            title=title,
        )


def run(
    machine_name: str = "tardis",
    n: int = 20480,
    factors: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
) -> ScalingResult:
    require(machine_name in PRESETS, f"unknown machine {machine_name!r}")
    base = PRESETS[machine_name]
    b0 = base.default_block_size
    fixed: list[ScalingPoint] = []
    scaled: list[ScalingPoint] = []
    for f in factors:
        machine = scaled_machine(base, f)
        for out, b in ((fixed, b0), (scaled, _scaled_block(b0, f, n))):
            baseline = magma_potrf(machine, n=n, block_size=b, numerics="shadow")
            enhanced = enhanced_potrf(
                machine, n=n, block_size=b, config=AbftConfig(), numerics="shadow"
            )
            out.append(
                ScalingPoint(
                    compute_factor=f,
                    block_size=b,
                    baseline_seconds=baseline.makespan,
                    enhanced_seconds=enhanced.makespan,
                )
            )
    return ScalingResult(machine=machine_name, n=n, fixed_b=fixed, scaled_b=scaled)


def _scaled_block(b0: int, factor: float, n: int) -> int:
    """Grow B with compute (doubling per 2× compute), bounded by n."""
    b = b0
    f = factor
    while f >= 2.0 and b * 2 <= n and n % (b * 2) == 0:
        b *= 2
        f /= 2.0
    return b
