"""Choosing K from the fault rate — quantifying Optimization 3's trade-off.

The paper states the trade qualitatively: "For systems with low error rate,
we can increase K to lower the overhead.  On the other hand, we need to
keep K low for systems with high error rate."  This experiment makes it a
number: for each fault rate we compute, per K,

- the fault-free run time T(K) (simulated, all optimizations on), and
- the probability that ≥2 faults strike within one K-iteration
  verification window somewhere in the run — the event that can defeat the
  two-checksum code and force a restart (conservatively: any window with
  two faults counts, even though they usually land in different columns),

giving the expected completion time ``E[T] = T(K) / (1 − p_restart)`` under
retry-until-success recovery (each attempt fails independently with
p_restart, so attempts are geometric).  The optimal K is the argmin; it
grows as the fault rate falls, exactly the paper's guidance, and at very
high rates the expectation diverges for large K — the regime where only
K=1 keeps the window risk survivable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AbftConfig
from repro.experiments.common import scheme_time
from repro.faults.model import PoissonFaultModel
from repro.hetero.machine import Machine
from repro.util.formatting import render_table
from repro.util.validation import check_positive

_DOUBLE = 8


@dataclass(frozen=True)
class KPoint:
    """One (fault rate, K) evaluation."""

    k: int
    run_seconds: float
    p_restart: float
    expected_seconds: float


@dataclass
class KPolicyResult:
    machine: str
    n: int
    block_size: int
    #: faults/GB/s → evaluated points (ascending K)
    by_rate: dict[float, list[KPoint]]

    def optimal_k(self, rate: float) -> int:
        points = self.by_rate[rate]
        return min(points, key=lambda p: p.expected_seconds).k

    def render(self, title: str) -> str:
        rows = []
        for rate, points in self.by_rate.items():
            best = self.optimal_k(rate)
            for p in points:
                rows.append(
                    (
                        f"{rate:g}",
                        p.k,
                        f"{p.run_seconds:.4f}",
                        f"{p.p_restart:.2e}",
                        f"{p.expected_seconds:.4f}",
                        "<== optimal" if p.k == best else "",
                    )
                )
        return render_table(
            ["faults/GB/s", "K", "run (s)", "P[restart]", "E[T] (s)", ""],
            rows,
            title=title,
        )


def expected_completion(
    machine_name: str,
    n: int,
    k: int,
    rate_per_gb_s: float,
    block_size: int | None = None,
) -> KPoint:
    """Expected completion time of Enhanced at interval *k* under *rate*."""
    check_positive("k", k)
    machine = Machine.preset(machine_name)
    bs = block_size if block_size is not None else machine.default_block_size
    t_run = scheme_time(
        machine_name, "enhanced", n, AbftConfig(verify_interval=k), block_size=bs
    )
    footprint_gb = n * n * _DOUBLE / 1e9
    model = PoissonFaultModel(rate_per_gb_s, footprint_gb)
    nb = n // bs
    t_iter = t_run / nb
    windows = max(1, nb // k)
    p_window = model.p_at_least(2, k * t_iter)
    p_run = 1.0 - (1.0 - p_window) ** windows
    expected = t_run / (1.0 - p_run) if p_run < 1.0 else float("inf")
    return KPoint(
        k=k,
        run_seconds=t_run,
        p_restart=p_run,
        expected_seconds=expected,
    )


def run(
    machine_name: str = "tardis",
    n: int = 20480,
    rates: tuple[float, ...] = (1e-6, 1e-4, 1e-2, 1.0),
    k_values: tuple[int, ...] = (1, 2, 3, 5, 8, 12),
    block_size: int | None = None,
) -> KPolicyResult:
    """Evaluate E[T] over a (rate × K) grid."""
    machine = Machine.preset(machine_name)
    bs = block_size if block_size is not None else machine.default_block_size
    by_rate: dict[float, list[KPoint]] = {}
    for rate in rates:
        by_rate[rate] = [
            expected_completion(machine_name, n, k, rate, bs) for k in k_values
        ]
    return KPolicyResult(machine=machine_name, n=n, block_size=bs, by_rate=by_rate)
