"""Figures 16/17: performance comparison (sustained GFLOPS).

Plain MAGMA, the CULA R18 baseline model, and the three ABFT schemes
across the size sweep.  Expected shape: MAGMA on top; the three ABFT
curves just below it (ordered offline ≥ online ≥ enhanced, all within a
few percent); CULA clearly below all of them — i.e. Enhanced Online-ABFT
delivers fault tolerance *and* beats the vendor library, the paper's
headline result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blas.flops import potrf_flops
from repro.core import AbftConfig
from repro.experiments.common import baseline_time, scheme_time, sweep_for
from repro.hetero.machine import Machine
from repro.magma.cula import cula_potrf_time
from repro.util.formatting import render_ascii_chart, render_series

CONFIG = AbftConfig(verify_interval=1, updating_placement="auto", recalc_streams=16)

SERIES_ORDER = ("magma", "cula", "offline", "online", "enhanced")


@dataclass
class PerformanceResult:
    machine: str
    sizes: tuple[int, ...]
    gflops: dict[str, list[float]]

    def render(self, title: str) -> str:
        return (
            render_series("n", self.sizes, self.gflops, title=title, precision=1)
            + "\n\n"
            + render_ascii_chart(list(self.sizes), self.gflops, title="GFLOPS")
        )


def run(machine_name: str, sizes: tuple[int, ...] | None = None) -> PerformanceResult:
    machine = Machine.preset(machine_name)
    sweep = sizes if sizes is not None else sweep_for(machine_name)
    gflops: dict[str, list[float]] = {name: [] for name in SERIES_ORDER}
    for n in sweep:
        flops = potrf_flops(n)
        gflops["magma"].append(flops / baseline_time(machine_name, n) / 1e9)
        gflops["cula"].append(flops / cula_potrf_time(machine.spec, n) / 1e9)
        for scheme in ("offline", "online", "enhanced"):
            gflops[scheme].append(
                flops / scheme_time(machine_name, scheme, n, CONFIG) / 1e9
            )
    return PerformanceResult(machine=machine_name, sizes=sweep, gflops=gflops)
