"""Shared experiment plumbing: sweeps, baselines, overhead arithmetic."""

from __future__ import annotations

from functools import lru_cache

from repro.core import AbftConfig, enhanced_potrf, offline_potrf, online_potrf
from repro.hetero.machine import Machine
from repro.util.exceptions import ValidationError
from repro.util.validation import require

#: Matrix-size sweeps from Section VII-A ("from 5120×5120 to ...").
TARDIS_SWEEP: tuple[int, ...] = tuple(range(5120, 23040 + 1, 2560))
BULLDOZER_SWEEP: tuple[int, ...] = tuple(range(5120, 30720 + 1, 2560))

SCHEMES = {
    "offline": offline_potrf,
    "online": online_potrf,
    "enhanced": enhanced_potrf,
}


def sweep_for(machine_name: str) -> tuple[int, ...]:
    """The paper's size sweep for one testbed."""
    if machine_name == "tardis":
        return TARDIS_SWEEP
    if machine_name == "bulldozer64":
        return BULLDOZER_SWEEP
    raise ValidationError(f"no sweep defined for machine {machine_name!r}")


def scheme_runner(name: str):
    require(name in SCHEMES, f"unknown scheme {name!r}; have {sorted(SCHEMES)}")
    return SCHEMES[name]


@lru_cache(maxsize=256)
def baseline_time(machine_name: str, n: int, block_size: int | None = None) -> float:
    """Simulated seconds of the plain MAGMA driver (cached per size)."""
    from repro.magma.potrf import magma_potrf

    machine = Machine.preset(machine_name)
    res = magma_potrf(machine, n=n, block_size=block_size, numerics="shadow")
    return res.makespan


def scheme_time(
    machine_name: str,
    scheme: str,
    n: int,
    config: AbftConfig,
    block_size: int | None = None,
) -> float:
    """Simulated seconds of one fault-free scheme run (shadow mode)."""
    machine = Machine.preset(machine_name)
    res = scheme_runner(scheme)(
        machine, n=n, block_size=block_size, config=config, numerics="shadow"
    )
    return res.makespan


def relative_overhead(scheme_seconds: float, baseline_seconds: float) -> float:
    """The paper's 'relative overhead': extra time over plain MAGMA."""
    require(baseline_seconds > 0, "baseline must be positive")
    return (scheme_seconds - baseline_seconds) / baseline_seconds


def overhead_sweep(
    machine_name: str,
    scheme: str,
    config: AbftConfig,
    sizes: tuple[int, ...] | None = None,
) -> tuple[tuple[int, ...], list[float]]:
    """Relative overhead of *scheme* under *config* across the size sweep."""
    sweep = sizes if sizes is not None else sweep_for(machine_name)
    overheads = [
        relative_overhead(
            scheme_time(machine_name, scheme, n, config), baseline_time(machine_name, n)
        )
        for n in sweep
    ]
    return sweep, overheads
