"""Detection latency: how long corruption survives under each scheme.

Online-ABFT's founding claim is that errors are corrected "in a timely
manner to avoid error propagation"; Enhanced tightens the guarantee to
"before the data is used".  This experiment measures it: inject one
storage fault into tile (i, q) during the window after iteration q, run
each scheme in shadow mode, and report

- the *detection iteration* (when a verification first saw the corruption,
  whether it corrected or had to restart), and
- the *exposure*: simulated seconds between injection and that event,
  obtained from the per-iteration boundaries of the simulated timeline.

Offline's exposure is the whole remaining run; Online's is until the
corrupted tile next feeds an operation whose output verification trips;
Enhanced's is at most one iteration (the next pre-read verification).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AbftConfig
from repro.experiments.common import scheme_runner
from repro.faults.injector import FaultInjector, FaultPlan, Hook
from repro.hetero.machine import Machine
from repro.util.formatting import render_table
from repro.util.validation import check_block_size, require


@dataclass(frozen=True)
class LatencyPoint:
    scheme: str
    injected_iteration: int
    detected_iteration: int | None  # None = never seen (silent)
    exposure_seconds: float
    corrected_in_place: bool

    @property
    def exposure_iterations(self) -> int | None:
        if self.detected_iteration is None:
            return None
        return self.detected_iteration - self.injected_iteration


@dataclass
class LatencyResult:
    machine: str
    n: int
    block_size: int
    points: list[LatencyPoint]

    def render(self, title: str) -> str:
        rows = [
            (
                p.scheme,
                p.injected_iteration,
                "-" if p.detected_iteration is None else p.detected_iteration,
                "-" if p.exposure_iterations is None else p.exposure_iterations,
                f"{p.exposure_seconds:.4f}",
                "corrected" if p.corrected_in_place else "restart",
            )
            for p in self.points
        ]
        return render_table(
            ["scheme", "injected@", "detected@", "iters exposed",
             "exposure (s)", "outcome"],
            rows,
            title=title,
        )


def _iteration_boundaries(timeline, nb: int) -> list[float]:
    """Finish time of the last span tagged with each iteration."""
    bounds = [0.0] * nb
    for span in timeline:
        it = span.meta.get("iteration")
        if it is not None and 0 <= it < nb:
            bounds[it] = max(bounds[it], span.finish)
    # fill gaps (iterations with no tagged span) monotonically
    for i in range(1, nb):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return bounds


def measure_one(
    machine: Machine,
    scheme: str,
    n: int,
    block_size: int,
    victim: tuple[int, int],
    inject_iteration: int,
) -> LatencyPoint:
    """Latency of one scheme for one injected storage fault (shadow mode)."""
    nb = check_block_size(n, block_size)
    require(0 <= inject_iteration < nb, "inject iteration out of range")
    injector = FaultInjector(
        [
            FaultPlan(
                hook=Hook.STORAGE_WINDOW,
                iteration=inject_iteration,
                kind="storage",
                block=victim,
                coord=(1, 2),
            )
        ]
    )
    res = scheme_runner(scheme)(
        machine,
        n=n,
        block_size=block_size,
        config=AbftConfig(),
        injector=injector,
        numerics="shadow",
    )
    # Detection evidence: either a correction was recorded, or an attempt
    # failed (restart).  The detection iteration is recovered from the
    # verifier's bookkeeping for corrections, or from where the failed
    # attempt's timeline stops for restarts.
    if res.restarts:
        failed = res.failed_timelines[0]
        bounds = _iteration_boundaries(failed, nb)
        injected_t = bounds[inject_iteration]
        end = res.attempt_makespans[0]
        detected_it = next(
            (i for i, t in enumerate(bounds) if t >= end - 1e-12), nb - 1
        )
        return LatencyPoint(
            scheme=scheme,
            injected_iteration=inject_iteration,
            detected_iteration=detected_it,
            exposure_seconds=max(end - injected_t, 0.0),
            corrected_in_place=False,
        )
    bounds = _iteration_boundaries(res.timeline, nb)
    injected_t = bounds[inject_iteration]
    if res.stats.data_corrections or res.stats.checksum_corrections:
        # find the first verification at/after the injection that fixed it:
        # in shadow mode corrections clear taint at the verifying batch; we
        # approximate its time by the next iteration boundary after the
        # injection at which the victim is read (= detection).
        detected_it = min(inject_iteration + 1, nb - 1)
        exposure = bounds[detected_it] - injected_t
        return LatencyPoint(
            scheme=scheme,
            injected_iteration=inject_iteration,
            detected_iteration=detected_it,
            exposure_seconds=max(exposure, 0.0),
            corrected_in_place=True,
        )
    return LatencyPoint(
        scheme=scheme,
        injected_iteration=inject_iteration,
        detected_iteration=None,
        exposure_seconds=res.makespan - injected_t,
        corrected_in_place=False,
    )


def run(
    machine_name: str = "tardis",
    n: int = 8192,
    block_size: int | None = None,
    inject_fraction: float = 0.5,
) -> LatencyResult:
    """Measure all three schemes for a mid-run storage fault.

    The victim tile sits in the factored region (read by the next SYRK),
    injected at ``inject_fraction`` of the way through the run.
    """
    machine = Machine.preset(machine_name)
    bs = block_size if block_size is not None else machine.default_block_size
    nb = check_block_size(n, bs)
    q = max(1, int(nb * inject_fraction))
    victim = (min(q + 1, nb - 1), q)
    points = [
        measure_one(machine, scheme, n, bs, victim, q)
        for scheme in ("offline", "online", "enhanced")
    ]
    return LatencyResult(machine=machine_name, n=n, block_size=bs, points=points)
