"""Figures 14/15: overhead comparison of the three ABFT schemes.

Relative overhead (vs. plain MAGMA) of Offline-, Online- and Enhanced
Online-ABFT across the size sweep, all optimizations on (streams, auto
placement; Enhanced at K=1 — the strongest protection).  Expected shape:
all three approach small constants as n grows; Enhanced sits slightly
above the other two (its 1/B-order recalculation term), staying under
≈6% on Tardis and ≈4% on Bulldozer64 at large n.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AbftConfig
from repro.experiments.common import overhead_sweep
from repro.util.formatting import render_ascii_chart, render_series

SCHEMES = ("offline", "online", "enhanced")

CONFIG = AbftConfig(verify_interval=1, updating_placement="auto", recalc_streams=16)


@dataclass
class OverheadResult:
    machine: str
    sizes: tuple[int, ...]
    overheads: dict[str, list[float]]

    def render(self, title: str) -> str:
        return (
            render_series("n", self.sizes, self.overheads, title=title)
            + "\n\n"
            + render_ascii_chart(
                list(self.sizes), self.overheads, title="relative overhead"
            )
        )


def run(machine_name: str, sizes: tuple[int, ...] | None = None) -> OverheadResult:
    overheads: dict[str, list[float]] = {}
    sweep: tuple[int, ...] = ()
    for scheme in SCHEMES:
        sweep, ys = overhead_sweep(machine_name, scheme, CONFIG, sizes)
        overheads[scheme] = ys
    return OverheadResult(machine=machine_name, sizes=sweep, overheads=overheads)
