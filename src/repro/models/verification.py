"""Table I: which tiles each scheme verifies, per operation and iteration.

Online-ABFT verifies an operation's *outputs* after it runs; Enhanced
verifies its *inputs* before.  The block counts below are per outer
iteration j of an nb×nb-tile factorization; the asymptotic column matches
the paper's O() entries (n there counts tiles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require


@dataclass(frozen=True)
class VerificationRow:
    """One operation's verification sets (names follow the paper's Fig. 3)."""

    operation: str
    online_verifies: str
    online_blocks_big_o: str
    enhanced_verifies: str
    enhanced_blocks_big_o: str


#: Table I, verbatim.
VERIFICATION_TABLE: tuple[VerificationRow, ...] = (
    VerificationRow("POTF2", "L", "O(1)", "A", "O(1)"),
    VerificationRow("TRSM", "B", "O(n)", "L, B", "O(n)"),
    VerificationRow("SYRK", "A", "O(1)", "A, C", "O(n)"),
    VerificationRow("GEMM", "B", "O(n)", "B, C, D", "O(n^2)"),
)


def verification_counts(nb: int, j: int, scheme: str, k: int = 1) -> dict[str, int]:
    """Exact tile counts verified at iteration *j* by *scheme*.

    Keys are the four operations; Enhanced applies the every-K deferral
    (Optimization 3) to GEMM's and TRSM's deferrable inputs only.
    """
    require(0 <= j < nb, f"iteration {j} outside [0, {nb})")
    require(scheme in ("online", "enhanced"), f"unknown scheme {scheme!r}")
    rows = nb - j - 1  # trailing panel tiles
    if scheme == "online":
        return {
            "SYRK": 1 if j > 0 else 0,
            "GEMM": rows if j > 0 else 0,
            "POTF2": 1,
            "TRSM": rows,
        }
    due = j % k == 0
    return {
        # diag + the finished block row L[j, 0:j] ("A, C")
        "SYRK": 1 + j,
        # trailing panel + LD tiles ("B, C, D"; C is covered by SYRK's set)
        "GEMM": (rows + rows * j if due else 0) if j > 0 and rows else 0,
        "POTF2": 1,
        # L[j,j] always; the panel only when due
        "TRSM": (1 + (rows if due else 0)) if rows else 0,
    }


def total_verified_tiles(nb: int, scheme: str, k: int = 1) -> int:
    """Tiles verified across the whole factorization (excl. final sweeps)."""
    return sum(
        sum(verification_counts(nb, j, scheme, k).values()) for j in range(nb)
    )
