"""Analytic models from the paper: verification counts (Table I) and the
Section VI overhead formulas (Tables II-VI)."""

from repro.models.overhead import (
    OverheadBreakdown,
    enhanced_overall_relative,
    enhanced_overall_relative_limit,
    online_overall_relative,
    online_overall_relative_limit,
    overhead_breakdown,
)
from repro.models.verification import VERIFICATION_TABLE, verification_counts

__all__ = [
    "OverheadBreakdown",
    "enhanced_overall_relative",
    "enhanced_overall_relative_limit",
    "online_overall_relative",
    "online_overall_relative_limit",
    "overhead_breakdown",
    "VERIFICATION_TABLE",
    "verification_counts",
]
