"""Section VI: the analytic overhead model (Tables II-VI).

All "relative overhead" figures are flop counts divided by the Cholesky
baseline ``n³/3``.  These formulas are the paper's leading-order algebra,
implemented symbol-for-symbol so tests can check them against both the
exact kernel-level flop accounting in :mod:`repro.blas.flops` /
:mod:`repro.core.update` and the printed Table VI limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.exceptions import ValidationError
from repro.util.validation import check_positive


def _validate(n: int, b: int, k: int = 1) -> None:
    check_positive("n", n)
    check_positive("B", b)
    check_positive("K", k)


# ---------------------------------------------------------------------------
# 1) Encoding (shared by all schemes)
# ---------------------------------------------------------------------------

def encoding_flops(n: int) -> float:
    """``O_encode = ½ · 4B² · (n/B)² = 2n²`` (Section VI-1)."""
    _validate(n, 1)
    return 2.0 * n * n


def encoding_relative(n: int) -> float:
    """Relative encoding overhead ``6/n``."""
    return encoding_flops(n) / (n**3 / 3.0)


# ---------------------------------------------------------------------------
# 2) Checksum updating (Table III; same for Online and Enhanced)
# ---------------------------------------------------------------------------

def updating_flops_by_op(n: int, b: int) -> dict[str, float]:
    """Table III's O_updating column."""
    _validate(n, b)
    return {
        "POTF2": 2.0 * b * n,
        "TRSM": 2.0 * n * n,
        "SYRK": 2.0 * n * n,
        "GEMM": 2.0 / (3.0 * b) * n**3,
    }


def updating_relative(n: int, b: int) -> float:
    """Total updating relative overhead ``12/n + 2/B`` (POTF2 ignored)."""
    _validate(n, b)
    return 12.0 / n + 2.0 / b


# ---------------------------------------------------------------------------
# 3) Checksum recalculation (Tables IV and V)
# ---------------------------------------------------------------------------

def online_recalc_flops_by_op(n: int, b: int) -> dict[str, float]:
    """Table IV (post-update recalculation)."""
    _validate(n, b)
    return {
        "POTF2": 4.0 * b * n,
        "TRSM": 2.0 * n * n,
        "SYRK": 4.0 * b * n,
        "GEMM": 2.0 * n * n,
    }


def online_recalc_relative(n: int, b: int) -> float:
    """``12/n`` (POTF2 and SYRK terms ignored)."""
    _validate(n, b)
    return 12.0 / n


def enhanced_recalc_flops_by_op(n: int, b: int, k: int = 1) -> dict[str, float]:
    """Table V (pre-access recalculation with the every-K interval)."""
    _validate(n, b, k)
    return {
        "POTF2": 4.0 * b * n,
        "TRSM": 2.0 * n * n,
        "SYRK": 2.0 * n * n / k,
        "GEMM": 2.0 * n**3 / (3.0 * b * k),
    }


def enhanced_recalc_relative(n: int, b: int, k: int = 1) -> float:
    """``(6K+6)/(nK) + 2/(BK)`` — Table V's total."""
    _validate(n, b, k)
    return (6.0 * k + 6.0) / (n * k) + 2.0 / (b * k)


# ---------------------------------------------------------------------------
# 5-6) Space and transfer overheads
# ---------------------------------------------------------------------------

def space_relative(b: int) -> float:
    """Checksum matrix elements relative to the input: ``2/B``."""
    _validate(1, b)
    return 2.0 / b


def transfer_elements_cpu_updating(n: int, b: int, k: int, scheme: str) -> float:
    """Section VI-6: data-transfer element counts for the CPU placement."""
    _validate(n, b, k)
    initial = 2.0 * n * n / b
    updating = n * n / 2.0
    if scheme == "online":
        verification = n * n / (2.0 * b)
    elif scheme == "enhanced":
        verification = n**3 / (3.0 * k * b * b)
    else:
        raise ValidationError(f"unknown scheme {scheme!r}")
    return initial + updating + verification


# ---------------------------------------------------------------------------
# 7) Summary (Table VI)
# ---------------------------------------------------------------------------

def online_overall_relative(n: int, b: int) -> float:
    """Online-ABFT: ``30/n + 2/B``."""
    _validate(n, b)
    return 30.0 / n + 2.0 / b


def online_overall_relative_limit(b: int) -> float:
    """n → ∞ limit: ``2/B``."""
    return 2.0 / b


def enhanced_overall_relative(n: int, b: int, k: int = 1) -> float:
    """Enhanced Online-ABFT: ``(24K+6)/(nK) + (2K+2)/(BK)``."""
    _validate(n, b, k)
    return (24.0 * k + 6.0) / (n * k) + (2.0 * k + 2.0) / (b * k)


def enhanced_overall_relative_limit(b: int, k: int = 1) -> float:
    """n → ∞ limit: ``(2K+2)/(BK)``."""
    _validate(1, b, k)
    return (2.0 * k + 2.0) / (b * k)


@dataclass(frozen=True)
class OverheadBreakdown:
    """All Table VI components for one (n, B, K) point."""

    n: int
    b: int
    k: int
    encoding: float
    updating: float
    online_recalc: float
    enhanced_recalc: float
    space: float
    online_total: float
    enhanced_total: float


def overhead_breakdown(n: int, b: int, k: int = 1) -> OverheadBreakdown:
    """Evaluate every Section VI formula at one parameter point."""
    return OverheadBreakdown(
        n=n,
        b=b,
        k=k,
        encoding=encoding_relative(n),
        updating=updating_relative(n, b),
        online_recalc=online_recalc_relative(n, b),
        enhanced_recalc=enhanced_recalc_relative(n, b, k),
        space=space_relative(b),
        online_total=online_overall_relative(n, b),
        enhanced_total=enhanced_overall_relative(n, b, k),
    )
