"""Floating-point operation counts for the kernels in :mod:`repro.blas.dense`.

These follow the standard LAPACK working-note conventions (one multiply +
one add = 2 flops) and are used in three places:

1. the simulated machine's roofline cost model (``repro.hetero.costmodel``),
2. the Section VI analytic overhead model (``repro.models.overhead``),
3. GFLOPS reporting in the performance experiments (Figures 16/17).

Counting is exact rather than leading-order so that small-block operations
(POTF2, per-block checksum GEMVs) are priced fairly relative to the large
GEMMs.
"""

from __future__ import annotations

from repro.util.validation import check_positive


def gemm_flops(m: int, n: int, k: int) -> int:
    """``C -= A @ B^T`` with A (m×k), B (n×k): 2·m·n·k flops."""
    check_positive("m", m)
    check_positive("n", n)
    check_positive("k", k)
    return 2 * m * n * k


def syrk_flops(n: int, k: int) -> int:
    """Symmetric rank-k update of an n×n block: n·(n+1)·k flops.

    Only the lower triangle is computed, so this is half of the equivalent
    GEMM plus the diagonal.
    """
    check_positive("n", n)
    check_positive("k", k)
    return n * (n + 1) * k


def trsm_flops(m: int, n: int) -> int:
    """Triangular solve ``X · L^T = B`` with B (m×n), L (n×n): m·n² flops."""
    check_positive("m", m)
    check_positive("n", n)
    return m * n * n


def potf2_flops(n: int) -> int:
    """Unblocked Cholesky of an n×n block: n³/3 + n²/2 + n/6 flops."""
    check_positive("n", n)
    return (n**3) // 3 + (n**2) // 2 + n // 6


def potrf_flops(n: int) -> int:
    """Full Cholesky of an n×n matrix (leading-order n³/3).

    Used as the denominator of every relative-overhead figure, matching the
    paper's ``N_Cho = n³/3``.
    """
    check_positive("n", n)
    return potf2_flops(n)


def gemv_flops(m: int, n: int) -> int:
    """Dense matrix-vector product of an m×n matrix: 2·m·n flops."""
    check_positive("m", m)
    check_positive("n", n)
    return 2 * m * n


def checksum_recalc_flops(block_size: int, n_vectors: int = 2) -> int:
    """Recomputing *n_vectors* weighted column checksums of one B×B block.

    Each checksum is a GEMV ``v^T A`` → 2·B² flops; the paper's scheme uses
    two weight vectors, giving the ``4B²`` per-block count behind the
    ``O_encode = 2n²`` total of Section VI.
    """
    return n_vectors * gemv_flops(block_size, block_size)
