"""Double-precision dense kernels with BLAS in-place output semantics.

Each function mirrors the operation the MAGMA driver (Algorithm 1 in the
paper) issues to cuBLAS or to the host LAPACK:

====================  =======================================================
:func:`syrk_update`   ``C -= A @ A^T``            (cublasDsyrk, lower)
:func:`gemm_update`   ``C -= A @ B^T``            (cublasDgemm, trans-B)
:func:`potf2`         unblocked Cholesky           (LAPACK dpotf2 on the CPU)
:func:`trsm_right_lt` ``X · L^T = B`` in place     (cublasDtrsm, right/lower/T)
:func:`gemv`          ``v^T A`` row-vector product (cublasDgemv, checksums)
====================  =======================================================

All kernels write into caller-provided output arrays (views into the blocked
matrix) so no hidden copies are made — the guides' "views, not copies" rule,
and also what makes fault injection into live storage meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.util.exceptions import SingularBlockError
from repro.util.validation import check_dtype, check_square, require


def syrk_update(c: np.ndarray, a: np.ndarray) -> None:
    """Symmetric rank-k update ``C -= A @ A^T`` (in place, full storage).

    *c* is n×n, *a* is n×k.  The real cublasDsyrk only touches the lower
    triangle; we update the full square because the checksum relation
    ``chk(C') = chk(C) - chk(A)·A^T`` spans all columns.  The factorization
    itself only ever reads the lower triangle.
    """
    n = check_square("c", c)
    check_dtype("c", c)
    check_dtype("a", a)
    require(a.ndim == 2 and a.shape[0] == n, f"a must be {n}×k, got {a.shape}")
    c -= a @ a.T


def gemm_update(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
    """General update ``C -= A @ B^T`` (in place).

    *c* is m×n, *a* is m×k, *b* is n×k — the trailing-panel update of
    Algorithm 1 line 4 with A = LD and B = LC.
    """
    check_dtype("c", c)
    check_dtype("a", a)
    check_dtype("b", b)
    m, n = c.shape
    require(a.shape[0] == m, f"a has {a.shape[0]} rows, c has {m}")
    require(b.shape[0] == n, f"b has {b.shape[0]} rows, c has {n} columns")
    require(a.shape[1] == b.shape[1], f"inner dims differ: {a.shape} vs {b.shape}")
    c -= a @ b.T


def potf2(a: np.ndarray, block_index: int = -1) -> None:
    """Unblocked lower Cholesky of *a*, in place (LAPACK ``dpotf2``).

    On exit the lower triangle of *a* holds L and the strict upper triangle
    is zeroed (MAGMA leaves garbage there; zeroing makes the column-checksum
    relation of the *stored* block exact, which the ABFT layer relies on).

    Raises :class:`SingularBlockError` if a pivot is not positive — the
    fail-stop outcome a storage error can force, per Section III.

    Implemented as the classic scalar j-loop but with the trailing update
    vectorized per column; for the small B used by blocked Cholesky this is
    plenty, and an explicit loop keeps the numerics identical to dpotf2
    (so error propagation behaves like the real routine).
    """
    n = check_square("a", a)
    check_dtype("a", a)
    for j in range(n):
        pivot = a[j, j]
        if not pivot > 0.0 or not np.isfinite(pivot):
            raise SingularBlockError(block_index, j, float(pivot))
        ljj = np.sqrt(pivot)
        a[j, j] = ljj
        if j + 1 < n:
            a[j + 1 :, j] /= ljj
            # Trailing submatrix update: A[j+1:, j+1:] -= l_j l_j^T, done
            # column-by-column on the lower triangle only (dpotf2 order).
            col = a[j + 1 :, j]
            a[j + 1 :, j + 1 :] -= np.outer(col, col)
        a[j, j + 1 :] = 0.0


def trsm_right_lt(b: np.ndarray, ell: np.ndarray) -> None:
    """Solve ``X · L^T = B`` in place: ``B ← B · L^{-T}`` (right, lower, trans).

    *b* is m×n, *ell* is the n×n lower-triangular Cholesky factor.  This is
    the panel solve of Algorithm 1 line 7, and — applied to a 2×B checksum
    strip — also the checksum updates for TRSM and POTF2 (Algorithm 2 in the
    paper reduces to exactly this solve).

    Forward substitution over columns: column j of X depends only on columns
    0..j-1, since (X L^T)[:, j] = Σ_{k<=j} X[:,k] · L[j,k].
    """
    check_dtype("b", b)
    n = check_square("ell", ell)
    require(b.shape[1] == n, f"b has {b.shape[1]} columns, ell is {n}×{n}")
    for j in range(n):
        if j > 0:
            b[:, j] -= b[:, :j] @ ell[j, :j]
        b[:, j] /= ell[j, j]


def gemv(v: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Row-vector product ``v^T A`` — the checksum (re)calculation kernel.

    Returns a fresh 1-D array of length ``a.shape[1]``.  On the GPU this is
    the BLAS-2 kernel whose poor solo utilization motivates Optimization 1.
    """
    check_dtype("a", a)
    check_dtype("v", v)
    require(v.ndim == 1 and v.shape[0] == a.shape[0], "v length must match rows of a")
    return v @ a
