"""Generators for symmetric positive-definite test matrices.

Cholesky input must be SPD; both generators return well-conditioned
matrices so that checksum rounding thresholds stay far below any injected
fault magnitude, making detection tests deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.util.exceptions import ValidationError
from repro.util.rng import resolve_rng
from repro.util.validation import check_positive


def random_spd(
    n: int,
    rng: np.random.Generator | int | None = None,
    diag_boost: float | None = None,
) -> np.ndarray:
    """A dense random SPD matrix of order *n*.

    Built as ``G G^T / n + d·I`` with G standard normal; dividing by n keeps
    entries O(1) regardless of size, and the diagonal boost (default 2.0)
    bounds the condition number so the factorization is numerically benign.
    """
    check_positive("n", n)
    gen = resolve_rng(rng)
    g = gen.standard_normal((n, n))
    a = (g @ g.T) / n
    boost = 2.0 if diag_boost is None else diag_boost
    a[np.diag_indices_from(a)] += boost
    # Symmetrize exactly: G@G.T is symmetric in exact arithmetic but the
    # BLAS may produce asymmetric rounding; Cholesky checksum tests want
    # bitwise symmetry.
    return (a + a.T) / 2.0


def ill_conditioned_spd(
    n: int,
    condition: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A dense SPD matrix with (approximately) the given condition number.

    Built as ``Q·diag(λ)·Qᵀ`` with log-spaced eigenvalues in
    [1/√cond, √cond] and a Haar-random Q.  Used to stress-test the
    checksum detection thresholds: rounding in the factorization grows
    with conditioning, and the verifier must neither false-positive on it
    nor lose real faults under it.
    """
    check_positive("n", n)
    if not condition >= 1.0:
        raise ValidationError("condition number must be >= 1")
    gen = resolve_rng(rng)
    q, _ = np.linalg.qr(gen.standard_normal((n, n)))
    half = np.sqrt(condition)
    lam = np.logspace(np.log10(1.0 / half), np.log10(half), n)
    a = (q * lam) @ q.T
    return (a + a.T) / 2.0


def tridiag_spd(n: int, diag: float = 4.0, off: float = -1.0) -> np.ndarray:
    """The classic 1-D Poisson-style tridiagonal SPD matrix.

    Deterministic (no RNG), strictly diagonally dominant for |off|·2 < diag.
    Useful for exact-ish regression tests and the quickstart example.
    """
    check_positive("n", n)
    if not abs(diag) > 2 * abs(off):
        raise ValidationError("need |diag| > 2|off| for guaranteed positive definiteness")
    a = np.zeros((n, n), dtype=np.float64)
    idx = np.arange(n)
    a[idx, idx] = diag
    a[idx[:-1], idx[:-1] + 1] = off
    a[idx[:-1] + 1, idx[:-1]] = off
    return a
