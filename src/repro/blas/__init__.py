"""Dense BLAS/LAPACK-style kernels, FLOP accounting and tile layouts.

This subpackage is the numerical substrate standing in for cuBLAS + ACML:

- :mod:`repro.blas.dense` — the double-precision kernels the hybrid Cholesky
  driver issues (GEMM, SYRK, TRSM, POTF2, GEMV), implemented on NumPy with
  in-place output semantics matching the BLAS convention.
- :mod:`repro.blas.flops` — exact floating-point-operation counts for each
  kernel, used both by the analytic overhead model and by the simulated
  machine's cost model.
- :mod:`repro.blas.blocked` — :class:`BlockedMatrix`, the tile container the
  MAGMA-style driver and the ABFT schemes operate on.
- :mod:`repro.blas.spd` — generators for well-conditioned symmetric
  positive-definite test matrices.
"""

from repro.blas.blocked import BlockedMatrix
from repro.blas.dense import gemm_update, gemv, potf2, syrk_update, trsm_right_lt
from repro.blas.flops import (
    gemm_flops,
    gemv_flops,
    potf2_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)
from repro.blas.spd import random_spd, tridiag_spd

__all__ = [
    "BlockedMatrix",
    "gemm_update",
    "gemv",
    "potf2",
    "syrk_update",
    "trsm_right_lt",
    "gemm_flops",
    "gemv_flops",
    "potf2_flops",
    "potrf_flops",
    "syrk_flops",
    "trsm_flops",
    "random_spd",
    "tridiag_spd",
]
