"""Tiled view of a dense matrix: the unit the hybrid driver and ABFT work on.

MAGMA's blocked Cholesky treats the matrix as an ``nb × nb`` grid of
``B × B`` tiles.  :class:`BlockedMatrix` wraps one contiguous float64 array
and exposes zero-copy tile views, so kernels mutate the underlying storage
directly (and injected storage faults in that storage are visible to every
later read, which is the whole point of the paper).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.util.validation import check_block_size, check_dtype, check_square


class BlockedMatrix:
    """A square float64 matrix partitioned into square tiles.

    Parameters
    ----------
    data:
        The backing ``n × n`` float64 array.  Held by reference, not copied.
    block_size:
        Tile order B; must divide n exactly.
    """

    def __init__(self, data: np.ndarray, block_size: int) -> None:
        n = check_square("data", data)
        check_dtype("data", data)
        self._data = data
        self.n = n
        self.block_size = block_size
        self.nb = check_block_size(n, block_size)

    # -- construction ------------------------------------------------------

    @classmethod
    def zeros(cls, n: int, block_size: int) -> "BlockedMatrix":
        """A new all-zero blocked matrix of order *n*."""
        return cls(np.zeros((n, n), dtype=np.float64), block_size)

    def copy(self) -> "BlockedMatrix":
        """Deep copy (fresh backing storage)."""
        return BlockedMatrix(self._data.copy(), self.block_size)

    # -- access ------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The full backing array (a reference, not a copy)."""
        return self._data

    def block(self, i: int, j: int) -> np.ndarray:
        """Zero-copy view of tile (i, j)."""
        b = self.block_size
        self._check_index(i, j)
        return self._data[i * b : (i + 1) * b, j * b : (j + 1) * b]

    def block_row(self, i: int, j0: int, j1: int) -> np.ndarray:
        """View of tiles (i, j0..j1-1) as one ``B × (j1-j0)·B`` panel."""
        b = self.block_size
        self._check_index(i, max(j0, 0))
        return self._data[i * b : (i + 1) * b, j0 * b : j1 * b]

    def block_col(self, i0: int, i1: int, j: int) -> np.ndarray:
        """View of tiles (i0..i1-1, j) as one ``(i1-i0)·B × B`` panel."""
        b = self.block_size
        self._check_index(max(i0, 0), j)
        return self._data[i0 * b : i1 * b, j * b : (j + 1) * b]

    def panel(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        """View of the rectangular tile range [i0, i1) × [j0, j1)."""
        b = self.block_size
        return self._data[i0 * b : i1 * b, j0 * b : j1 * b]

    def lower_blocks(self) -> Iterator[tuple[int, int]]:
        """Tile indices (i, j) of the lower triangle, column-major order."""
        for j in range(self.nb):
            for i in range(j, self.nb):
                yield (i, j)

    # -- whole-matrix helpers ----------------------------------------------

    def lower_triangle(self) -> np.ndarray:
        """Copy of the element-wise lower triangle (strict upper zeroed)."""
        return np.tril(self._data)

    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self.nb and 0 <= j < self.nb):
            # IndexError is the contract __getitem__-style accessors must
            # keep (callers use standard sequence-protocol handling).
            raise IndexError(  # noqa: RPL003
                f"tile ({i}, {j}) out of range for {self.nb}×{self.nb} grid"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockedMatrix(n={self.n}, block_size={self.block_size}, "
            f"nb={self.nb})"
        )
