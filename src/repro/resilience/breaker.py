"""Circuit breaker + automatic backend failover for the executor layer.

A repeatedly failing execution backend (a process pool whose workers keep
dying, a host whose /dev/shm keeps vanishing) must not keep eating one
retry per job forever.  :class:`FailoverExecutor` wraps an ordered chain
of backends — canonically ``process → thread → inline``, fastest first —
behind per-backend :class:`CircuitBreaker` instances:

- **closed** (healthy): dispatches flow to the backend; each
  *infrastructure* failure (:func:`repro.exec.base.is_infra_error` — a
  crashed/wedged worker, a lost or corrupt shm segment; never the job's
  own exception) lands in a rolling window, and ``failure_threshold``
  consecutive ones within ``window_s`` trip the breaker;
- **open**: the backend is skipped and dispatches degrade to the next
  chain member; after an exponentially escalating backoff
  (``probe_backoff_s · backoff_factor^k``, capped) the breaker moves to
- **half-open**: exactly one dispatch is let through as a probe.  Probe
  success closes the breaker — traffic *recovers back* to the faster
  backend — and resets the escalation; probe failure re-opens it with a
  longer backoff.

The last chain member is the operator's floor: if every breaker is open
and unprobeable, dispatches still run there (degraded beats down), so the
service never refuses work just because its fast backends are sick.

Metrics: ``executor_breaker_state{backend}`` (0 closed / 1 half-open /
2 open), ``executor_failovers_total{from,to}`` (breaker-open transitions),
``executor_breaker_probes_total{backend,outcome}`` and
``executor_breaker_recoveries_total{backend}``.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.exec.base import BACKENDS, AttemptRequest, Executor, _SlotTimer, is_infra_error, make_executor
from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome
from repro.util.validation import check_positive, require


class BreakerState(enum.Enum):
    CLOSED = 0
    HALF_OPEN = 1
    OPEN = 2


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for one backend's breaker."""

    #: consecutive infra failures within ``window_s`` that trip the breaker
    failure_threshold: int = 3
    #: rolling window the failures must fall inside
    window_s: float = 30.0
    #: backoff before the first half-open probe
    probe_backoff_s: float = 1.0
    #: escalation factor applied per consecutive re-open
    backoff_factor: float = 2.0
    #: ceiling on the escalated probe backoff
    max_backoff_s: float = 60.0

    def __post_init__(self) -> None:
        check_positive("failure_threshold", self.failure_threshold)
        check_positive("window_s", self.window_s)
        check_positive("probe_backoff_s", self.probe_backoff_s)
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        check_positive("max_backoff_s", self.max_backoff_s)


class CircuitBreaker:
    """One backend's failure bookkeeping (not thread-safe on its own).

    :class:`FailoverExecutor` serializes all calls under its selection
    lock; the injected *clock* keeps the unit tests instantaneous.
    """

    def __init__(
        self,
        name: str,
        policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self.state = BreakerState.CLOSED
        self._failures: list[float] = []
        self._probe_at = 0.0
        self._probe_inflight = False
        #: consecutive opens without an intervening recovery (escalation k)
        self.opened_streak = 0
        self.opened_total = 0

    def allow(self) -> bool:
        """May a dispatch use this backend right now?

        In OPEN, reaching the probe deadline transitions to HALF_OPEN and
        admits the caller as the (single) probe; further callers are
        refused until the probe reports back.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._clock() < self._probe_at:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = True
            return True
        # HALF_OPEN: one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    @property
    def probing(self) -> bool:
        return self.state is BreakerState.HALF_OPEN and self._probe_inflight

    def record_success(self) -> bool:
        """Note a healthy dispatch; returns True when this *closed* the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._probe_inflight = False
            self._failures.clear()
            self.opened_streak = 0
            return True
        self._failures.clear()
        return False

    def record_failure(self) -> bool:
        """Note an infra failure; returns True when this *opened* the breaker."""
        now = self._clock()
        if self.state is BreakerState.HALF_OPEN:
            self._probe_inflight = False
            self._open(now)
            return True
        if self.state is BreakerState.OPEN:
            return False
        self._failures.append(now)
        horizon = now - self.policy.window_s
        self._failures = [t for t in self._failures if t >= horizon]
        if len(self._failures) >= self.policy.failure_threshold:
            self._open(now)
            return True
        return False

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self._failures.clear()
        backoff = min(
            self.policy.max_backoff_s,
            self.policy.probe_backoff_s * self.policy.backoff_factor**self.opened_streak,
        )
        self._probe_at = now + backoff
        self.opened_streak += 1
        self.opened_total += 1


class FailoverExecutor(Executor):
    """An executor chain behind per-backend circuit breakers.

    ``chain`` is ordered by preference (fastest first); ``capacity`` is
    the primary's, so the service sizes its dispatch slots for the happy
    path and a degraded backend simply queues a little more.
    """

    name = "failover"

    def __init__(
        self,
        chain: Sequence[Executor],
        policy: BreakerPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        require(bool(chain), "failover chain cannot be empty")
        names = [member.name for member in chain]
        require(len(set(names)) == len(names), f"duplicate backends in chain: {names}")
        self.chain = list(chain)
        self.policy = policy if policy is not None else BreakerPolicy()
        self.breakers = {member.name: CircuitBreaker(member.name, self.policy, clock) for member in chain}
        self._flock = threading.Lock()
        super().__init__(capacity=self.chain[0].capacity, metrics=metrics)

    @property
    def primary(self) -> Executor:
        return self.chain[0]

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        super().bind_metrics(metrics)
        self._breaker_g = metrics.gauge(
            "executor_breaker_state", "per-backend breaker state (0 closed, 1 half-open, 2 open)"
        )
        self._failovers = metrics.counter(
            "executor_failovers_total", "breaker-open transitions diverting traffic between backends"
        )
        self._probes = metrics.counter(
            "executor_breaker_probes_total", "half-open probe dispatches by outcome"
        )
        self._recoveries = metrics.counter(
            "executor_breaker_recoveries_total", "breakers closed again after a successful probe"
        )
        # Re-entrant: Executor.__init__ binds before subclass state exists.
        # Chain members are constructed against the same registry (see
        # failover_chain), so only the breaker gauges need publishing here.
        if hasattr(self, "breakers"):
            for name in self.breakers:
                self._breaker_g.set(BreakerState.CLOSED.value, backend=name)

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bring up the primary; fallbacks start lazily on first use."""
        await self.primary.start()

    async def stop(self) -> None:
        for member in self.chain:
            await member.stop()

    # -- selection ---------------------------------------------------------------

    def _select(self) -> tuple[Executor, bool]:
        """Pick the first chain member whose breaker admits a dispatch.

        Falls back to the last member unconditionally when everything is
        open: degraded execution always beats refusing the job.
        """
        with self._flock:
            for member in self.chain:
                breaker = self.breakers[member.name]
                if breaker.allow():
                    self._breaker_g.set(breaker.state.value, backend=member.name)
                    return member, breaker.probing
            return self.chain[-1], False

    def _settle(self, member: Executor, failed: bool) -> None:
        """Feed a dispatch outcome back into the member's breaker."""
        breaker = self.breakers[member.name]
        with self._flock:
            was_probe = breaker.probing
            if failed:
                if breaker.record_failure():
                    self._failovers.inc(**{"from": member.name, "to": self._next_after(member)})
                if was_probe:
                    self._probes.inc(backend=member.name, outcome="failure")
            else:
                if breaker.record_success():
                    self._recoveries.inc(backend=member.name)
                if was_probe:
                    self._probes.inc(backend=member.name, outcome="success")
            self._breaker_g.set(breaker.state.value, backend=member.name)

    def _next_after(self, member: Executor) -> str:
        """Name of the backend traffic falls to once *member* opens."""
        idx = self.chain.index(member)
        for candidate in self.chain[idx + 1 :]:
            if self.breakers[candidate.name].state is not BreakerState.OPEN:
                return candidate.name
        return self.chain[-1].name

    # -- execution ---------------------------------------------------------------

    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        timer = _SlotTimer()
        member, _probing = self._select()
        self._note_dispatch(timer.waited(), request)
        try:
            outcome = member.run_sync(request)
        except Exception as exc:
            # Only infrastructure failures indict the backend; the job's
            # own exception (WorkerTaskError, a scheme error) would have
            # failed identically anywhere and counts as a healthy dispatch.
            self._settle(member, failed=is_infra_error(exc))
            raise
        finally:
            self._note_done()
        self._settle(member, failed=False)
        return outcome


def failover_chain(
    primary: str,
    workers: int | None = None,
    metrics: MetricsRegistry | None = None,
    policy: BreakerPolicy | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> FailoverExecutor:
    """The canonical degradation chain below *primary*.

    ``process`` degrades through ``thread`` to ``inline``; ``thread``
    through ``inline``; ``inline`` has nowhere to fall and simply gets a
    breaker that never diverts (the last member is always served).
    """
    require(primary in BACKENDS, f"unknown executor {primary!r}; have {BACKENDS}")
    registry = metrics if metrics is not None else MetricsRegistry()
    order = tuple(reversed(BACKENDS[: BACKENDS.index(primary) + 1]))
    chain = [make_executor(kind, workers=workers, metrics=registry) for kind in order]
    return FailoverExecutor(chain, policy=policy, metrics=registry, clock=clock)
