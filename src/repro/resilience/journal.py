"""Durable job journal: an append-only JSONL write-ahead log.

The service records every job lifecycle transition — ``admitted`` →
``dispatched`` → ``attempt`` (one per rung of the retry ladder) →
``completed`` / ``failed`` / ``rejected`` — as one JSON line.  The point
is crash recovery: a service that dies mid-run leaves the journal as the
only truth about which admitted jobs never reached a terminal state, and
a restarted service replays it (:func:`incomplete_jobs` →
``SolveService.recover``) to resubmit exactly those.

Semantics are **at-least-once**: a job whose terminal record was lost
(crash between completion and the batched fsync) is re-executed on
replay.  That is safe here because jobs are deterministic pure
computations keyed by ``(seed, job_id)`` (:attr:`repro.service.job.Job.key`)
— re-running one produces the bit-identical factor — and replay dedups by
that key, so a job is resubmitted at most once per recovery no matter how
many lifecycle records it left behind.

Durability policy: ``admitted`` records are fsynced immediately — they
are what recovery is *for*; losing one loses a job.  All other records
ride a batched fsync (every ``fsync_batch`` appends), trading a bounded
window of lost telemetry for not paying an fsync per transition; a lost
non-terminal record only ever causes a redundant (idempotent) replay.

A crash can tear the final line mid-append.  The reader tolerates this:
it stops at the first undecodable line — everything before the tear is
intact because appends are sequential and the file is only ever rewritten
by :meth:`JobJournal.compact`, which replaces it atomically.

Compaction/rotation: a long-lived service (a cluster shard serving an
unbounded job stream) would otherwise grow the WAL forever — almost all
of it terminal records recovery will never look at.  When the file
exceeds ``compact_bytes`` (or sits older than ``compact_age_s``), the
writer rewrites it to *only the live entries* — the latest ``admitted``
record of every admitted-but-unfinished job, in admission order — into a
sibling temp file, fsyncs, and ``os.replace``s it over the journal.  The
replace is the commit point: a crash at any moment leaves either the old
complete journal or the new compacted one, never a mix, and
``recover()`` returns the same jobs from both.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.service.job import Job
from repro.util.exceptions import JournalError
from repro.util.validation import check_positive

#: Events after which a job needs no replay.
TERMINAL_EVENTS = frozenset({"completed", "failed", "rejected"})


class JobJournal:
    """Append-only JSONL WAL of job lifecycle transitions (single writer)."""

    def __init__(
        self,
        path: str | Path,
        fsync_batch: int = 8,
        compact_bytes: int | None = None,
        compact_age_s: float | None = None,
    ) -> None:
        check_positive("fsync_batch", fsync_batch)
        if compact_bytes is not None:
            check_positive("compact_bytes", compact_bytes)
        if compact_age_s is not None:
            check_positive("compact_age_s", compact_age_s)
        self.path = Path(path)
        self.fsync_batch = fsync_batch
        self.compact_bytes = compact_bytes
        self.compact_age_s = compact_age_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            _repair_torn_tail(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}") from exc
        self._pending = 0
        self._opened_at = time.monotonic()
        self.records_written = 0
        self.syncs_total = 0
        self.compactions_total = 0
        self.records_compacted_away = 0

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def record(self, event: str, key: str, **fields: object) -> None:
        """Append one lifecycle record (and maybe fsync — see module doc)."""
        if self._fh.closed:
            raise JournalError(f"journal {self.path} is closed")
        entry = {"event": event, "key": key, **fields}
        try:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        except (OSError, TypeError) as exc:
            raise JournalError(f"journal append failed: {exc}") from exc
        self._pending += 1
        self.records_written += 1
        if event == "admitted" or self._pending >= self.fsync_batch:
            self.sync()
        if self._compaction_due():
            self.compact()

    def _compaction_due(self) -> bool:
        if self.compact_bytes is not None:
            try:
                if self._fh.tell() >= self.compact_bytes:
                    return True
            except OSError:  # pragma: no cover - tell() on a regular file
                return False
        if self.compact_age_s is not None:
            if time.monotonic() - self._opened_at >= self.compact_age_s:
                return True
        return False

    def compact(self) -> int:
        """Atomically rewrite the journal down to its live entries.

        Live = the latest ``admitted`` record of every job without a
        terminal record — exactly the set ``recover()`` replays, so a
        recovery reads identically before and after.  Returns the number
        of records dropped.  Safe against crashes: the rewrite goes to a
        sibling temp file, is fsynced, and lands via ``os.replace``.
        """
        if self._fh.closed:
            raise JournalError(f"journal {self.path} is closed")
        self.sync()
        records = read_journal(self.path)
        live = _live_records(records)
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as out:  # noqa: RPL102 — WAL primitive: compaction is priced into record()
                for entry in live:
                    out.write(json.dumps(entry, sort_keys=True) + "\n")
                out.flush()
                os.fsync(out.fileno())  # noqa: RPL102 — durability before the rename commit
            os.replace(tmp, self.path)
            self._fh.close()
            self._fh = open(self.path, "a", encoding="utf-8")  # noqa: RPL102 — WAL primitive
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise JournalError(f"journal compaction failed: {exc}") from exc
        self._pending = 0
        self._opened_at = time.monotonic()
        self.compactions_total += 1
        self.records_compacted_away += len(records) - len(live)
        return len(records) - len(live)

    def sync(self) -> None:
        """Flush buffered records to stable storage (flush + fsync)."""
        if self._fh.closed or self._pending == 0:
            return
        try:
            self._fh.flush()
            # Deliberate blocking sink: group commit amortizes this fsync
            # over fsync_batch records, and the durability contract (an
            # admitted job survives a crash) requires it inline — callers
            # must not reorder it onto a thread behind the admission path.
            os.fsync(self._fh.fileno())  # noqa: RPL102
        except OSError as exc:
            raise JournalError(f"journal fsync failed: {exc}") from exc
        self._pending = 0
        self.syncs_total += 1

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()


def _repair_torn_tail(path: Path) -> None:
    """Truncate a torn final record before appending to an existing journal.

    A crash mid-append can leave the file without a trailing newline.
    Appending after that tear would concatenate the next record onto the
    garbage and render *everything after it* unreadable — so a new writer
    first drops the partial line (it was never durable: a record is only
    trusted once its newline hit the disk).
    """
    try:
        with open(path, "rb+") as fh:
            size = fh.seek(0, os.SEEK_END)
            if size == 0:
                return
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            # Walk back to the last newline (or the file start) and cut.
            data = Path(path).read_bytes()
            keep = data.rfind(b"\n") + 1
            fh.truncate(keep)
    except FileNotFoundError:
        return


def read_journal(path: str | Path) -> list[dict]:
    """Parse a journal file, tolerating a torn final line.

    A missing file is an empty journal (a service that never admitted
    anything has nothing to recover).  Parsing stops at the first
    undecodable line: with a sequential single-writer append log, only
    the tail can be torn, and anything at or after a tear is untrusted.
    Raw bytes are decoded leniently — a bit-flipped byte must degrade to
    "tear at that record", never crash the recovery path.
    """
    try:
        raw = Path(path).read_bytes()  # noqa: RPL102 — WAL primitive: async callers hand off via to_thread
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    text = raw.decode("utf-8", errors="replace")
    records: list[dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail — everything before it is intact
        if not isinstance(entry, dict) or "event" not in entry or "key" not in entry:
            break
        records.append(entry)
    return records


def _live_records(records: list[dict]) -> list[dict]:
    """The admitted records compaction must keep, in admission order.

    Mirrors :func:`incomplete_jobs` exactly — one (the latest) admitted
    record per job that has no terminal record — but returns the raw
    entries so a compacted journal replays byte-identically.
    """
    admitted: dict[str, dict] = {}
    done: set[str] = set()
    order: list[str] = []
    for entry in records:
        key = str(entry["key"])
        event = entry["event"]
        if event == "admitted":
            if key not in admitted:
                order.append(key)
            admitted[key] = entry
            done.discard(key)
        elif event in TERMINAL_EVENTS:
            done.add(key)
    return [admitted[key] for key in order if key not in done]


def incomplete_jobs(records: list[dict]) -> list[Job]:
    """Jobs with an ``admitted`` record but no terminal one, admission order.

    Deduped by job key: re-admissions of the same ``(seed, job_id)``
    (e.g. a previous recovery's replay) collapse to one job, rebuilt from
    the *latest* admitted spec.  Jobs whose admitted record carries no
    spec (pre-journal formats) are skipped — they cannot be rebuilt.
    """
    admitted: dict[str, dict | None] = {}
    done: set[str] = set()
    order: list[str] = []
    for entry in records:
        key = str(entry["key"])
        event = entry["event"]
        if event == "admitted":
            if key not in admitted:
                order.append(key)
            admitted[key] = entry.get("spec")
            done.discard(key)  # a re-admission re-opens the job
        elif event in TERMINAL_EVENTS:
            done.add(key)
    jobs: list[Job] = []
    for key in order:
        if key in done:
            continue
        spec = admitted[key]
        if spec is None:
            continue
        try:
            jobs.append(Job.from_spec(spec))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            # A mutated-but-parseable spec (fuzzed or disk-corrupted) must
            # surface as a journal error, not an arbitrary crash deep in
            # Job construction.
            raise JournalError(f"journal spec for job {key!r} is corrupt: {exc}") from exc
    return jobs
