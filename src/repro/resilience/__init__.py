"""System-level resilience: chaos harness, circuit breaker, job journal."""

from repro.resilience.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    FailoverExecutor,
    failover_chain,
)
from repro.resilience.chaos import (
    QUICK_SCENARIOS,
    SCENARIOS,
    ChaosConfig,
    ScenarioResult,
    run_chaos,
)
from repro.resilience.journal import (
    TERMINAL_EVENTS,
    JobJournal,
    incomplete_jobs,
    read_journal,
)

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "ChaosConfig",
    "CircuitBreaker",
    "FailoverExecutor",
    "JobJournal",
    "QUICK_SCENARIOS",
    "SCENARIOS",
    "ScenarioResult",
    "TERMINAL_EVENTS",
    "failover_chain",
    "incomplete_jobs",
    "read_journal",
    "run_chaos",
]
