"""Chaos campaign harness: system-level fault plans against the service.

:mod:`repro.faults.campaign` sweeps *numerical* faults (bitflips in
storage/compute) through one factorization; this module is its
system-level sibling.  Each **scenario** composes a fault plan out of the
infrastructure failure modes the service claims to survive — worker
kill, worker wedge, shm-segment corruption and truncation, slow-worker
latency injection, queue flood, executor-stop races, a full
service-process kill-and-restart — runs a deterministic job load against
a real :class:`~repro.service.core.SolveService`, and asserts the
service-level invariants.  The ``cluster_*`` scenarios restate the same
battery one level up, against a real multi-process
:class:`~repro.cluster.router.ClusterRouter`: a shard SIGKILLed
mid-queue (journal-backed handoff), a router↔shard partition (health
probes time out, traffic reroutes, no handoff), and a kill-and-rejoin
rebalance (the restarted shard takes ring placements again).

The shared invariants:

- **no lost jobs** — every submitted job reaches a terminal result;
- **no duplicated results** — terminal counters and the result map agree
  exactly (a job is completed/failed/rejected exactly once);
- **metrics consistency** — ``submitted == completed + failed + rejected``;
- **metrics monotonicity** — no counter ever decreases between a mid-run
  and a final snapshot (:func:`repro.service.metrics.counter_regressions`);
- **bit-identical factors** — every completed factor equals the inline
  fault-free reference bit for bit (chaos moves work, never changes it);
- **bounded p99** — tail latency stays under the scenario budget even
  with the fault plan active.

``python -m repro chaos`` runs the scenarios and emits a
``BENCH_chaos.json`` scorecard (same stamp/history conventions as the
other BENCH documents); any invariant violation exits nonzero.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.experiments.stamp import run_stamp
from repro.faults.injector import burst_storage_faults
from repro.hetero.machine import Machine
from repro.magma.host import factorization_residual
from repro.resilience.breaker import BreakerPolicy, BreakerState
from repro.resilience.journal import incomplete_jobs, read_journal
from repro.service.core import ServiceConfig, SolveService
from repro.service.job import Job, JobStatus
from repro.service.metrics import counter_regressions
from repro.service.policy import execute_attempt, job_matrix
from repro.runtime.task import TASK_KINDS
from repro.util.validation import require

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs shared by every scenario (kept small so CI stays fast)."""

    jobs: int = 6
    n: int = 64
    block_size: int = 32
    scheme: str = "enhanced"
    seed: int = 7
    exec_workers: int = 2
    #: tail-latency invariant budget; generous — "bounded" not "fast"
    p99_budget_s: float = 60.0
    #: journals land here; a fresh tempdir when unset
    workdir: str | Path | None = None


@dataclass
class ScenarioResult:
    """One scenario's scorecard row."""

    name: str
    ok: bool
    invariants: dict[str, bool]
    violations: list[str]
    submitted: int
    completed: int
    failed: int
    rejected: int
    retries: int
    p99_s: float
    wall_s: float
    notes: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "invariants": self.invariants,
            "violations": self.violations,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "retries": self.retries,
            "p99_s": self.p99_s,
            "wall_s": self.wall_s,
            "notes": self.notes,
        }


# -- shared machinery ----------------------------------------------------------


def _jobs(cfg: ChaosConfig, count: int | None = None, id_base: int = 0) -> list[Job]:
    """The scenario workload: injector-free jobs, deterministic per (seed, id)."""
    return [
        Job(
            job_id=id_base + i,
            n=cfg.n,
            scheme=cfg.scheme,
            block_size=cfg.block_size,
            seed=cfg.seed,
        )
        for i in range(count if count is not None else cfg.jobs)
    ]


def _reference_factors(jobs: list[Job]) -> dict[int, np.ndarray]:
    """Inline fault-free factors — the bit-identity oracle for every scenario."""
    machine = Machine.preset("tardis")
    return {
        job.job_id: execute_attempt(Job.from_spec(job.to_spec()), machine).factor
        for job in jobs
    }


def _service(cfg: ChaosConfig, **overrides: Any) -> SolveService:
    base: dict[str, Any] = dict(
        workers=(f"tardis:{cfg.exec_workers}",),
        executor="process",
        exec_workers=cfg.exec_workers,
        keep_factors=True,
        job_timeout_s=30.0,
    )
    base.update(overrides)
    return SolveService(ServiceConfig(**base))


def _evaluate(
    name: str,
    cfg: ChaosConfig,
    service: SolveService,
    jobs: list[Job],
    refs: dict[int, np.ndarray],
    mid_counters: dict[str, dict[str, float]],
    wall_s: float,
    extra: dict[str, bool] | None = None,
    notes: dict[str, Any] | None = None,
) -> ScenarioResult:
    """Apply the invariant battery to a finished scenario run."""
    m = service.metrics
    submitted = int(m["service_jobs_submitted_total"].value())
    completed = int(m["service_jobs_completed_total"].value())
    failed = int(m["service_jobs_failed_total"].value())
    rejected = int(m["service_jobs_rejected_total"].value())
    regressions = counter_regressions(mid_counters, m.counters_snapshot())

    factor_ok = True
    for job in jobs:
        result = service.results.get(job.job_id)
        if result is None or result.status is not JobStatus.COMPLETED:
            continue
        ref = refs.get(job.job_id)
        if ref is None:
            continue
        if result.factor is None or not np.array_equal(result.factor, ref):
            factor_ok = False

    # Executor-side consistency: every attempt was dispatched inside exactly
    # one batch unit (the batch-size histogram's mass equals the attempt
    # counter), and the arena never saw more leases than attempts — reuse
    # and miss partition the lease stream, they never double-count.
    attempts = m["executor_attempts_total"].value()
    arena_ops = m["executor_arena_reuse_total"].value() + m["executor_arena_miss_total"].value()
    executor_ok = m["executor_batch_size"].sum == attempts and arena_ops <= attempts
    # Tile-runtime consistency (the dag scheme): each per-kind duration
    # histogram carries exactly one observation per counted task — a
    # summary folded twice, or a dropped fold, breaks the equality.
    # Non-dag scenarios hold it trivially (0 == 0 per kind).
    executor_ok = executor_ok and all(
        m.histogram(f"runtime_task_seconds_{kind}").count
        == m["runtime_task_total"].value(kind=kind)
        for kind in TASK_KINDS
    )
    # Forward-recovery consistency: every salvage deliberation (forward or
    # backward) was provoked by a worker death or a transport fault — the
    # ladder never invents recovery work — and erasure reconstructions only
    # happen inside successful forward resumes.
    recoveries = m["recovery_forward_total"].value() + m["recovery_backward_total"].value()
    faults_seen = (
        m["executor_worker_restarts_total"].value()
        + m["executor_transport_errors_total"].value()
    )
    executor_ok = executor_ok and recoveries <= faults_seen
    executor_ok = executor_ok and (
        m["recovery_erasure_tiles_total"].value() == 0
        or m["recovery_forward_total"].value() >= 1
    )

    invariants = {
        "no_lost_jobs": all(job.job_id in service.results for job in jobs),
        "no_duplicate_results": (completed + failed + rejected) == len(service.results),
        "metrics_consistent": submitted == completed + failed + rejected,
        "executor_metrics_consistent": executor_ok,
        "metrics_monotonic": not regressions,
        "factors_bit_identical": factor_ok,
        "p99_bounded": m["service_latency_seconds"].percentile(0.99) <= cfg.p99_budget_s,
    }
    invariants.update(extra or {})
    violations = [key for key, ok in invariants.items() if not ok]
    violations.extend(f"counter regression: {r}" for r in regressions)
    return ScenarioResult(
        name=name,
        ok=not violations,
        invariants=invariants,
        violations=violations,
        submitted=submitted,
        completed=completed,
        failed=failed,
        rejected=rejected,
        retries=int(m["service_retries_total"].value()),
        p99_s=m["service_latency_seconds"].percentile(0.99),
        wall_s=wall_s,
        notes=notes or {},
    )


async def _drive(service: SolveService, jobs: list[Job]) -> dict[str, dict[str, float]]:
    """Submit everything, snapshot counters mid-run, drain to completion."""
    await service.start_executor()
    try:
        service.start()
        for job in jobs:
            service.submit(job)
        # Snapshot before the drain; the return routes through the finally.
        return service.metrics.counters_snapshot()
    finally:
        await service.stop()


def _all_completed(service: SolveService, jobs: list[Job]) -> bool:
    return all(
        (r := service.results.get(job.job_id)) is not None and r.status is JobStatus.COMPLETED
        for job in jobs
    )


# -- scenarios -----------------------------------------------------------------


def scenario_worker_crash(cfg: ChaosConfig) -> ScenarioResult:
    """A worker is OOM-killed mid-batch; only the unanswered items retry.

    Capacity is pinned to one slot so the first dispatch deterministically
    coalesces jobs ``[0, batch_max)`` into a single wire message.  The
    worker answers item 0, then dies on item 1: the answered survivor must
    keep ``attempts == 1`` while every unanswered batchmate re-enters the
    retry ladder — a crash costs exactly the work it interrupted.
    """
    jobs = _jobs(cfg)
    refs = _reference_factors(jobs)
    batch_max = min(3, cfg.jobs)
    crashed_ids = [jobs[i].job_id for i in range(1, batch_max)]
    survivor_ids = [job.job_id for job in jobs if job.job_id not in crashed_ids]
    service = _service(
        cfg,
        workers=("tardis:1",),
        exec_workers=1,
        batch_max=batch_max,
        batch_linger_s=0.05,
    )
    t0 = time.monotonic()

    async def run() -> dict:
        # Queue everything before the dispatch loop starts so the first
        # unit sees a full queue and coalesces a deterministic batch.
        for job in jobs:
            service.submit(job)
        await service.start_executor()
        try:
            service.executor.inject_crash(count=1, at_item=1)
            service.start()
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    restarts = service.metrics["executor_worker_restarts_total"].value(reason="crash")
    results = service.results
    survivors_untouched = all(
        (r := results.get(job_id)) is not None and r.attempts == 1 and r.retries == 0
        for job_id in survivor_ids
    )
    unanswered_retried = all(
        (r := results.get(job_id)) is not None and r.retries >= 1 for job_id in crashed_ids
    )
    return _evaluate(
        "worker_crash",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "all_completed": _all_completed(service, jobs),
            "crash_survived": restarts >= 1,
            "survivors_unaffected": survivors_untouched,
            "unanswered_batchmates_retried": unanswered_retried,
        },
        notes={
            "worker_restarts": restarts,
            "batch_max": batch_max,
            "crashed_jobs": crashed_ids,
        },
    )


def scenario_worker_wedge(cfg: ChaosConfig) -> ScenarioResult:
    """A worker wedges in native code; the deadline reclaims its slot."""
    jobs = _jobs(cfg, count=min(cfg.jobs, 4))
    refs = _reference_factors(jobs)
    service = _service(cfg, job_timeout_s=1.0)
    t0 = time.monotonic()

    async def run() -> dict:
        await service.start_executor()
        try:
            service.executor.inject_wedge(30.0)
            service.start()
            for job in jobs:
                service.submit(job)
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    reclaimed = service.metrics["executor_worker_restarts_total"].value(reason="wedged")
    return _evaluate(
        "worker_wedge",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={"all_completed": _all_completed(service, jobs), "slot_reclaimed": reclaimed >= 1},
        notes={"wedged_reclaims": reclaimed},
    )


def scenario_slow_worker(cfg: ChaosConfig) -> ScenarioResult:
    """Latency injection: short stalls that must *not* trip timeouts."""
    jobs = _jobs(cfg)
    refs = _reference_factors(jobs)
    service = _service(cfg)
    t0 = time.monotonic()

    async def run() -> dict:
        await service.start_executor()
        try:
            service.executor.inject_wedge(0.25, count=3)
            service.start()
            for job in jobs:
                service.submit(job)
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    return _evaluate(
        "slow_worker",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "all_completed": _all_completed(service, jobs),
            "no_spurious_retries": service.metrics["service_retries_total"].value() == 0,
        },
    )


def scenario_shm_corruption(cfg: ChaosConfig) -> ScenarioResult:
    """Factors are scribbled on in shared memory; CRC catches every one."""
    jobs = _jobs(cfg)
    refs = _reference_factors(jobs)
    service = _service(cfg)
    t0 = time.monotonic()

    async def run() -> dict:
        await service.start_executor()
        try:
            service.executor.inject_shm_corruption(count=2)
            service.start()
            for job in jobs:
                service.submit(job)
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    caught = service.metrics["executor_transport_errors_total"].value(kind="corrupt_factor")
    return _evaluate(
        "shm_corruption",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={"all_completed": _all_completed(service, jobs), "crc_detected": caught >= 2},
        notes={"corruptions_caught": caught},
    )


def scenario_shm_truncation(cfg: ChaosConfig) -> ScenarioResult:
    """A segment vanishes from /dev/shm mid-dispatch; the arena heals."""
    jobs = _jobs(cfg)
    refs = _reference_factors(jobs)
    service = _service(cfg)
    t0 = time.monotonic()

    async def run() -> dict:
        await service.start_executor()
        try:
            # Armed before any dispatch: the hit worker has no warm mapping
            # yet, so its attach deterministically fails.
            service.executor.inject_shm_truncation(count=1)
            service.start()
            for job in jobs:
                service.submit(job)
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    lost = service.metrics["executor_transport_errors_total"].value(kind="missing_segment")
    return _evaluate(
        "shm_truncation",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={"all_completed": _all_completed(service, jobs), "arena_healed": lost >= 1},
        notes={"segments_lost": lost},
    )


def scenario_queue_flood(cfg: ChaosConfig) -> ScenarioResult:
    """Overload: a tiny queue is flooded; rejects carry retry-after hints."""
    jobs = _jobs(cfg, count=max(cfg.jobs, 3) * 3)
    refs = _reference_factors(jobs[: cfg.jobs])
    depth = max(2, cfg.jobs // 2)
    service = _service(cfg, executor="thread", max_queue_depth=depth)
    t0 = time.monotonic()
    hints_ok = True

    async def run() -> dict:
        nonlocal hints_ok
        await service.start_executor()
        try:
            for job in jobs:  # flood before the dispatcher even runs
                decision = service.submit(job)
                if not decision.accepted and not (decision.retry_after_s or 0) > 0:
                    hints_ok = False
            mid = service.metrics.counters_snapshot()
            service.start()
            return mid
        finally:
            await service.stop()

    mid = asyncio.run(run())
    rejected = int(service.metrics["service_jobs_rejected_total"].value())
    return _evaluate(
        "queue_flood",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "overload_rejected": rejected > 0,
            "rejections_have_retry_after": hints_ok,
        },
        notes={"queue_depth_cap": depth, "rejected": rejected},
    )


def scenario_stop_race(cfg: ChaosConfig) -> ScenarioResult:
    """Submissions race a concurrent stop(); nothing hangs or vanishes."""
    jobs = _jobs(cfg)
    split = len(jobs) // 2
    refs = _reference_factors(jobs)
    service = _service(cfg, executor="thread")
    t0 = time.monotonic()

    async def run() -> dict:
        stopper = None
        await service.start_executor()
        try:
            service.start()
            for job in jobs[:split]:
                service.submit(job)
            stopper = asyncio.get_running_loop().create_task(service.stop())
            for job in jobs[split:]:  # race the drain/close
                service.submit(job)
                await asyncio.sleep(0)
            mid = service.metrics.counters_snapshot()
            await stopper
            return mid
        finally:
            # Idempotent backstop for a failure before the stop task
            # spawned (stop() tolerates racing the stopper task).
            await service.stop()
            if stopper is not None:
                await asyncio.gather(stopper, return_exceptions=True)

    mid = asyncio.run(run())
    return _evaluate(
        "stop_race",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={"stopped_cleanly": service.queue.closed},
    )


def scenario_breaker_failover(cfg: ChaosConfig) -> ScenarioResult:
    """Repeated crashes open the process breaker; traffic degrades to the
    thread backend and recovers back once a half-open probe succeeds."""
    jobs = _jobs(cfg)
    recovery_jobs = _jobs(cfg, count=2, id_base=100)
    refs = _reference_factors(jobs + recovery_jobs)
    service = _service(
        cfg,
        failover=True,
        breaker=BreakerPolicy(failure_threshold=2, window_s=30.0, probe_backoff_s=0.4),
    )
    t0 = time.monotonic()

    async def run() -> dict:
        await service.start_executor()
        try:
            service.executor.primary.inject_crash(count=2)
            service.start()
            for job in jobs:
                service.submit(job)
            await service.drain()
            mid = service.metrics.counters_snapshot()
            await asyncio.sleep(0.6)  # past the probe backoff
            for job in recovery_jobs:
                service.submit(job)
            return mid
        finally:
            await service.stop()

    mid = asyncio.run(run())
    m = service.metrics
    failovers = m["executor_failovers_total"].value(**{"from": "process", "to": "thread"})
    recoveries = m["executor_breaker_recoveries_total"].value(backend="process")
    final_state = m["executor_breaker_state"].value(backend="process")
    return _evaluate(
        "breaker_failover",
        cfg,
        service,
        jobs + recovery_jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "all_completed": _all_completed(service, jobs + recovery_jobs),
            "failover_observed": failovers >= 1,
            "recovery_observed": recoveries >= 1,
            "breaker_closed_again": final_state == BreakerState.CLOSED.value,
        },
        notes={
            "failovers": failovers,
            "recoveries": recoveries,
            "final_breaker_state": final_state,
            "thread_attempts": m["executor_attempts_total"].value(backend="thread", kind="attempt"),
        },
    )


def scenario_kill_restart(cfg: ChaosConfig) -> ScenarioResult:
    """The service process is killed mid-run (crash-like ``abort()``, torn
    journal tail included); a restarted service replays the journal and
    completes every admitted job."""
    workdir = Path(cfg.workdir) if cfg.workdir is not None else Path(tempfile.mkdtemp(prefix="chaos-"))
    journal_path = workdir / "kill_restart.journal.jsonl"
    if journal_path.exists():
        journal_path.unlink()
    jobs = _jobs(cfg, count=max(cfg.jobs, 4))
    refs = _reference_factors(jobs)
    t0 = time.monotonic()

    # Phase 1: admit everything, let a little work start, then die hard.
    first = _service(cfg, executor="thread", journal_path=journal_path)

    async def crash_phase() -> None:
        first.start()
        try:
            for job in jobs:
                first.submit(job)
            await asyncio.sleep(0)
        finally:
            await first.abort()

    asyncio.run(crash_phase())
    phase1_done = {jid for jid, r in first.results.items() if r.status is JobStatus.COMPLETED}
    # A crash can tear the journal's final line mid-append.
    with journal_path.open("a", encoding="utf-8") as fh:
        fh.write('{"event": "attem')

    # Phase 2: a fresh instance recovers and finishes the job backlog.
    second = _service(cfg, executor="thread", journal_path=journal_path)
    # Journal replay is synchronous file I/O — run it before entering the
    # event loop (recover() is documented to work before start()).
    recovered: list[Job] = second.recover()

    async def recover_phase() -> dict:
        second.start()
        try:
            return second.metrics.counters_snapshot()
        finally:
            await second.stop()

    mid = asyncio.run(recover_phase())
    wall = time.monotonic() - t0

    admitted_keys = {
        r["key"] for r in read_journal(journal_path) if r["event"] == "admitted"
    }
    done_ids = phase1_done | {
        jid for jid, r in second.results.items() if r.status is JobStatus.COMPLETED
    }
    replay_complete = {job.key for job in jobs} <= admitted_keys and all(
        job.job_id in done_ids for job in jobs
    )
    leftover = incomplete_jobs(read_journal(journal_path))
    result = _evaluate(
        "kill_restart",
        cfg,
        second,
        recovered,
        refs,
        mid,
        wall,
        extra={
            "journal_replay_complete": replay_complete,
            "journal_drained": not leftover,
            "recovered_some": bool(recovered) or len(phase1_done) == len(jobs),
            "torn_tail_tolerated": True,  # read_journal above would have raised
        },
        notes={
            "admitted": len(admitted_keys),
            "completed_before_crash": len(phase1_done),
            "recovered": len(recovered),
            "incomplete_after_recovery": len(leftover),
        },
    )
    return result


def scenario_dag_worker_stall(cfg: ChaosConfig) -> ScenarioResult:
    """One tile-runtime worker thread wedges inside a ``dag`` job; the
    runtime watchdog replaces it and the factorization completes with
    the factor bytes unchanged.

    The thread backend keeps the runtime in-process, so the module-level
    stall hook reaches the :class:`~repro.runtime.executor.DagExecutor`
    inside the pool worker.  Per-task delays stretch the first job past
    the watchdog timeout — on a fast host the bare nb=2 factorization
    would finish before the stalled worker ever looked stale.
    """
    from repro.runtime.executor import inject_task_delays, inject_worker_stall

    jobs = [
        Job(
            job_id=i,
            n=cfg.n,
            scheme="dag",
            block_size=cfg.block_size,
            seed=cfg.seed,
            intra_workers=2,
        )
        for i in range(cfg.jobs)
    ]
    refs = _reference_factors(jobs)
    service = _service(cfg, executor="thread", intra_workers=2)
    t0 = time.monotonic()

    async def run() -> dict:
        with inject_task_delays(lambda task: 0.01):
            with inject_worker_stall(worker=0, seconds=0.5, timeout_s=0.02) as hook:
                mid = await _drive(service, jobs)
        return {"mid": mid, "fired": hook["fired"].is_set()}

    out = asyncio.run(run())
    m = service.metrics
    stalls = m["runtime_worker_stalls_total"].value()
    task_totals = {kind: int(m["runtime_task_total"].value(kind=kind)) for kind in TASK_KINDS}
    return _evaluate(
        "dag_worker_stall",
        cfg,
        service,
        jobs,
        refs,
        out["mid"],
        time.monotonic() - t0,
        extra={
            "all_completed": _all_completed(service, jobs),
            "stall_injected": out["fired"],
            "stall_detected": stalls >= 1,
            "runtime_tasks_counted": all(
                task_totals[kind] > 0 for kind in ("potf2", "trsm", "syrk", "verify")
            ),
        },
        notes={"runtime_stalls": int(stalls), "task_totals": task_totals},
    )


def scenario_erasure_forward_recovery(cfg: ChaosConfig) -> ScenarioResult:
    """A worker dies mid-attempt with a scribbled snapshot row; the parent
    salvages the surviving tiles, reconstructs the CRC-failing row from the
    checksum strips (a known-location erasure), and resumes from the crashed
    iteration — banked work is kept, a full restart is never paid."""
    workdir = (
        Path(cfg.workdir) if cfg.workdir is not None else Path(tempfile.mkdtemp(prefix="chaos-"))
    )
    journal_path = workdir / "erasure_forward.journal.jsonl"
    if journal_path.exists():
        journal_path.unlink()
    jobs = _jobs(cfg)
    refs = _reference_factors(jobs)
    service = _service(cfg, journal_path=journal_path)
    t0 = time.monotonic()

    async def run() -> dict:
        # Queue first so the armed overlay deterministically hits job 0.
        for job in jobs:
            service.submit(job)
        await service.start_executor()
        try:
            service.executor.inject_midrun_crash(after_iteration=0, count=1, corrupt_rows=(3,))
            service.start()
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    m = service.metrics
    forward = int(m["recovery_forward_total"].value())
    erasure_tiles = int(m["recovery_erasure_tiles_total"].value())
    # An erasure-reconstructed factor is correct to rounding, not bit-identical;
    # hold it to the residual gate and keep bit-identity for everyone else.
    exact_refs: dict[int, np.ndarray] = {}
    repaired = 0
    repaired_ok = True
    for job in jobs:
        result = service.results.get(job.job_id)
        ref = refs[job.job_id]
        if result is None or result.factor is None:
            continue
        if np.array_equal(result.factor, ref):
            exact_refs[job.job_id] = ref
            continue
        repaired += 1
        close = np.allclose(np.tril(result.factor), np.tril(ref), atol=1e-8)
        gate = factorization_residual(job_matrix(job), result.factor) < 1e-9
        repaired_ok = repaired_ok and close and gate
    recovery_records = [
        r for r in read_journal(journal_path) if r["event"] == "recovery" and r.get("forward")
    ]
    # Forward recovery must bank work: every resume starts past iteration 0,
    # so the recomputed span is strictly smaller than a restart from scratch.
    work_banked = bool(recovery_records) and all(
        r.get("resume_iteration", -1) >= 1 for r in recovery_records
    )
    return _evaluate(
        "erasure_forward_recovery",
        cfg,
        service,
        jobs,
        exact_refs,
        mid,
        time.monotonic() - t0,
        extra={
            "all_completed": _all_completed(service, jobs),
            "forward_recovered": forward >= 1,
            "erasure_reconstructed": erasure_tiles >= 1,
            "repaired_factor_within_gate": repaired <= 1 and repaired_ok,
            "resume_banked_work": work_banked,
        },
        notes={
            "forward": forward,
            "erasure_tiles": erasure_tiles,
            "repaired_jobs": repaired,
            "resume_iterations": [r.get("resume_iteration") for r in recovery_records],
        },
    )


def scenario_burst_beyond_capacity(cfg: ChaosConfig) -> ScenarioResult:
    """Losses past code capacity escalate loudly — never a silently wrong factor.

    Two jobs carry same-column storage bursts that defeat the per-column
    code inside the scheme (detection forces a clean in-attempt restart),
    and one worker dies mid-attempt with TWO scribbled rows in one block
    row — more erasures than the snapshot's strips can solve, so salvage
    must decline and the retry ladder escalates backward to a full,
    fault-free retry.  Every job still completes bit-identically:
    beyond-capacity damage costs time, never correctness.
    """
    jobs = _jobs(cfg)
    burst_ids = []
    for offset, sites in enumerate(
        ([((1, 0), (3, 5)), ((1, 0), (9, 5))], [((1, 1), (2, 4)), ((1, 1), (11, 4))])
    ):
        job_id = cfg.jobs + offset
        burst_ids.append(job_id)
        jobs.append(
            Job(
                job_id=job_id,
                n=cfg.n,
                scheme=cfg.scheme,
                block_size=cfg.block_size,
                seed=cfg.seed,
                injector=burst_storage_faults(sites, iteration=0),
            )
        )
    refs = _reference_factors(jobs)  # specs drop injectors: fault-free oracles
    service = _service(cfg)
    t0 = time.monotonic()

    async def run() -> dict:
        # Queue first: the beyond-capacity crash overlay lands on job 0
        # (injector-free), the burst jobs ride in the same load behind it.
        for job in jobs:
            service.submit(job)
        await service.start_executor()
        try:
            service.executor.inject_midrun_crash(
                after_iteration=0, count=1, corrupt_rows=(1, 5)
            )
            service.start()
            return service.metrics.counters_snapshot()
        finally:
            await service.stop()

    mid = asyncio.run(run())
    m = service.metrics
    forward = int(m["recovery_forward_total"].value())
    backward = int(m["recovery_backward_total"].value(reason="declined"))
    burst_restarts = [
        (r := service.results.get(job_id)) is not None and r.restarts >= 1
        for job_id in burst_ids
    ]
    return _evaluate(
        "burst_beyond_capacity",
        cfg,
        service,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "all_completed": _all_completed(service, jobs),
            "salvage_escalated_backward": backward >= 1,
            "no_forward_past_capacity": forward == 0,
            "bursts_detected_in_scheme": all(burst_restarts),
        },
        notes={
            "backward_declined": backward,
            "burst_jobs": burst_ids,
            "burst_restarts": burst_restarts,
        },
    )


# -- cluster scenarios ---------------------------------------------------------


def _cluster_config(cfg: ChaosConfig, shards: int = 3, **overrides: Any):
    """A small, fast-converging cluster for chaos runs."""
    from repro.cluster import ClusterConfig

    base: dict[str, Any] = dict(
        shards=shards,
        workers=(f"tardis:{cfg.exec_workers}",),
        executor="thread",
        exec_workers=cfg.exec_workers,
        return_factors=True,
        health_interval_s=0.15,
        probe_timeout_s=0.4,
        suspect_after=1,
        down_after=2,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _evaluate_cluster(
    name: str,
    cfg: ChaosConfig,
    router: Any,
    jobs: list[Job],
    refs: dict[int, np.ndarray],
    mid_counters: dict[str, dict[str, float]],
    wall_s: float,
    extra: dict[str, bool] | None = None,
    notes: dict[str, Any] | None = None,
) -> ScenarioResult:
    """The invariant battery, router edition.

    Same contract as :func:`_evaluate`, restated at cluster scope: every
    admitted job resolves exactly once *cluster-wide* (a handoff replay
    that finishes twice is deduplicated at the router, visible only as
    ``cluster_duplicate_results_total``), and every completed factor is
    bit-identical to the inline fault-free reference — shard placement,
    kills and replays move work, never change it.
    """
    m = router.metrics
    completed = int(m["cluster_jobs_completed_total"].value())
    failed = int(m["cluster_jobs_failed_total"].value())
    regressions = counter_regressions(mid_counters, m.counters_snapshot())

    factor_ok = True
    for job in jobs:
        result = router.results.get(job.key)
        if result is None or not result.completed:
            continue
        ref = refs.get(job.job_id)
        if ref is None:
            continue
        if result.factor is None or not np.array_equal(result.factor, ref):
            factor_ok = False

    invariants = {
        "no_lost_jobs": all(job.key in router.results for job in jobs),
        "no_duplicate_results": (completed + failed) == len(router.results),
        "metrics_consistent": len(router.results) == len({r.key for r in router.results.values()}),
        "metrics_monotonic": not regressions,
        "factors_bit_identical": factor_ok,
        "p99_bounded": m["cluster_latency_seconds"].percentile(0.99) <= cfg.p99_budget_s,
    }
    invariants.update(extra or {})
    violations = [key for key, ok in invariants.items() if not ok]
    violations.extend(f"counter regression: {r}" for r in regressions)
    return ScenarioResult(
        name=name,
        ok=not violations,
        invariants=invariants,
        violations=violations,
        submitted=int(m["cluster_jobs_submitted_total"].value()),
        completed=completed,
        failed=failed,
        rejected=int(m["cluster_jobs_rejected_total"].value()),
        retries=int(m["cluster_handoff_jobs_total"].value()),
        p99_s=m["cluster_latency_seconds"].percentile(0.99),
        wall_s=wall_s,
        notes=notes or {},
    )


def scenario_cluster_shard_kill(cfg: ChaosConfig) -> ScenarioResult:
    """A shard is SIGKILLed mid-queue; its journal hands work to survivors."""
    from repro.cluster import ClusterRouter

    jobs = _jobs(cfg, count=max(cfg.jobs, 8))
    refs = _reference_factors(jobs)
    t0 = time.monotonic()
    state: dict[str, Any] = {}

    async def run() -> dict:
        router = ClusterRouter(_cluster_config(cfg))
        state["router"] = router
        await router.start()
        try:
            for job in jobs:
                decision = await router.submit(job)
                while not decision.accepted:
                    await asyncio.sleep(decision.retry_after_s or 0.01)
                    decision = await router.submit(job)
            # Kill the shard holding the deepest backlog — the worst case
            # for the handoff path (maximum admitted-but-unfinished work).
            victim = max(range(len(router.handles)), key=lambda i: len(router.handles[i].pending))
            state["pending_at_kill"] = len(router.handles[victim].pending)
            state["victim"] = router.handles[victim].name
            router.kill_shard(victim)
            mid = router.metrics.counters_snapshot()
            await router.drain(timeout_s=60.0)
            return mid
        finally:
            await router.stop()

    mid = asyncio.run(run())
    router = state["router"]
    handoffs = router.metrics["cluster_handoff_jobs_total"].value()
    return _evaluate_cluster(
        "cluster_shard_kill",
        cfg,
        router,
        jobs,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "all_completed": all(
                (r := router.results.get(job.key)) is not None and r.completed for job in jobs
            ),
            "handoff_observed": handoffs >= 1 or state["pending_at_kill"] == 0,
        },
        notes={
            "victim": state["victim"],
            "pending_at_kill": state["pending_at_kill"],
            "handoffs": handoffs,
            "duplicates": router.metrics["cluster_duplicate_results_total"].value(),
        },
    )


def scenario_cluster_partition(cfg: ChaosConfig) -> ScenarioResult:
    """A router↔shard partition: probes time out, the shard turns SUSPECT
    and new jobs route around it; the partition heals and it rejoins."""
    from repro.cluster import ClusterRouter, ShardState

    first = _jobs(cfg, count=max(cfg.jobs, 6))
    second = _jobs(cfg, count=max(cfg.jobs, 6), id_base=100)
    refs = _reference_factors(first + second)
    t0 = time.monotonic()
    state: dict[str, Any] = {}

    async def run() -> dict:
        # down_after high: a partition must reroute, never trigger handoff.
        router = ClusterRouter(_cluster_config(cfg, down_after=1000))
        state["router"] = router
        await router.start()
        try:
            for job in first:
                await router.submit(job)
            target = router.handles[0]
            await router.partition_shard(0, 2.5)
            deadline = time.monotonic() + 5.0
            while target.state is not ShardState.SUSPECT and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            state["suspected"] = target.state is ShardState.SUSPECT
            for job in second:  # placed while the shard is unreachable
                await router.submit(job)
            mid = router.metrics.counters_snapshot()
            await router.drain(timeout_s=60.0)
            deadline = time.monotonic() + 10.0  # the partition heals
            while target.state is not ShardState.CLOSED and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            state["healed"] = target.state is ShardState.CLOSED
            return mid
        finally:
            await router.stop()

    mid = asyncio.run(run())
    router = state["router"]
    partitioned = router.handles[0].name
    routed_to_partitioned = [
        job.key
        for job in second
        if (r := router.results.get(job.key)) is not None and r.shard == partitioned
    ]
    return _evaluate_cluster(
        "cluster_partition",
        cfg,
        router,
        first + second,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "shard_suspected": state["suspected"],
            "rerouted_during_partition": not routed_to_partitioned,
            "shard_rejoined": state["healed"],
            "no_handoff_on_partition": router.metrics["cluster_handoff_jobs_total"].value() == 0,
        },
        notes={
            "partitioned": partitioned,
            "second_batch_on_partitioned": len(routed_to_partitioned),
        },
    )


def scenario_cluster_rejoin(cfg: ChaosConfig) -> ScenarioResult:
    """Kill, hand off, restart: the rebuilt shard rejoins the ring and
    takes placements again — the rebalance is automatic, not manual."""
    from repro.cluster import ClusterRouter, ShardState

    first = _jobs(cfg, count=max(cfg.jobs, 6))
    second = _jobs(cfg, count=max(cfg.jobs, 6), id_base=200)
    refs = _reference_factors(first + second)
    t0 = time.monotonic()
    state: dict[str, Any] = {}

    async def run() -> dict:
        router = ClusterRouter(_cluster_config(cfg))
        state["router"] = router
        await router.start()
        try:
            for job in first:
                await router.submit(job)
            router.kill_shard(1)
            await router.drain(timeout_s=60.0)
            deadline = time.monotonic() + 10.0
            while router.handles[1].state is not ShardState.DOWN and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            state["went_down"] = router.handles[1].state is ShardState.DOWN
            await router.restart_shard(1)
            state["rejoined"] = router.handles[1].state is ShardState.CLOSED
            for job in second:
                await router.submit(job)
            mid = router.metrics.counters_snapshot()
            await router.drain(timeout_s=60.0)
            return mid
        finally:
            await router.stop()

    mid = asyncio.run(run())
    router = state["router"]
    rejoined_name = router.handles[1].name
    # With the full ring healthy again, every second-batch job must land
    # exactly where consistent hashing says — the rebalance is the ring,
    # not a special-case path.  (Executed shard == ring owner.)
    placements_match_ring = all(
        (r := router.results.get(job.key)) is not None and r.shard == router.ring.place(job.key)
        for job in second
    )
    second_on_rejoined = [
        job.key
        for job in second
        if (r := router.results.get(job.key)) is not None and r.shard == rejoined_name
    ]
    return _evaluate_cluster(
        "cluster_rejoin",
        cfg,
        router,
        first + second,
        refs,
        mid,
        time.monotonic() - t0,
        extra={
            "shard_went_down": state["went_down"],
            "shard_rejoined": state["rejoined"],
            "rejoined_shard_in_ring": placements_match_ring,
        },
        notes={
            "rejoined": rejoined_name,
            "second_batch_on_rejoined": len(second_on_rejoined),
            "handoffs": router.metrics["cluster_handoff_jobs_total"].value(),
        },
    )


#: name → scenario, in scorecard order.
SCENARIOS: dict[str, Callable[[ChaosConfig], ScenarioResult]] = {
    "worker_crash": scenario_worker_crash,
    "worker_wedge": scenario_worker_wedge,
    "slow_worker": scenario_slow_worker,
    "shm_corruption": scenario_shm_corruption,
    "shm_truncation": scenario_shm_truncation,
    "queue_flood": scenario_queue_flood,
    "stop_race": scenario_stop_race,
    "breaker_failover": scenario_breaker_failover,
    "kill_restart": scenario_kill_restart,
    "dag_worker_stall": scenario_dag_worker_stall,
    "erasure_forward_recovery": scenario_erasure_forward_recovery,
    "burst_beyond_capacity": scenario_burst_beyond_capacity,
    "cluster_shard_kill": scenario_cluster_shard_kill,
    "cluster_partition": scenario_cluster_partition,
    "cluster_rejoin": scenario_cluster_rejoin,
}

#: the CI smoke subset: one crash-retry path, the breaker degradation
#: path, the kill-and-restart journal recovery proof, and both sides of
#: the erasure-recovery ladder (forward resume, beyond-capacity escalation).
QUICK_SCENARIOS = (
    "worker_crash",
    "breaker_failover",
    "kill_restart",
    "erasure_forward_recovery",
    "burst_beyond_capacity",
)


def run_chaos(
    cfg: ChaosConfig | None = None, scenarios: tuple[str, ...] | None = None
) -> dict[str, Any]:
    """Run the chaos campaign and return the BENCH_chaos document."""
    cfg = cfg if cfg is not None else ChaosConfig()
    names = scenarios if scenarios is not None else tuple(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    require(not unknown, f"unknown chaos scenarios {unknown}; have {sorted(SCENARIOS)}")
    rows: dict[str, Any] = {}
    for name in names:
        rows[name] = SCENARIOS[name](cfg).to_json()
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "python -m repro chaos",
        "stamp": run_stamp(),
        "config": {
            "jobs": cfg.jobs,
            "n": cfg.n,
            "block_size": cfg.block_size,
            "scheme": cfg.scheme,
            "seed": cfg.seed,
            "exec_workers": cfg.exec_workers,
        },
        "scenarios": rows,
        "ok": all(row["ok"] for row in rows.values()),
    }


def write(doc: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def render(doc: dict[str, Any]) -> str:
    """Human summary of one chaos scorecard."""
    cfg = doc["config"]
    lines = [
        f"chaos campaign — {cfg['jobs']} jobs/scenario, n={cfg['n']}, "
        f"B={cfg['block_size']}, backend workers={cfg['exec_workers']}",
        f"  {'scenario':18} {'ok':>4} {'done':>5} {'fail':>5} {'rej':>4} "
        f"{'retry':>5} {'p99 ms':>8} {'wall s':>7}",
    ]
    for name, row in doc["scenarios"].items():
        lines.append(
            f"  {name:18} {'PASS' if row['ok'] else 'FAIL':>4} {row['completed']:>5} "
            f"{row['failed']:>5} {row['rejected']:>4} {row['retries']:>5} "
            f"{row['p99_s'] * 1e3:8.1f} {row['wall_s']:7.2f}"
        )
        for violation in row["violations"]:
            lines.append(f"      violated: {violation}")
    lines.append(f"  overall: {'PASS' if doc['ok'] else 'FAIL'}")
    return "\n".join(lines)
