"""repro — Enhanced Online-ABFT Cholesky on (simulated) heterogeneous systems.

A full reproduction of Chen, Liang & Chen, *Online Algorithm-Based Fault
Tolerance for Cholesky Decomposition on Heterogeneous Systems with GPUs*
(IPDPS 2016): the three ABFT schemes (Offline, Online, Enhanced Online),
the checksum machinery, all three overhead optimizations, the analytic
overhead model, and a discrete-event simulated CPU+GPU machine standing in
for the paper's Fermi/Kepler testbeds.

Quick start::

    import numpy as np
    from repro import enhanced_potrf, Machine
    from repro.blas import random_spd

    a = random_spd(1024, rng=0)
    result = enhanced_potrf(Machine.preset("tardis"), a=a.copy(), block_size=128)
    L = result.factor

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    AbftConfig,
    FtPotrfResult,
    enhanced_potrf,
    offline_potrf,
    online_potrf,
)
from repro.hetero import BULLDOZER64, TARDIS, Machine
from repro.magma import magma_potrf

__version__ = "1.0.0"

__all__ = [
    "AbftConfig",
    "FtPotrfResult",
    "enhanced_potrf",
    "offline_potrf",
    "online_potrf",
    "BULLDOZER64",
    "TARDIS",
    "Machine",
    "magma_potrf",
    "__version__",
]
