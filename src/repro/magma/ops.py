"""The four blocked operations of MAGMA's Cholesky (Algorithm 1).

Each ``*_op`` function issues one operation of iteration *j* against an
:class:`~repro.hetero.context.ExecutionContext`:

- **real mode**: the NumPy numerics run immediately, in place, on the
  device matrix's tile views;
- **both modes**: corruption taint is propagated from inputs to outputs
  with the conservative data-flow rules of
  :class:`repro.faults.taint.TaintState`;
- **both modes**: a priced task is recorded into the context's task graph
  (GPU stream for SYRK/GEMM/TRSM, the CPU for POTF2).

The matrix is factored *left-looking* exactly as in the paper: at iteration
j, SYRK and GEMM apply all updates from the already-final block row/columns
0..j-1 to block column j, then POTF2 factors the diagonal tile on the CPU
and TRSM finalizes the panel on the GPU.
"""

from __future__ import annotations

from repro.blas import dense
from repro.desim.task import Task
from repro.faults.taint import TaintState
from repro.hetero.context import ExecutionContext
from repro.hetero.memory import DeviceMatrix
from repro.hetero.stream import Stream
from repro.util.validation import require


def syrk_op(
    ctx: ExecutionContext,
    matrix: DeviceMatrix,
    j: int,
    stream: Stream,
) -> Task | None:
    """Rank-k update of the diagonal tile: ``A[j,j] -= A[j,0:j] · A[j,0:j]^T``.

    No-op (returns None) at j=0, where the diagonal tile has no left panel.
    """
    if j == 0:
        return None
    b = matrix.block_size

    def numerics() -> None:
        dense.syrk_update(matrix.block(j, j), matrix.blocked.block_row(j, 0, j))

    task = ctx.launch_gpu(
        f"syrk[{j}]",
        kind="syrk",
        cost=ctx.cost.syrk(b, j * b),
        stream=stream,
        fn=numerics,
        iteration=j,
        tile_reads=[(j, k) for k in range(j)] + [(j, j)],
        tile_writes=[(j, j)],
    )
    out = matrix.taint_of((j, j))
    for k in range(j):
        src = matrix.taint_of((j, k))
        if src.is_clean():
            continue
        out.merge(src.propagated_as_left_factor())
        out.merge(src.propagated_as_right_factor())
    return task


def gemm_op(
    ctx: ExecutionContext,
    matrix: DeviceMatrix,
    j: int,
    stream: Stream,
) -> Task | None:
    """Panel update: ``A[j+1:nb, j] -= A[j+1:nb, 0:j] · A[j, 0:j]^T``.

    Issued as the single large DGEMM MAGMA uses (one kernel, the dominant
    cost of the whole factorization).  Returns None when the trailing panel
    or the left panel is empty.
    """
    nb, b = matrix.nb, matrix.block_size
    rows = nb - j - 1
    if j == 0 or rows == 0:
        return None

    def numerics() -> None:
        dense.gemm_update(
            matrix.blocked.panel(j + 1, nb, j, j + 1),
            matrix.blocked.panel(j + 1, nb, 0, j),
            matrix.blocked.block_row(j, 0, j),
        )

    task = ctx.launch_gpu(
        f"gemm[{j}]",
        kind="gemm",
        cost=ctx.cost.gemm(rows * b, b, j * b),
        stream=stream,
        fn=numerics,
        iteration=j,
        tile_reads=(
            [(i, k) for i in range(j + 1, nb) for k in range(j)]
            + [(j, k) for k in range(j)]
            + [(i, j) for i in range(j + 1, nb)]
        ),
        tile_writes=[(i, j) for i in range(j + 1, nb)],
    )
    # Taint: output tile (i, j) collects the left factor's row corruption
    # from every (i, k) and the right factor's column corruption from (j, k).
    right = TaintState()
    for k in range(j):
        src = matrix.taint_of((j, k))
        if not src.is_clean():
            right.merge(src.propagated_as_right_factor())
    for i in range(j + 1, nb):
        out = matrix.taint_of((i, j))
        if not right.is_clean():
            out.merge(right)
        for k in range(j):
            src = matrix.taint_of((i, k))
            if not src.is_clean():
                out.merge(src.propagated_as_left_factor())
    return task


def potf2_op(
    ctx: ExecutionContext,
    matrix: DeviceMatrix,
    j: int,
    deps: list[Task] | None = None,
) -> Task:
    """Unblocked Cholesky of the (transferred) diagonal tile, on the CPU.

    Real mode may raise :class:`repro.util.exceptions.SingularBlockError` —
    the fail-stop outcome when corruption broke positive definiteness.
    """
    b = matrix.block_size

    def numerics() -> None:
        dense.potf2(matrix.block(j, j), block_index=j)

    task = ctx.launch_cpu(
        f"potf2[{j}]",
        kind="potf2",
        cost=ctx.cost.cpu_potf2(b),
        fn=numerics,
        deps=deps,
        iteration=j,
        tile_reads=[(j, j)],
        tile_writes=[(j, j)],
    )
    taint = matrix.taint_of((j, j))
    if not taint.is_clean():
        # Corrupt input to a dense factorization: the factor is garbage
        # everywhere (and on real hardware may fail-stop instead).
        taint.merge(TaintState.from_corrupt_triangular_factor())
    return task


def trsm_op(
    ctx: ExecutionContext,
    matrix: DeviceMatrix,
    j: int,
    stream: Stream,
) -> Task | None:
    """Panel solve: ``A[j+1:nb, j] ← A[j+1:nb, j] · L[j,j]^{-T}`` on the GPU.

    Returns None on the last iteration (empty trailing panel).
    """
    nb, b = matrix.nb, matrix.block_size
    rows = nb - j - 1
    if rows == 0:
        return None

    def numerics() -> None:
        dense.trsm_right_lt(matrix.blocked.panel(j + 1, nb, j, j + 1), matrix.block(j, j))

    task = ctx.launch_gpu(
        f"trsm[{j}]",
        kind="trsm",
        cost=ctx.cost.trsm(rows * b, b),
        stream=stream,
        fn=numerics,
        iteration=j,
        tile_reads=[(j, j)] + [(i, j) for i in range(j + 1, nb)],
        tile_writes=[(i, j) for i in range(j + 1, nb)],
    )
    ell_taint = matrix.taint_of((j, j))
    for i in range(j + 1, nb):
        out = matrix.taint_of((i, j))
        if not ell_taint.is_clean():
            out.merge(TaintState.from_corrupt_triangular_factor())
        elif not out.is_clean():
            propagated = out.propagated_through_trsm()
            out.clear()
            out.merge(propagated)
    return task


def check_inputs(matrix: DeviceMatrix, block_size: int | None = None) -> None:
    """Shared driver precondition checks."""
    require(matrix.nb >= 1, "matrix must have at least one tile")
    if block_size is not None:
        require(matrix.block_size == block_size, "block size mismatch")
