"""MAGMA-style hybrid Cholesky: the substrate the ABFT schemes protect.

- :mod:`repro.magma.ops` — the four blocked operations of Algorithm 1
  (SYRK, GEMM, POTF2, TRSM) as execution-context launches: each runs the
  real NumPy numerics (real mode), propagates taint (shadow mode), and
  records a priced task.
- :mod:`repro.magma.potrf` — the plain (fault-intolerant) hybrid driver,
  the "Original MAGMA" series of Figures 16/17.
- :mod:`repro.magma.host` — host-only reference factorizations used as
  ground truth in tests.
- :mod:`repro.magma.cula` — the calibrated CULA R18 baseline model.
"""

from repro.magma.cula import cula_potrf_time
from repro.magma.host import host_blocked_potrf, host_potrf
from repro.magma.ops import gemm_op, potf2_op, syrk_op, trsm_op
from repro.magma.potrf import PotrfResult, magma_potrf

__all__ = [
    "cula_potrf_time",
    "host_blocked_potrf",
    "host_potrf",
    "gemm_op",
    "potf2_op",
    "syrk_op",
    "trsm_op",
    "PotrfResult",
    "magma_potrf",
]
