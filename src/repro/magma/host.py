"""Host-only reference factorizations (ground truth for tests)."""

from __future__ import annotations

import numpy as np

from repro.blas import dense
from repro.blas.blocked import BlockedMatrix
from repro.util.validation import check_square


def host_potrf(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor via LAPACK (non-destructive)."""
    check_square("a", a)
    return np.linalg.cholesky(a)


def host_blocked_potrf(a: np.ndarray, block_size: int) -> np.ndarray:
    """Left-looking blocked Cholesky on the host, in place.

    Runs the *identical* operation sequence as the hybrid driver
    (SYRK → GEMM → POTF2 → TRSM per block column) but without any machine
    simulation, so tests can compare the simulated driver's numerics
    bit-for-bit against an independent implementation of the same
    algorithm, and both against LAPACK.
    """
    m = BlockedMatrix(a, block_size)
    nb = m.nb
    for j in range(nb):
        if j > 0:
            dense.syrk_update(m.block(j, j), m.block_row(j, 0, j))
            if j + 1 < nb:
                dense.gemm_update(
                    m.panel(j + 1, nb, j, j + 1),
                    m.panel(j + 1, nb, 0, j),
                    m.block_row(j, 0, j),
                )
        dense.potf2(m.block(j, j), block_index=j)
        if j + 1 < nb:
            dense.trsm_right_lt(m.panel(j + 1, nb, j, j + 1), m.block(j, j))
    return np.tril(a)


def factorization_residual(a_original: np.ndarray, ell: np.ndarray) -> float:
    """Relative residual ‖L·Lᵀ − A‖_F / ‖A‖_F."""
    return float(
        np.linalg.norm(ell @ ell.T - a_original) / np.linalg.norm(a_original)
    )
