"""Right-looking ("outer product") hybrid Cholesky — the design ablation.

Section II-A: "MAGMA chose the inner product version because it has more
BLAS Level-3 operations, hence, can utilize the heterogeneous system more
efficiently."  This module implements the classical right-looking variant
so that claim can be measured: each iteration factors the diagonal tile
*first*, so the CPU POTF2 and both PCIe hops sit squarely on the critical
path instead of hiding under the big GEMM, and the trailing update splits
into one SYRK plus one skinny GEMM per trailing column instead of one
large GEMM.

Same numerics (real mode produces the identical factor), same total flops;
only the schedule differs — which is exactly what the ablation benchmark
measures.
"""

from __future__ import annotations

import numpy as np

from repro.blas import dense
from repro.hetero.context import ExecutionContext
from repro.hetero.machine import Machine
from repro.hetero.memory import DeviceMatrix
from repro.magma.potrf import PotrfResult
from repro.util.validation import check_block_size, check_square, require


def right_looking_loop(ctx: ExecutionContext, matrix: DeviceMatrix) -> None:
    """Record (and in real mode execute) the right-looking factorization."""
    main = ctx.stream("main")
    nb, b = matrix.nb, matrix.block_size
    tile_bytes = ctx.tile_bytes(b)
    for j in range(nb):
        # The diagonal tile is final (right-looking invariant): factor it
        # on the host.  Nothing big runs on the GPU meanwhile — this is the
        # exposed critical-path segment the left-looking driver hides.
        ev = ctx.record_event(main)
        d2h = ctx.transfer_d2h(
            tile_bytes, name=f"d2h_diag[{j}]", deps=[ev.marker], iteration=j
        )

        def potf2_numerics(jj=j):
            dense.potf2(matrix.block(jj, jj), block_index=jj)

        potf2 = ctx.launch_cpu(
            f"potf2[{j}]",
            kind="potf2",
            cost=ctx.cost.cpu_potf2(b),
            fn=potf2_numerics,
            deps=[d2h],
            iteration=j,
        )
        h2d = ctx.transfer_h2d(
            tile_bytes, name=f"h2d_diag[{j}]", deps=[potf2], iteration=j
        )
        wait = ctx.graph.new(f"wait_diag[{j}]", kind="event")
        wait.after(main.last, h2d)
        main.last = wait

        rows = nb - j - 1
        if rows == 0:
            continue

        def trsm_numerics(jj=j):
            dense.trsm_right_lt(
                matrix.blocked.panel(jj + 1, nb, jj, jj + 1), matrix.block(jj, jj)
            )

        ctx.launch_gpu(
            f"trsm[{j}]",
            kind="trsm",
            cost=ctx.cost.trsm(rows * b, b),
            stream=main,
            fn=trsm_numerics,
            iteration=j,
        )

        # Trailing update, column by column: a SYRK on each trailing
        # diagonal tile and a skinny GEMM below it — many small kernels
        # where the left-looking driver issues one large GEMM per column.
        for c in range(j + 1, nb):

            def syrk_numerics(jj=j, cc=c):
                dense.syrk_update(matrix.block(cc, cc), matrix.block(cc, jj))

            ctx.launch_gpu(
                f"syrk[{j}->{c}]",
                kind="syrk",
                cost=ctx.cost.syrk(b, b),
                stream=main,
                fn=syrk_numerics,
                iteration=j,
            )
            below = nb - c - 1
            if below:

                def gemm_numerics(jj=j, cc=c):
                    dense.gemm_update(
                        matrix.blocked.panel(cc + 1, nb, cc, cc + 1),
                        matrix.blocked.panel(cc + 1, nb, jj, jj + 1),
                        matrix.block(cc, jj),
                    )

                ctx.launch_gpu(
                    f"gemm[{j}->{c}]",
                    kind="gemm",
                    cost=ctx.cost.gemm(below * b, b, b),
                    stream=main,
                    fn=gemm_numerics,
                    iteration=j,
                )


def magma_potrf_right(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    numerics: str = "real",
) -> PotrfResult:
    """Right-looking hybrid factorization (the un-MAGMA-like baseline)."""
    if numerics == "real":
        require(a is not None, "real mode requires the matrix a")
        n = check_square("a", a)
    else:
        require(n is not None, "shadow mode requires n")
    bs = block_size if block_size is not None else machine.default_block_size
    check_block_size(n, bs)
    ctx = machine.context(numerics=numerics)
    matrix = ctx.alloc_matrix(n, bs, data=a if numerics == "real" else None)
    right_looking_loop(ctx, matrix)
    sim = ctx.simulate()
    return PotrfResult(
        machine=machine.name,
        n=n,
        block_size=bs,
        makespan=sim.makespan,
        timeline=sim.timeline,
        matrix=matrix,
    )
