"""The plain hybrid Cholesky driver (no fault tolerance).

This reproduces MAGMA's ``dpotrf_gpu`` structure (Algorithm 1 / Figure 1 of
the paper): BLAS-3 on the GPU's main stream, POTF2 on the CPU, and the two
diagonal-tile transfers arranged so that POTF2 and the copies hide under the
iteration's dominant GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blas.flops import potrf_flops
from repro.desim.trace import Timeline
from repro.faults.injector import FaultInjector, Hook
from repro.hetero.context import ExecutionContext
from repro.hetero.machine import Machine
from repro.hetero.memory import DeviceMatrix
from repro.magma.ops import gemm_op, potf2_op, syrk_op, trsm_op
from repro.util.validation import check_block_size, check_square, require


@dataclass
class PotrfResult:
    """Outcome of one simulated hybrid factorization."""

    machine: str
    n: int
    block_size: int
    makespan: float
    timeline: Timeline
    matrix: DeviceMatrix

    @property
    def gflops(self) -> float:
        """Sustained double-precision rate over the simulated run."""
        return potrf_flops(self.n) / self.makespan / 1e9

    @property
    def factor(self) -> np.ndarray:
        """The lower-triangular factor L (real mode only)."""
        require(self.matrix.real, "no numeric factor in shadow mode")
        return np.tril(self.matrix.blocked.data)


def factorization_loop(
    ctx: ExecutionContext,
    matrix: DeviceMatrix,
    injector: "FaultInjector | None" = None,
) -> None:
    """Record (and, in real mode, execute) the full Algorithm-1 loop.

    *injector*, when given, fires the standard fault hooks — the plain
    driver has no protection, so this is how the DMR/TMR baselines and
    unprotected-run experiments corrupt a run.
    """
    main = ctx.stream("main")
    tile_bytes = ctx.tile_bytes(matrix.block_size)

    def fire(hook: Hook, j: int) -> None:
        if injector is not None:
            injector.fire(hook, j)

    for j in range(matrix.nb):
        syrk_op(ctx, matrix, j, main)
        fire(Hook.AFTER_SYRK, j)
        # Ship the freshly-updated diagonal tile to the host...
        ev_diag = ctx.record_event(main)
        d2h = ctx.transfer_d2h(
            tile_bytes, name=f"d2h_diag[{j}]", deps=[ev_diag.marker], iteration=j
        )
        # ...start the big panel GEMM on the GPU...
        gemm_op(ctx, matrix, j, main)
        fire(Hook.AFTER_GEMM, j)
        # ...while the CPU factors the tile (hidden under the GEMM)...
        potf2 = potf2_op(ctx, matrix, j, deps=[d2h])
        fire(Hook.AFTER_POTF2, j)
        h2d = ctx.transfer_h2d(
            tile_bytes, name=f"h2d_diag[{j}]", deps=[potf2], iteration=j
        )
        # ...and the panel solve waits for both the GEMM (stream order)
        # and the returned tile (event dependency).
        wait = ctx.graph.new(f"wait_diag[{j}]", kind="event")
        wait.after(main.last, h2d)
        main.last = wait
        trsm_op(ctx, matrix, j, main)
        fire(Hook.AFTER_TRSM, j)
        fire(Hook.STORAGE_WINDOW, j)


def magma_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    numerics: str = "real",
) -> PotrfResult:
    """Factor an SPD matrix on the simulated machine, without fault tolerance.

    Real mode factors *a* in place (lower triangle holds L on return, as
    LAPACK does); shadow mode takes *n* instead and prices the run only.
    """
    if numerics == "real":
        require(a is not None, "real mode requires the matrix a")
        n = check_square("a", a)
    else:
        require(n is not None, "shadow mode requires n")
    bs = block_size if block_size is not None else machine.default_block_size
    check_block_size(n, bs)

    ctx = machine.context(numerics=numerics)
    matrix = ctx.alloc_matrix(n, bs, data=a if numerics == "real" else None)
    factorization_loop(ctx, matrix)
    sim = ctx.simulate()
    return PotrfResult(
        machine=machine.name,
        n=n,
        block_size=bs,
        makespan=sim.makespan,
        timeline=sim.timeline,
        matrix=matrix,
    )
