"""A calibrated model of the CULA R18 ``culaDpotrf`` baseline.

CULA R18 is a closed-source vendor library (and long discontinued), so this
is a performance *model*, not a reimplementation: a GPU-resident blocked
Cholesky with no CPU/GPU overlap — the diagonal factorization and its
transfers sit on the critical path — and a slightly lower BLAS-3 efficiency
than MAGMA's kernels.  Those two structural handicaps are why the paper's
Figures 16/17 show MAGMA (and even MAGMA+Enhanced-ABFT) beating CULA; the
model reproduces that ordering and the growing gap at small n.
"""

from __future__ import annotations

from repro.blas.flops import gemm_flops, potf2_flops, potrf_flops, syrk_flops, trsm_flops
from repro.hetero.spec import MachineSpec
from repro.util.validation import check_block_size

#: CULA's BLAS-3 kernels relative to MAGMA's on the same GPU (calibrated).
_CULA_EFF_FACTOR = 0.88
#: CULA factors the diagonal tile on the host without overlap.
_HOST_POTF2_EFF = 0.08


def cula_potrf_time(spec: MachineSpec, n: int, block_size: int | None = None) -> float:
    """Modelled seconds for ``culaDpotrf`` on *spec* at order *n*."""
    bs = block_size if block_size is not None else spec.default_block_size
    nb = check_block_size(n, bs)
    gpu = spec.gpu
    peak = gpu.peak_gflops * 1e9
    total = 0.0
    for j in range(nb):
        if j > 0:
            total += syrk_flops(bs, j * bs) / (gpu.eff("syrk") * _CULA_EFF_FACTOR * peak)
            rows = nb - j - 1
            if rows:
                total += gemm_flops(rows * bs, bs, j * bs) / (
                    gpu.eff("gemm") * _CULA_EFF_FACTOR * peak
                )
        # Un-overlapped host factorization of the diagonal tile, plus the
        # round-trip transfer, all on the critical path.
        total += potf2_flops(bs) / (_HOST_POTF2_EFF * spec.cpu.peak_gflops * 1e9)
        total += 2.0 * spec.link.transfer_time(bs * bs * 8)
        if j + 1 < nb:
            total += trsm_flops((nb - j - 1) * bs, bs) / (
                gpu.eff("trsm") * _CULA_EFF_FACTOR * peak
            )
    return total


def cula_gflops(spec: MachineSpec, n: int, block_size: int | None = None) -> float:
    """Modelled sustained GFLOPS of the CULA baseline."""
    return potrf_flops(n) / cula_potrf_time(spec, n, block_size) / 1e9
