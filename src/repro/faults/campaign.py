"""Random fault-injection campaigns.

Where :mod:`repro.faults.injector` reproduces the paper's three targeted
scenarios, a campaign samples many random single-fault runs — random tile,
coordinate, bit, and strike iteration — and aggregates outcomes.  This is
the tool for statements like "Enhanced corrects every single storage error
regardless of where it lands", which the test suite asserts on a sampled
basis and the ``fault_campaign`` example demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.injector import FaultInjector, FaultPlan, Hook
from repro.util.rng import resolve_rng
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class CampaignSpec:
    """Sampling space for random single-fault runs."""

    nb: int
    kind: str = "storage"  # or "computing"
    target: str = "matrix"  # or "checksum"
    #: Bits eligible for storage flips (significant mantissa/exponent range;
    #: very low mantissa bits produce sub-threshold, harmless corruption).
    bits: tuple[int, ...] = tuple(range(40, 63))
    delta_range: tuple[float, float] = (1.0, 1e6)

    def __post_init__(self) -> None:
        check_positive("nb", self.nb)
        require(self.kind in ("storage", "computing"), f"bad kind {self.kind!r}")
        require(self.target in ("matrix", "checksum"), f"bad target {self.target!r}")


def sample_plan(
    spec: CampaignSpec,
    block_size: int,
    rng: np.random.Generator | int | None = None,
) -> FaultPlan:
    """One random fault plan within *spec*'s space.

    Storage faults strike a random already-factored (or not-yet-touched)
    lower-triangle tile in a random iteration's post-verification window;
    computing faults strike a random GEMM output.
    """
    gen = resolve_rng(rng)
    nb = spec.nb
    if spec.kind == "storage":
        iteration = int(gen.integers(0, max(nb - 1, 1)))
        # any lower-triangle tile
        i = int(gen.integers(0, nb))
        j = int(gen.integers(0, i + 1))
        coord = (int(gen.integers(0, block_size)), int(gen.integers(0, block_size)))
        return FaultPlan(
            hook=Hook.STORAGE_WINDOW,
            iteration=iteration,
            kind="storage",
            block=(i, j),
            coord=(0, coord[1]) if spec.target == "checksum" else coord,
            target=spec.target,
            bit=int(gen.choice(spec.bits)),
        )
    # computing error: into the GEMM output panel of a random iteration
    iteration = int(gen.integers(1, max(nb - 1, 2)))
    i = int(gen.integers(iteration + 1, nb)) if iteration + 1 < nb else nb - 1
    coord = (int(gen.integers(0, block_size)), int(gen.integers(0, block_size)))
    lo, hi = spec.delta_range
    delta = float(np.exp(gen.uniform(np.log(lo), np.log(hi))))
    return FaultPlan(
        hook=Hook.AFTER_GEMM,
        iteration=iteration,
        kind="computing",
        block=(i, iteration),
        coord=coord,
        delta=delta,
    )


def sample_injector(
    spec: CampaignSpec,
    block_size: int,
    rng: np.random.Generator | int | None = None,
    count: int = 1,
) -> FaultInjector:
    """A ready-to-bind injector with *count* plans sampled from *spec*.

    The plans are drawn only from *rng*, so callers that derive one
    generator per job (``repro.util.rng.derive_rng``) get identical fault
    sequences no matter how jobs interleave — the property the service's
    RNG-isolation tests pin down.
    """
    check_positive("count", count)
    gen = resolve_rng(rng)
    return FaultInjector([sample_plan(spec, block_size, gen) for _ in range(count)])


def sample_burst(
    spec: CampaignSpec,
    block_size: int,
    rng: np.random.Generator | int | None = None,
    count: int = 2,
    iteration: int | None = None,
    same_column: bool = False,
) -> list[FaultPlan]:
    """*count* storage faults sharing ONE vulnerability window (a burst).

    The window's iteration is sampled once (or pinned by *iteration*), then
    each fault gets its own victim site.  ``same_column=True`` stacks the
    whole burst into one tile column at distinct rows — the adversarial
    pattern that defeats a per-column code once ``count`` exceeds its
    correction capacity, which the beyond-capacity tests rely on to force
    detection-then-restart.  Like :func:`sample_plan`, all randomness
    comes from *rng* alone, so schedule interleaving cannot change where
    a burst lands.
    """
    check_positive("count", count)
    require(spec.kind == "storage", "bursts strike the storage window")
    gen = resolve_rng(rng)
    nb = spec.nb
    window = int(gen.integers(0, max(nb - 1, 1))) if iteration is None else int(iteration)
    require(0 <= window < nb, "burst iteration out of range")
    plans: list[FaultPlan] = []
    if same_column:
        i = int(gen.integers(0, nb))
        j = int(gen.integers(0, i + 1))
        col = int(gen.integers(0, block_size))
        rows = gen.choice(block_size, size=min(count, block_size), replace=False)
        for r in sorted(int(r) for r in rows):
            plans.append(
                FaultPlan(
                    hook=Hook.STORAGE_WINDOW,
                    iteration=window,
                    kind="storage",
                    block=(i, j),
                    coord=(0, col) if spec.target == "checksum" else (r, col),
                    target=spec.target,
                    bit=int(gen.choice(spec.bits)),
                )
            )
        return plans
    seen: set[tuple] = set()
    while len(plans) < count:
        plan = sample_plan(spec, block_size, gen)
        site = (plan.block, plan.coord)
        if site in seen:
            continue  # distinct sites: two flips on one cell can cancel
        seen.add(site)
        plans.append(
            FaultPlan(
                hook=Hook.STORAGE_WINDOW,
                iteration=window,
                kind="storage",
                block=plan.block,
                coord=plan.coord,
                target=plan.target,
                bit=plan.bit,
            )
        )
    return plans


@dataclass
class CampaignOutcome:
    """Aggregated results of one campaign."""

    runs: int = 0
    corrected: int = 0
    restarted: int = 0
    failed: int = 0
    max_residual: float = 0.0
    records: list[dict] = field(default_factory=list)


def plans_from_poisson(
    model,
    nb: int,
    block_size: int,
    iteration_times: "np.ndarray | list[float]",
    rng: np.random.Generator | int | None = None,
    spec: CampaignSpec | None = None,
) -> list[FaultPlan]:
    """Faults arriving in *time*, mapped onto the iteration grid.

    *model* is a :class:`repro.faults.model.PoissonFaultModel`;
    *iteration_times* gives each outer iteration's duration on the
    simulated clock (from a prior fault-free run).  Arrival times are
    sampled over the whole run and each becomes a storage fault in the
    window of the iteration it lands in, at a random site — the bridge
    between the paper's per-iteration reasoning and wall-clock fault
    rates.
    """
    durations = np.asarray(iteration_times, dtype=np.float64)
    require(durations.shape == (nb,), "need one duration per iteration")
    gen = resolve_rng(rng)
    sp = spec if spec is not None else CampaignSpec(nb=nb, kind="storage")
    edges = np.concatenate(([0.0], np.cumsum(durations)))
    arrivals = model.sample_arrivals(float(edges[-1]), rng=gen)
    plans: list[FaultPlan] = []
    for t in arrivals:
        iteration = int(np.searchsorted(edges, t, side="right") - 1)
        iteration = min(max(iteration, 0), nb - 1)
        template = sample_plan(sp, block_size, gen)
        plans.append(
            FaultPlan(
                hook=Hook.STORAGE_WINDOW,
                iteration=iteration,
                kind="storage",
                block=template.block,
                coord=template.coord,
                target=template.target,
                bit=template.bit,
            )
        )
    return plans


def run_campaign(
    potrf,
    machine,
    a: np.ndarray,
    block_size: int,
    spec: CampaignSpec,
    n_runs: int,
    rng: np.random.Generator | int | None = None,
    residual_fn=None,
    config=None,
) -> CampaignOutcome:
    """Run *n_runs* independent single-fault factorizations of *a*.

    ``potrf`` is one of the scheme drivers; ``residual_fn(a0, L)`` (optional)
    scores each produced factor against the pristine input.
    """
    check_positive("n_runs", n_runs)
    gen = resolve_rng(rng)
    outcome = CampaignOutcome()
    for run_idx in range(n_runs):
        plan = sample_plan(spec, block_size, gen)
        injector = FaultInjector([plan])
        work = a.copy()
        try:
            result = potrf(
                machine, a=work, block_size=block_size, injector=injector, config=config
            )
        except Exception as exc:  # RestartExhausted or similar
            outcome.runs += 1
            outcome.failed += 1
            outcome.records.append({"plan": plan, "error": repr(exc)})
            continue
        outcome.runs += 1
        residual = residual_fn(a, result.factor) if residual_fn else 0.0
        outcome.max_residual = max(outcome.max_residual, residual)
        if result.restarts:
            outcome.restarted += 1
        elif result.stats.data_corrections or result.stats.checksum_corrections:
            outcome.corrected += 1
        outcome.records.append(
            {
                "plan": plan,
                "restarts": result.restarts,
                "data_corrections": result.stats.data_corrections,
                "checksum_corrections": result.stats.checksum_corrections,
                "residual": residual,
            }
        )
    return outcome
