"""Fault injection: the stand-in for real soft errors.

- :mod:`repro.faults.bitflip` — flip bits of live float64 storage (storage
  errors, i.e. "0 becomes 1") and perturb kernel outputs (computing errors,
  i.e. "1+1=3").
- :mod:`repro.faults.taint` — coordinate-level corruption tracking with the
  propagation semantics of SYRK/GEMM/TRSM/POTF2; this is how shadow-mode
  (paper-scale) runs know whether ABFT could have corrected an error.
- :mod:`repro.faults.injector` — deterministic fault plans fired at named
  hook points inside the factorization ("after SYRK of iteration 3",
  "between verification and read"), plus helpers to build the exact
  scenarios of Tables VII/VIII.
- :mod:`repro.faults.model` — Poisson arrival processes for random fault
  campaigns (used to reason about the verification interval K).
"""

from repro.faults.bitflip import flip_bit, perturb
from repro.faults.campaign import CampaignOutcome, CampaignSpec, run_campaign, sample_plan
from repro.faults.injector import FaultInjector, FaultPlan, Hook
from repro.faults.model import PoissonFaultModel, recommended_interval
from repro.faults.taint import TaintState

__all__ = [
    "flip_bit",
    "perturb",
    "CampaignOutcome",
    "CampaignSpec",
    "run_campaign",
    "sample_plan",
    "FaultInjector",
    "FaultPlan",
    "Hook",
    "PoissonFaultModel",
    "recommended_interval",
    "TaintState",
]
