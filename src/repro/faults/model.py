"""Stochastic fault-arrival models.

The paper's Optimization 3 trades verification frequency against the system
fault rate: "for systems with low error rate, we can increase K".  This
module provides the quantitative side of that trade:

- :class:`PoissonFaultModel` — memoryless soft-error arrivals over the
  resident data, parameterized as faults per gigabyte-second (the unit used
  by large-scale DRAM/GPU field studies);
- :func:`recommended_interval` — the largest verification interval K that
  keeps the probability of ≥2 faults striking the same block column within
  one verification window below a target (two faults in one column defeat
  the two-checksum code).
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import check_positive, require


class PoissonFaultModel:
    """Homogeneous Poisson soft-error arrivals over a memory footprint."""

    def __init__(self, faults_per_gb_s: float, footprint_gb: float) -> None:
        check_positive("faults_per_gb_s", faults_per_gb_s)
        check_positive("footprint_gb", footprint_gb)
        self.rate = faults_per_gb_s * footprint_gb  # faults per second

    def expected_faults(self, duration_s: float) -> float:
        """Mean number of faults over *duration_s* seconds."""
        require(duration_s >= 0, "duration must be nonnegative")
        return self.rate * duration_s

    def p_at_least_one(self, duration_s: float) -> float:
        """P[≥1 fault in *duration_s*]."""
        return -math.expm1(-self.expected_faults(duration_s))

    def p_at_least(self, k: int, duration_s: float) -> float:
        """P[≥k faults in *duration_s*] via the Poisson tail."""
        check_positive("k", k)
        lam = self.expected_faults(duration_s)
        # 1 - CDF(k-1); stable summation, lam is small in practice.
        acc = 0.0
        term = math.exp(-lam)
        for i in range(k):
            acc += term
            term = term * lam / (i + 1)
        return max(0.0, 1.0 - acc)

    def sample_arrivals(
        self,
        duration_s: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Fault arrival times (sorted) in [0, duration_s)."""
        gen = resolve_rng(rng)
        n = gen.poisson(self.expected_faults(duration_s))
        return np.sort(gen.uniform(0.0, duration_s, size=n))


def recommended_interval(
    model: PoissonFaultModel,
    iteration_time_s: float,
    max_k: int = 64,
    risk_budget: float = 1e-6,
) -> int:
    """Largest K with P[≥2 faults within one K-iteration window] ≤ budget.

    Two faults inside one window can land in the same block column, which
    the two-checksum code cannot correct — so the window is sized to make
    that a ≤ *risk_budget* event.  K ≥ 1 always (the scheme must verify).
    """
    check_positive("iteration_time_s", iteration_time_s)
    require(0.0 < risk_budget < 1.0, "risk_budget must be in (0, 1)")
    best = 1
    for k in range(1, max_k + 1):
        if model.p_at_least(2, k * iteration_time_s) <= risk_budget:
            best = k
        else:
            break
    return best
