"""Deterministic fault plans fired at named hook points.

The paper's capability experiments (Tables VII/VIII) inject *one* error of a
chosen type at a chosen moment:

- a **computing error** lands in the output of an updating kernel;
- a **storage error** lands in a block *after* it was last verified and
  *before* it is next read — the window existing Online-ABFT does not cover.

Scheme drivers call :meth:`FaultInjector.fire` at well-known hooks; the
injector applies every armed plan whose (hook, iteration) matches.  Targets
address a tile of the matrix or of its checksum strip plus an in-tile
coordinate, so the same plan works in real mode (actual bit flip /
perturbation) and shadow mode (taint point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.bitflip import flip_bit, perturb, significant_bit_for
from repro.faults.taint import TaintState
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hetero.memory import DeviceBuffer


class Hook(str, enum.Enum):
    """Moments in the factorization where faults can strike.

    The ``AFTER_*`` hooks fire right after the named kernel's output exists
    (computing-error window); ``STORAGE_WINDOW`` fires after an iteration's
    verifications are complete but before the next iteration reads the data
    (the storage-error window of Section III).
    """

    AFTER_SYRK = "after_syrk"
    AFTER_GEMM = "after_gemm"
    AFTER_POTF2 = "after_potf2"
    AFTER_TRSM = "after_trsm"
    STORAGE_WINDOW = "storage_window"
    BEFORE_FACTORIZATION = "before_factorization"


@dataclass
class FaultPlan:
    """One scheduled fault.

    Parameters
    ----------
    hook:
        When to strike.
    iteration:
        Outer iteration index the hook must report (``-1`` = any).
    kind:
        ``"storage"`` (bit flip in memory) or ``"computing"`` (bad result).
    target:
        ``"matrix"`` or ``"checksum"``.
    block:
        Tile coordinates (i, j) of the victim.
    coord:
        In-tile coordinates (r, c).  For checksum strips r ∈ {0, 1}.
    bit:
        Bit to flip for storage faults; ``None`` picks a significant
        exponent bit automatically.
    delta:
        Additive error magnitude for computing faults.
    """

    hook: Hook
    iteration: int
    kind: str
    block: tuple[int, int]
    coord: tuple[int, int]
    target: str = "matrix"
    bit: int | None = None
    delta: float = 1024.0
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        require(self.kind in ("storage", "computing"), f"bad fault kind {self.kind!r}")
        require(self.target in ("matrix", "checksum"), f"bad target {self.target!r}")


@dataclass
class FiredFault:
    """Record of one applied fault (for logs and assertions)."""

    plan: FaultPlan
    iteration: int
    old_value: float | None


class FaultInjector:
    """Applies :class:`FaultPlan` entries when their hook fires.

    One injector instance is threaded through a factorization run.  It is
    bound to the buffers it may corrupt via :meth:`bind`, because the
    drivers allocate device storage only after the injector is configured.
    """

    def __init__(self, plans: list[FaultPlan] | None = None) -> None:
        self.plans = list(plans or [])
        self.fired: list[FiredFault] = []
        self._buffers: dict[str, DeviceBuffer] = {}

    def bind(self, target: str, buffer: "DeviceBuffer") -> None:
        """Associate the ``"matrix"`` / ``"checksum"`` target with *buffer*."""
        require(target in ("matrix", "checksum"), f"bad target {target!r}")
        self._buffers[target] = buffer

    def __getstate__(self) -> dict:
        """Pickle without device buffers (they hold the actual matrices).

        An injector crossing the process boundary (as part of a service
        job) carries only its plans and fired records; the executing side
        re-binds fresh buffers, and matrices travel through shared memory
        — never inside a pickled injector.
        """
        state = self.__dict__.copy()
        state["_buffers"] = {}
        return state

    def add(self, plan: FaultPlan) -> FaultPlan:
        self.plans.append(plan)
        return plan

    @property
    def armed(self) -> bool:
        return any(not p.fired for p in self.plans)

    def reset(self) -> None:
        """Re-arm all plans (used between capability-table runs)."""
        for p in self.plans:
            p.fired = False
        self.fired.clear()

    def disarm(self) -> None:
        """Mark every plan fired — a restarted run must not re-inject.

        Matches the experimental protocol: the injected error is a one-shot
        event; the recovery re-run executes fault-free.
        """
        for p in self.plans:
            p.fired = True

    # -- firing -----------------------------------------------------------------

    def fire(self, hook: Hook, iteration: int) -> list[FiredFault]:
        """Apply every armed plan matching (*hook*, *iteration*)."""
        applied: list[FiredFault] = []
        for plan in self.plans:
            if plan.fired or plan.hook != hook:
                continue
            if plan.iteration not in (-1, iteration):
                continue
            applied.append(self._apply(plan, iteration))
        self.fired.extend(applied)
        return applied

    def fire_plans(self, plans: list[FaultPlan], iteration: int) -> list[FiredFault]:
        """Apply exactly the armed plans in *plans* (task-identity firing).

        The tile-DAG runtime (:mod:`repro.runtime`) anchors each plan to
        one task identity (kind, iteration, tile) when it builds the
        graph, then fires the anchored plans from inside that task's
        body — so injection timing is a property of the dataflow, not of
        which worker thread happened to finish first.  One-shot ``fired``
        flags and taint bookkeeping are shared with :meth:`fire`.
        """
        applied = [self._apply(p, iteration) for p in plans if not p.fired]
        self.fired.extend(applied)
        return applied

    def _apply(self, plan: FaultPlan, iteration: int) -> FiredFault:
        buffer = self._buffers.get(plan.target)
        require(
            buffer is not None,
            f"no buffer bound for target {plan.target!r}; call bind() first",
        )
        plan.fired = True
        old: float | None = None
        if buffer.array is not None:
            tile = buffer.tile_view(plan.block)
            if plan.kind == "storage":
                bit = plan.bit
                if bit is None:
                    bit = significant_bit_for(float(tile[plan.coord]))
                old = flip_bit(tile, plan.coord, bit)
            else:
                old = perturb(tile, plan.coord, plan.delta)
        # Taint bookkeeping happens in both modes; in real mode it is only
        # informational (verification uses the numerics), in shadow mode it
        # *is* the corruption.
        taint = buffer.taint_of(plan.block)
        taint.add_point(*plan.coord)
        return FiredFault(plan=plan, iteration=iteration, old_value=old)


def no_faults() -> FaultInjector:
    """An injector with no plans (the fault-free baseline runs)."""
    return FaultInjector([])


def single_computing_fault(
    block: tuple[int, int],
    coord: tuple[int, int] = (3, 5),
    iteration: int | None = None,
    delta: float = 1024.0,
    hook: Hook = Hook.AFTER_GEMM,
) -> FaultInjector:
    """The Table VII/VIII 'Computation Error' scenario: one bad kernel result."""
    it = block[1] if iteration is None else iteration
    return FaultInjector(
        [FaultPlan(hook=hook, iteration=it, kind="computing", block=block, coord=coord, delta=delta)]
    )


def single_storage_fault(
    block: tuple[int, int],
    coord: tuple[int, int] = (2, 7),
    iteration: int = 0,
    bit: int | None = None,
    target: str = "matrix",
) -> FaultInjector:
    """The 'Memory Error' scenario: a bit flip in the post-verification window."""
    return FaultInjector(
        [
            FaultPlan(
                hook=Hook.STORAGE_WINDOW,
                iteration=iteration,
                kind="storage",
                block=block,
                coord=coord,
                bit=bit,
                target=target,
            )
        ]
    )

def burst_storage_faults(
    sites: "list[tuple[tuple[int, int], tuple[int, int]]]",
    iteration: int = 0,
    bit: int | None = None,
    target: str = "matrix",
) -> FaultInjector:
    """A multi-fault burst: every *site* struck in ONE vulnerability window.

    *sites* is a list of ``(block, coord)`` victims; all of them flip in
    the same iteration's post-verification storage window — the "multiple
    errors between two verifications" regime the multi-checksum code
    (:mod:`repro.core.multierror`) exists for.  Because every plan shares
    one hook anchor, serial, threaded, and tile-DAG schedules all fire
    the burst at the identical dataflow point (see
    :func:`repro.runtime.cholesky.anchored_plans`), and the one-shot
    ``fired`` flags keep the whole burst from replaying on retries.
    """
    require(len(sites) >= 1, "a burst needs at least one site")
    return FaultInjector(
        [
            FaultPlan(
                hook=Hook.STORAGE_WINDOW,
                iteration=iteration,
                kind="storage",
                block=tuple(block),
                coord=tuple(coord),
                bit=bit,
                target=target,
            )
            for block, coord in sites
        ]
    )


_TaintState = TaintState  # re-export convenience for type checkers
