"""Bit-level corruption of float64 storage.

A *storage error* is a bit flip in memory that ECC missed (or a multi-bit
flip ECC cannot fix — Section III of the paper).  We flip real bits of the
IEEE-754 representation in the live NumPy buffer, so the corruption behaves
exactly like the hardware event: a high-exponent flip produces a huge bogus
magnitude, a low-mantissa flip a tiny one below any detection threshold.

A *computing error* (``1+1=3``) is modelled as an additive perturbation of
one element of a kernel's output, applied immediately after the kernel runs.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require


def flip_bit(a: np.ndarray, index: tuple[int, ...], bit: int) -> float:
    """Flip *bit* (0 = LSB of mantissa … 63 = sign) of ``a[index]`` in place.

    Returns the old value so tests and campaign logs can record the flip.
    """
    require(a.dtype == np.float64, "flip_bit requires a float64 array")
    require(0 <= bit < 64, f"bit index {bit} outside [0, 64)")
    old = float(a[index])
    view = a.view(np.uint64)
    view[index] ^= np.uint64(1) << np.uint64(bit)
    return old


def perturb(a: np.ndarray, index: tuple[int, ...], delta: float) -> float:
    """Add *delta* to ``a[index]`` in place (a computing error); return old."""
    require(a.dtype == np.float64, "perturb requires a float64 array")
    old = float(a[index])
    a[index] = old + delta
    return old


def significant_bit_for(value: float, magnitude: float = 1.0) -> int:
    """Pick an exponent bit whose flip visibly corrupts *value*.

    Flipping exponent bit 54 (the lowest exponent bit is 52) multiplies or
    divides the magnitude by 4, comfortably above rounding thresholds for
    O(*magnitude*) data while staying finite.  For exact zeros we flip a
    high mantissa bit instead, producing a small-but-detectable denormal-ish
    value — zero has no exponent to disturb.
    """
    if value == 0.0:
        return 51
    del magnitude  # reserved for smarter policies
    return 54
