"""Coordinate-level corruption tracking for shadow-mode runs.

At paper scale (n up to 30720) we cannot afford the real arithmetic, but the
capability experiments (Tables VII/VIII) hinge on *whether corruption was
still correctable when a scheme finally verified the block*.  TaintState
answers that question symbolically.

A block's taint is a set of corrupted coordinates, compressed into three
layers (exact points, whole corrupted rows, whole corrupted columns, or
"everything").  The propagation rules below are the data-flow of the four
kernels; they are *conservative upward* — propagation never under-reports
corruption, so shadow mode never claims a correction the real numerics
could not have made.

Correctability criterion (two weighted column checksums, as in Section
IV-C): a block is correctable iff every block column contains at most one
corrupted element and the block's checksum strip itself is clean; a dirty
checksum strip over clean data is also repairable (by re-encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class TaintState:
    """Corruption of one B×B tile (or one 2×B checksum strip).

    A state may be *bound* to an owning buffer (see
    :meth:`repro.hetero.memory.DeviceBuffer.taint_of`); every mutator then
    notifies the owner so it can maintain an incremental dirty-key set
    instead of scanning all states on each ``any_taint`` query.
    """

    points: set[tuple[int, int]] = field(default_factory=set)
    rows: set[int] = field(default_factory=set)
    cols: set[int] = field(default_factory=set)
    full: bool = False
    _owner: object = field(default=None, repr=False, compare=False)
    _key: tuple[int, int] | None = field(default=None, repr=False, compare=False)

    def bind(self, owner: object, key: tuple[int, int]) -> None:
        """Attach to *owner*; subsequent mutations call ``owner.mark_taint``."""
        self._owner = owner
        self._key = key

    def _notify(self) -> None:
        if self._owner is not None:
            self._owner.mark_taint(self._key, not self.is_clean())

    # -- basic queries -------------------------------------------------------

    def is_clean(self) -> bool:
        return not (self.points or self.rows or self.cols or self.full)

    def correctable(self, max_per_column: int = 1) -> bool:
        """Can the checksum code fix every corrupted element?

        *max_per_column* is the code's per-column capacity: 1 for the
        paper's two-checksum scheme, ``r//2`` for the r-checksum
        generalization (:mod:`repro.core.multierror`).

        - ``full`` or any fully-corrupted *column* → B ≥ capacity errors in
          that column (B > capacity always in practice).
        - Each fully-corrupted row adds one error to *every* column.
        - Points add per-column errors on rows not already counted as
          full rows.
        """
        if self.full or self.cols:
            return False
        if len(self.rows) > max_per_column:
            return False
        per_col: dict[int, int] = {}
        for pr, c in self.points:
            if pr in self.rows:
                continue  # already counted via the full row
            per_col[c] = per_col.get(c, 0) + 1
            if per_col[c] + len(self.rows) > max_per_column:
                return False
        return True

    def clear(self) -> None:
        """Remove all taint (a successful correction)."""
        self.points.clear()
        self.rows.clear()
        self.cols.clear()
        self.full = False
        self._notify()

    # -- construction ----------------------------------------------------------

    def add_point(self, r: int, c: int) -> None:
        self.points.add((r, c))
        self._notify()

    def merge(self, other: "TaintState") -> None:
        """In-place union with *other*."""
        self.full = self.full or other.full
        if self.full:
            self.points.clear()
            self.rows.clear()
            self.cols.clear()
            self._notify()
            return
        self.points |= other.points
        self.rows |= other.rows
        self.cols |= other.cols
        self._notify()

    def copy(self) -> "TaintState":
        return TaintState(
            points=set(self.points),
            rows=set(self.rows),
            cols=set(self.cols),
            full=self.full,
        )

    # -- kernel propagation ------------------------------------------------------
    #
    # For C -= A @ B^T (GEMM; SYRK is the A == B case):
    #   a corrupted A[r, k] pollutes row r of C (every column);
    #   a corrupted B[c, k] pollutes column c of C (every row).

    def propagated_as_left_factor(self) -> "TaintState":
        """Taint contributed to the GEMM/SYRK output by this block as A."""
        if self.full or self.cols:
            # A whole corrupted column of A touches every row of C.
            return TaintState(full=True)
        out = TaintState()
        out.rows = {r for r, _ in self.points} | set(self.rows)
        return out

    def propagated_as_right_factor(self) -> "TaintState":
        """Taint contributed to the GEMM output by this block as B."""
        if self.full or self.cols:
            return TaintState(full=True)
        out = TaintState()
        out.cols = {r for r, _ in self.points} | set(self.rows)
        return out

    def propagated_through_trsm(self) -> "TaintState":
        """Taint of ``X = B · L^{-T}`` contributed by the B operand.

        Forward substitution spreads an error in B[r, c] across columns
        c..B-1 of row r; conservatively: the whole row r.
        """
        if self.full or self.cols:
            return TaintState(full=True)
        out = TaintState()
        out.rows = {r for r, _ in self.points} | set(self.rows)
        return out

    @staticmethod
    def from_corrupt_triangular_factor() -> "TaintState":
        """Output taint when the triangular operand (L) of TRSM, or the
        input of POTF2, is corrupted: the result is garbage everywhere."""
        return TaintState(full=True)
