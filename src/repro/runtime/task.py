"""Tile tasks with declared reads/writes — the unit of the DAG runtime.

A :class:`TileTask` is one kernel invocation (POTF2, a per-tile-column
TRSM, a per-tile SYRK/GEMM trailing update with its checksum update
fused in, a batched verification, or a fault-injection window) together
with an explicit declaration of every tile and checksum strip it reads
and writes.  The dependency DAG is *derived* from those declarations
(:mod:`repro.runtime.dag`), never hand-wired, so a task whose kernel
touches an undeclared tile silently corrupts the schedule — which is
exactly what lint rule RPL009 exists to prevent statically.

Cells name buffers by space and block coordinates: ``("A", i, j)`` is
matrix tile (i, j), ``("C", i, j)`` its checksum strip.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

#: One addressable unit of state: ("A" | "C", block row, block col).
Cell = tuple[str, int, int]

#: Task kinds the runtime executes (metric label values, span kinds).
TASK_KINDS = ("potf2", "trsm", "syrk", "gemm", "verify", "storage_window")


def cells(space: str, keys: Iterable[tuple[int, int]]) -> frozenset[Cell]:
    """The cell set ``{(space, i, j) for (i, j) in keys}``."""
    return frozenset((space, i, j) for i, j in keys)


def tile_cells(*keys: tuple[int, int]) -> frozenset[Cell]:
    """Matrix-tile cells for *keys*."""
    return cells("A", keys)


def chk_cells(*keys: tuple[int, int]) -> frozenset[Cell]:
    """Checksum-strip cells for *keys*."""
    return cells("C", keys)


@dataclass
class TileTask:
    """One schedulable kernel invocation with declared data footprint.

    ``index`` is the task's position in *program order* — the order the
    builder emitted it, which is by construction a valid topological
    order of the derived DAG and is the serial reference schedule the
    bit-identity contract is stated against.
    """

    kind: str
    iteration: int
    tile: tuple[int, int]
    fn: Callable[[], None]
    reads: frozenset[Cell]
    writes: frozenset[Cell]
    index: int = -1
    #: host wall seconds, stamped by the executor
    start_s: float = field(default=0.0, compare=False)
    finish_s: float = field(default=0.0, compare=False)

    @property
    def key(self) -> tuple[str, int, tuple[int, int]]:
        """The task's schedule-independent identity (kind, iteration, tile).

        Fault plans are anchored to this identity, never to wall-clock
        completion order, which is what keeps injection deterministic
        under any worker count.
        """
        return (self.kind, self.iteration, self.tile)

    @property
    def label(self) -> str:
        i, j = self.tile
        return f"{self.kind}[{i},{j}]@it{self.iteration}"
