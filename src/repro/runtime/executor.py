"""Executes a :class:`~repro.runtime.dag.TaskGraph` with lookahead.

Two paths share the same scheduler state:

- ``workers == 1`` runs the tasks in program order on the calling
  thread — no locks, no pool.  This *is* the serial reference: program
  order is a valid topological order, so the parallel path is compared
  bit-for-bit against it.
- ``workers > 1`` runs a small thread pool.  The BLAS kernels release
  the GIL, so per-tile POTF2/TRSM/SYRK/GEMM genuinely overlap.  Ready
  tasks dispatch lowest-program-index-first, throttled by **lookahead**:
  a task of iteration ``t`` may start only while
  ``t − min_incomplete_iteration ≤ lookahead``.  With the default of 1,
  panel ``j+1`` factors while iteration ``j``'s trailing update drains
  (the paper's Opt-3 overlap); 0 degenerates to bulk-synchronous
  iterations.

Because the builder emits tasks iteration-by-iteration, program index
order is iteration-monotone — the lowest-index ready task always has the
lowest ready iteration, so throttling the heap top throttles everything.

A watchdog thread replaces a worker whose heartbeat goes stale
(worker wedged in its *fetch* path, holding no task) so one stuck thread
cannot wedge the factorization; stalls are counted in the run summary.

Failures (``UnrecoverableError`` from a verify task,
``SingularBlockError`` from POTF2) stop dispatch, let in-flight tasks
drain, and re-raise the failure with the lowest program index — the
restart protocol upstream behaves identically under any schedule.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.runtime.dag import TaskGraph
from repro.runtime.task import TileTask
from repro.util.validation import check_positive, require

# -- test hooks ----------------------------------------------------------------
# Module-level so chaos scenarios and property tests reach the executor
# inside a thread-pool service worker without plumbing arguments through.

_stall_hook: dict | None = None
_task_delay_hook: Callable[[TileTask], float] | None = None


@contextmanager
def inject_worker_stall(
    worker: int = 0, seconds: float = 0.5, timeout_s: float = 0.1
) -> Iterator[dict]:
    """Wedge pool worker *worker* (once) in its fetch path for *seconds*.

    The stalled worker holds no task, so nothing needs reissuing — the
    watchdog (armed with *timeout_s* while the hook is active) spawns a
    replacement and the run completes on the remaining threads.  Yields
    the hook record; ``hook["fired"].is_set()`` tells a test the stall
    actually happened.
    """
    global _stall_hook
    prev = _stall_hook
    _stall_hook = {
        "worker": worker,
        "seconds": seconds,
        "timeout_s": timeout_s,
        "fired": threading.Event(),
    }
    try:
        yield _stall_hook
    finally:
        _stall_hook = prev


@contextmanager
def inject_task_delays(delay_of: Callable[[TileTask], float]) -> Iterator[None]:
    """Sleep ``delay_of(task)`` seconds before each task body runs.

    Property tests use this to shuffle completion order adversarially:
    bit-identity must hold no matter which worker finishes first.
    """
    global _task_delay_hook
    prev = _task_delay_hook
    _task_delay_hook = delay_of
    try:
        yield
    finally:
        _task_delay_hook = prev


# -- executor ------------------------------------------------------------------


class DagExecutor:
    """Run one task graph; :meth:`run` returns the runtime summary dict."""

    #: how long a silent heartbeat means "wedged" (overridden by the
    #: stall hook's ``timeout_s`` while that hook is active)
    stall_timeout_s: float

    def __init__(
        self,
        graph: TaskGraph,
        *,
        workers: int = 1,
        lookahead: int = 1,
        stall_timeout_s: float = 5.0,
    ) -> None:
        check_positive("workers", workers)
        require(lookahead >= 0, f"lookahead must be >= 0, got {lookahead}")
        self.graph = graph
        self.workers = workers
        self.lookahead = lookahead
        self.stall_timeout_s = stall_timeout_s
        # scheduler state (guarded by _cond in the threaded path)
        self._deps = list(graph.n_deps)
        self._ready: list[int] = []
        self._completed = 0
        self._failures: list[tuple[int, BaseException]] = []
        self._stop_dispatch = False
        self._in_flight = 0
        self._cond = threading.Condition()
        self._heartbeat: dict[int, float] = {}
        self._replaced: set[int] = set()
        self._threads: list[threading.Thread] = []
        self._next_wid = 0
        # per-iteration completion tracking for the lookahead throttle
        iters = [t.iteration for t in graph.tasks]
        top = max(iters, default=0)
        self._remaining = [0] * (top + 1)
        for it in iters:
            self._remaining[it] += 1
        self._min_iter = 0
        # summary accumulators
        self._task_total: dict[str, int] = {}
        self._task_seconds: dict[str, list[float]] = {}
        self._max_ready_depth = 0
        self._max_lookahead_depth = 0
        self._stalls = 0

    # -- shared bookkeeping ----------------------------------------------------

    def _advance_min_iter(self) -> None:
        while self._min_iter < len(self._remaining) and not self._remaining[self._min_iter]:
            self._min_iter += 1

    def _seed_ready(self) -> None:
        for idx, n in enumerate(self._deps):
            if n == 0:
                heapq.heappush(self._ready, idx)
        self._max_ready_depth = len(self._ready)

    def _dispatchable(self) -> bool:
        """Is the heap top within the lookahead window?  (Iteration-monotone
        program order means the top bounds every other ready task.)"""
        top = self.graph.tasks[self._ready[0]]
        return top.iteration - self._min_iter <= self.lookahead

    def _execute(self, task: TileTask, t0: float) -> None:
        delay_of = _task_delay_hook
        if delay_of is not None:
            pause = delay_of(task)
            if pause > 0:
                time.sleep(pause)
        task.start_s = time.perf_counter() - t0
        task.fn()
        task.finish_s = time.perf_counter() - t0

    def _note_done(self, task: TileTask) -> None:
        self._task_total[task.kind] = self._task_total.get(task.kind, 0) + 1
        self._task_seconds.setdefault(task.kind, []).append(task.finish_s - task.start_s)
        self._completed += 1
        self._remaining[task.iteration] -= 1
        self._advance_min_iter()
        for succ in self.graph.successors[task.index]:
            self._deps[succ] -= 1
            if self._deps[succ] == 0:
                heapq.heappush(self._ready, succ)
        self._max_ready_depth = max(self._max_ready_depth, len(self._ready))

    def summary(self) -> dict:
        """The run's metrics, plain data (pickles across process bounds)."""
        return {
            "workers": self.workers,
            "lookahead": self.lookahead,
            "tasks": len(self.graph),
            "task_total": dict(self._task_total),
            "task_seconds": {k: list(v) for k, v in self._task_seconds.items()},
            "max_ready_depth": self._max_ready_depth,
            "max_lookahead_depth": self._max_lookahead_depth,
            "stalls": self._stalls,
        }

    # -- serial path -----------------------------------------------------------

    def _run_serial(self) -> None:
        t0 = time.perf_counter()
        self._seed_ready()
        while self._ready:
            idx = heapq.heappop(self._ready)
            task = self.graph.tasks[idx]
            self._max_lookahead_depth = max(
                self._max_lookahead_depth, task.iteration - self._min_iter
            )
            self._execute(task, t0)
            self._note_done(task)
        require(
            self._completed == len(self.graph),
            f"serial run completed {self._completed}/{len(self.graph)} tasks",
        )

    # -- threaded path ---------------------------------------------------------

    def _fetch(self, wid: int) -> TileTask | None:
        """Next dispatchable task, or None when the run is over for *wid*."""
        with self._cond:
            while True:
                self._heartbeat[wid] = time.monotonic()
                if self._stop_dispatch or wid in self._replaced:
                    return None
                if self._completed == len(self.graph):
                    return None
                if self._ready and self._dispatchable():
                    idx = heapq.heappop(self._ready)
                    task = self.graph.tasks[idx]
                    self._max_lookahead_depth = max(
                        self._max_lookahead_depth, task.iteration - self._min_iter
                    )
                    self._in_flight += 1
                    return task
                self._cond.wait(timeout=0.02)

    def _maybe_stall(self, wid: int) -> None:
        hook = _stall_hook
        if hook is None or hook["worker"] != wid:
            return
        if hook["fired"].is_set():
            return
        hook["fired"].set()
        # Wedge with no task held and without touching the heartbeat —
        # exactly the failure the watchdog exists to paper over.
        time.sleep(hook["seconds"])

    def _worker(self, wid: int, t0: float) -> None:
        while True:
            self._maybe_stall(wid)
            task = self._fetch(wid)
            if task is None:
                return
            try:
                self._execute(task, t0)
            except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                with self._cond:
                    self._failures.append((task.index, exc))
                    self._stop_dispatch = True
                    self._in_flight -= 1
                    self._cond.notify_all()
                return
            with self._cond:
                self._note_done(task)
                self._in_flight -= 1
                self._cond.notify_all()

    def _spawn(self, t0: float) -> int:
        wid = self._next_wid
        self._next_wid += 1
        self._heartbeat[wid] = time.monotonic()
        thread = threading.Thread(
            target=self._worker, args=(wid, t0), name=f"dag-worker-{wid}", daemon=True
        )
        self._threads.append(thread)
        thread.start()
        return wid

    def _watchdog_pass(self, t0: float, timeout_s: float) -> None:
        now = time.monotonic()
        with self._cond:
            if self._stop_dispatch or self._completed == len(self.graph):
                return
            stale = [
                wid
                for wid, beat in self._heartbeat.items()
                if wid not in self._replaced and now - beat > timeout_s
            ]
            for wid in stale:
                self._replaced.add(wid)
                self._stalls += 1
        for _ in stale:
            self._spawn(t0)

    def _run_threaded(self) -> None:
        t0 = time.perf_counter()
        hook = _stall_hook
        timeout_s = self.stall_timeout_s if hook is None else hook["timeout_s"]
        with self._cond:
            self._seed_ready()
        for _ in range(self.workers):
            self._spawn(t0)
        check_every = max(0.01, timeout_s / 4)
        while True:
            with self._cond:
                if self._completed == len(self.graph):
                    break
                if self._stop_dispatch and self._in_flight == 0:
                    break
                self._cond.wait(timeout=check_every)
            self._watchdog_pass(t0, timeout_s)
        with self._cond:
            self._stop_dispatch = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=max(1.0, timeout_s))
        if self._failures:
            self._failures.sort(key=lambda pair: pair[0])
            raise self._failures[0][1]
        require(
            self._completed == len(self.graph),
            f"threaded run completed {self._completed}/{len(self.graph)} tasks",
        )

    def run(self) -> dict:
        """Execute the graph; returns :meth:`summary`.

        Re-raises the lowest-program-index task failure after in-flight
        tasks drain, so the recovery loop upstream sees one deterministic
        exception whichever worker hit it first.
        """
        if len(self.graph):
            if self.workers == 1:
                self._run_serial()
            else:
                self._run_threaded()
        return self.summary()
