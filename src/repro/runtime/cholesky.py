"""The ABFT'd right-looking Cholesky iteration as a tile-task graph.

One factorization becomes, per iteration ``j``:

- a diagonal verify of ``(j, j)`` (its trailing updates are complete);
- ``POTF2(j, j)`` with the strip update ``chk ← chk · L_jj^{-T}`` fused
  in, then a post-factor diagonal verify;
- a batched panel verify of column ``j``, the per-tile ``TRSM(i, j)``
  tasks (strip update fused), and a post-TRSM panel verify;
- the trailing update: ``SYRK`` on each diagonal tile ``(k, k)`` and
  ``GEMM`` on each ``(i, k)`` with ``j < k < i``, each with its
  checksum-strip update fused so the strips always track the data;
- an end-of-iteration ``storage_window`` task when fault plans target
  that window.

Dependencies are *derived* from the declared cell footprints
(:mod:`repro.runtime.dag`), which is what makes lookahead legal for
free: ``POTF2`` of panel ``j+1`` depends only on tile ``(j+1, j+1)``
receiving its iteration-``j`` SYRK and verify — it becomes ready while
iteration ``j``'s remaining GEMMs are still draining, realizing the
paper's Opt-3 panel/update overlap on real host threads.

Fault injection stays deterministic under any schedule: every
:class:`~repro.faults.injector.FaultPlan` is anchored to one task
identity (kind, iteration, tile) at graph-build time and fired from
inside that task's body, with the victim cell added to the task's
declared writes so the corruption is ordered by the DAG like any other
mutation.
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np

from repro.blas import dense
from repro.blas.dense import trsm_right_lt
from repro.core.correct import VerifyStats, check_tile_strip
from repro.core.multierror import MultiErrorCodec
from repro.faults.injector import FaultInjector, FaultPlan, Hook
from repro.faults.taint import TaintState
from repro.runtime.dag import TaskGraph
from repro.runtime.task import Cell
from repro.util.validation import require

Key = tuple[int, int]


class HostTiles:
    """An (n, n) host array addressed by B×B tile, injector-bindable.

    Exposes the same ``array`` / ``tile_view`` / ``taint_of`` surface as
    :class:`repro.hetero.memory.DeviceBuffer`, so a
    :class:`~repro.faults.injector.FaultInjector` binds to it unchanged.
    """

    def __init__(self, data: np.ndarray, block_size: int) -> None:
        self.data = data
        self.block_size = block_size
        self.nb = data.shape[0] // block_size
        self._taint: dict[Key, TaintState] = {}

    @property
    def array(self) -> np.ndarray:
        return self.data

    def tile(self, key: Key) -> np.ndarray:
        i, j = key
        b = self.block_size
        return self.data[i * b : (i + 1) * b, j * b : (j + 1) * b]

    def tile_view(self, key: Key) -> np.ndarray:
        return self.tile(key)

    def taint_of(self, key: Key) -> TaintState:
        state = self._taint.get(key)
        if state is None:
            state = self._taint[key] = TaintState()
        return state


class HostStrips:
    """Checksum strips: ``r`` rows per tile row, one (nb·r, n) host array."""

    def __init__(self, nb: int, block_size: int, rows_per_tile: int = 2) -> None:
        self.block_size = block_size
        self.nb = nb
        self.rows_per_tile = rows_per_tile
        self.data = np.zeros((nb * rows_per_tile, nb * block_size))
        self._taint: dict[Key, TaintState] = {}

    @property
    def array(self) -> np.ndarray:
        return self.data

    def strip(self, key: Key) -> np.ndarray:
        i, j = key
        r, b = self.rows_per_tile, self.block_size
        return self.data[i * r : (i + 1) * r, j * b : (j + 1) * b]

    def tile_view(self, key: Key) -> np.ndarray:
        return self.strip(key)

    def taint_of(self, key: Key) -> TaintState:
        state = self._taint.get(key)
        if state is None:
            state = self._taint[key] = TaintState()
        return state


# Plan anchoring ---------------------------------------------------------------

_HOOK_KINDS = {
    Hook.AFTER_POTF2: "potf2",
    Hook.AFTER_TRSM: "trsm",
    Hook.AFTER_SYRK: "syrk",
    Hook.AFTER_GEMM: "gemm",
    Hook.STORAGE_WINDOW: "storage_window",
}

Anchor = tuple[str, int, Key]


def _kind_exists(kind: str, j: int, nb: int) -> bool:
    if kind in ("potf2", "storage_window"):
        return True
    if kind in ("trsm", "syrk"):
        return j < nb - 1
    return j < nb - 2  # gemm


def _anchor_iteration(plan: FaultPlan, kind: str, nb: int) -> int | None:
    """The iteration the plan fires at, or None when it never would."""
    if plan.iteration != -1:
        it = plan.iteration
        if not 0 <= it < nb:
            return None
        return it if _kind_exists(kind, it, nb) else None
    # iteration == -1 means "any": the serial loop fires it at the first
    # iteration that reaches the hook, which is the first where the kind
    # has any task at all.
    for j in range(nb):
        if _kind_exists(kind, j, nb):
            return j
    return None


def plan_anchor(plan: FaultPlan, nb: int) -> Anchor | None:
    """The task identity after whose numerics *plan* fires.

    When the victim block is a tile the matching kind writes at that
    iteration, the plan rides that exact task (a computing error lands
    in the output it corrupts); otherwise it rides the last task of the
    kind in program order, falling back to the iteration's
    ``storage_window`` task when the kind has no tasks there at all —
    the same "fire once per (hook, iteration)" semantics the serial
    drivers implement with a single ``fire()`` call.
    """
    kind = _HOOK_KINDS.get(plan.hook)
    if kind is None:  # BEFORE_FACTORIZATION fires eagerly, pre-graph
        return None
    j = _anchor_iteration(plan, kind, nb)
    if j is None:
        if plan.iteration == -1 or not 0 <= plan.iteration < nb:
            return None
        return ("storage_window", plan.iteration, (plan.iteration, plan.iteration))
    i, k = plan.block
    if kind == "potf2":
        return ("potf2", j, (j, j))
    if kind == "storage_window":
        return ("storage_window", j, (j, j))
    if kind == "trsm":
        victim_hit = k == j and j < i < nb
        return ("trsm", j, plan.block if victim_hit else (nb - 1, j))
    if kind == "syrk":
        victim_hit = i == k and j < i < nb
        return ("syrk", j, plan.block if victim_hit else (nb - 1, nb - 1))
    victim_hit = j < k < i < nb
    return ("gemm", j, plan.block if victim_hit else (nb - 1, nb - 2))


def _victim_cell(plan: FaultPlan) -> Cell:
    space = "A" if plan.target == "matrix" else "C"
    return (space, *plan.block)


def anchored_plans(injector: FaultInjector, nb: int) -> dict[Anchor, list[FaultPlan]]:
    """All plans grouped by anchor — over *all* plans, fired or not, so
    restart attempts build the identical graph (firing itself still
    honors the one-shot flags)."""
    anchors: dict[Anchor, list[FaultPlan]] = {}
    for plan in injector.plans:
        anchor = plan_anchor(plan, nb)
        if anchor is not None:
            anchors.setdefault(anchor, []).append(plan)
    return anchors


# Task bodies ------------------------------------------------------------------
# Each factory returns a `_body_*` closure; RPL009 requires raw tile/strip
# accessor calls in this package to live only inside such task bodies.


def _potf2_body(
    tiles: HostTiles, strips: HostStrips, j: int, inj: FaultInjector, fires: list[FaultPlan]
) -> Callable[[], None]:
    def _body_potf2() -> None:
        diag = tiles.tile((j, j))
        dense.potf2(diag, block_index=j)
        inj.fire_plans(fires, j)
        trsm_right_lt(strips.strip((j, j)), diag)

    return _body_potf2


def _trsm_body(
    tiles: HostTiles,
    strips: HostStrips,
    i: int,
    j: int,
    inj: FaultInjector,
    fires: list[FaultPlan],
) -> Callable[[], None]:
    def _body_trsm() -> None:
        diag = tiles.tile((j, j))
        trsm_right_lt(tiles.tile((i, j)), diag)
        inj.fire_plans(fires, j)
        trsm_right_lt(strips.strip((i, j)), diag)

    return _body_trsm


def _syrk_body(
    tiles: HostTiles,
    strips: HostStrips,
    k: int,
    j: int,
    inj: FaultInjector,
    fires: list[FaultPlan],
) -> Callable[[], None]:
    def _body_syrk() -> None:
        lkj = tiles.tile((k, j))
        dense.syrk_update(tiles.tile((k, k)), lkj)
        inj.fire_plans(fires, j)
        s = strips.strip((k, k))
        s -= strips.strip((k, j)) @ lkj.T

    return _body_syrk


def _gemm_body(
    tiles: HostTiles,
    strips: HostStrips,
    i: int,
    k: int,
    j: int,
    inj: FaultInjector,
    fires: list[FaultPlan],
) -> Callable[[], None]:
    def _body_gemm() -> None:
        lkj = tiles.tile((k, j))
        dense.gemm_update(tiles.tile((i, k)), tiles.tile((i, j)), lkj)
        inj.fire_plans(fires, j)
        s = strips.strip((i, k))
        s -= strips.strip((i, j)) @ lkj.T

    return _body_gemm


def _verify_body(
    tiles: HostTiles,
    strips: HostStrips,
    keys: list[Key],
    weights: np.ndarray,
    rtol: float,
    atol: float,
    stats: VerifyStats,
    codec: MultiErrorCodec | None,
) -> Callable[[], None]:
    def _body_verify() -> None:
        stats.batches += 1
        stats.tiles_verified += len(keys)
        t0 = time.perf_counter()
        for key in keys:
            check_tile_strip(
                key,
                tiles.tile(key),
                strips.strip(key),
                weights,
                rtol=rtol,
                atol=atol,
                stats=stats,
                codec=codec,
            )
        stats.check_wall_s += time.perf_counter() - t0

    return _body_verify


def _window_body(
    j: int, inj: FaultInjector, fires: list[FaultPlan]
) -> Callable[[], None]:
    def _body_window() -> None:
        inj.fire_plans(fires, j)

    return _body_window


def _encode_body(
    tiles: HostTiles, strips: HostStrips, weights: np.ndarray
) -> Callable[[], None]:
    def _body_encode() -> None:
        for j in range(tiles.nb):
            for i in range(j, tiles.nb):
                strips.strip((i, j))[:] = weights @ tiles.tile((i, j))

    return _body_encode


def encode_strips(tiles: HostTiles, strips: HostStrips, weights: np.ndarray) -> None:
    """Initial lower-triangle encoding (eager, before the graph runs)."""
    _encode_body(tiles, strips, weights)()


# Graph construction -----------------------------------------------------------


def _rw(keys: list[Key]) -> frozenset[Cell]:
    """The read+write footprint of a verify over *keys*: a correction
    mutates both the tile and its strip, so both spaces are claimed."""
    out: set[Cell] = set()
    for i, j in keys:
        out.add(("A", i, j))
        out.add(("C", i, j))
    return frozenset(out)


def build_cholesky_graph(
    tiles: HostTiles,
    strips: HostStrips,
    weights: np.ndarray,
    injector: FaultInjector,
    *,
    rtol: float,
    atol: float,
    final_sweep: bool = True,
    codec: MultiErrorCodec | None = None,
) -> tuple[TaskGraph, list[VerifyStats]]:
    """The full task graph for one factorization attempt.

    Returns the graph plus one :class:`VerifyStats` slot per verify task
    in program order — each verify accumulates into its own slot, and
    the caller merges them in that fixed order, so statistics (and the
    ``corrected_sites`` list in particular) are bit-identical whichever
    worker finished which verify first.
    """
    nb = tiles.nb
    require(nb >= 1, "need at least one tile")
    graph = TaskGraph()
    anchors = anchored_plans(injector, nb)
    stats_slots: list[VerifyStats] = []

    def _add_verify(iteration: int, anchor_tile: Key, keys: list[Key]) -> None:
        slot = VerifyStats()
        stats_slots.append(slot)
        footprint = _rw(keys)
        graph.add(
            "verify",
            iteration,
            anchor_tile,
            reads=footprint,
            writes=footprint,
            fn=_verify_body(tiles, strips, keys, weights, rtol, atol, slot, codec),
        )

    def _fires_for(kind: str, iteration: int, tile: Key) -> list[FaultPlan]:
        return anchors.pop((kind, iteration, tile), [])

    for j in range(nb):
        diag = [(j, j)]
        panel = [(i, j) for i in range(j + 1, nb)]
        # 1. the diagonal tile's trailing updates are done: verify it.
        _add_verify(j, (j, j), diag)
        # 2. factor it (strip update fused; anchored plans fire between).
        fires = _fires_for("potf2", j, (j, j))
        graph.add(
            "potf2",
            j,
            (j, j),
            reads=_rw(diag),
            writes=_rw(diag) | {_victim_cell(p) for p in fires},
            fn=_potf2_body(tiles, strips, j, injector, fires),
        )
        # 3. verify the freshly factored diagonal before the panel uses it.
        _add_verify(j, (j, j), diag)
        if panel:
            # 4. the panel's trailing updates are done: verify it (batched).
            _add_verify(j, (j + 1, j), panel)
            # 5. per-tile TRSM, strip update fused.
            for i, _ in panel:
                fires = _fires_for("trsm", j, (i, j))
                graph.add(
                    "trsm",
                    j,
                    (i, j),
                    reads=_rw([(j, j), (i, j)]),
                    writes=_rw([(i, j)]) | {_victim_cell(p) for p in fires},
                    fn=_trsm_body(tiles, strips, i, j, injector, fires),
                )
            # 6. verify the panel of L before the trailing update reads it.
            _add_verify(j, (j + 1, j), panel)
        # 7. right-looking trailing update, column-major over (k, i).
        for k in range(j + 1, nb):
            fires = _fires_for("syrk", j, (k, k))
            graph.add(
                "syrk",
                j,
                (k, k),
                reads=_rw([(k, j), (k, k)]),
                writes=_rw([(k, k)]) | {_victim_cell(p) for p in fires},
                fn=_syrk_body(tiles, strips, k, j, injector, fires),
            )
            for i in range(k + 1, nb):
                fires = _fires_for("gemm", j, (i, k))
                graph.add(
                    "gemm",
                    j,
                    (i, k),
                    reads=_rw([(i, j), (k, j), (i, k)]),
                    writes=_rw([(i, k)]) | {_victim_cell(p) for p in fires},
                    fn=_gemm_body(tiles, strips, i, k, j, injector, fires),
                )
        # 8. the storage-error window at the end of the iteration.
        fires = _fires_for("storage_window", j, (j, j))
        if fires:
            victims = frozenset(_victim_cell(p) for p in fires)
            graph.add(
                "storage_window",
                j,
                (j, j),
                reads=victims,
                writes=victims,
                fn=_window_body(j, injector, fires),
            )
    if final_sweep:
        lower = [(i, j) for j in range(nb) for i in range(j, nb)]
        _add_verify(nb, (nb - 1, nb - 1), lower)
    graph.check_program_order()
    return graph, stats_slots


def merge_stats(slots: list[VerifyStats]) -> VerifyStats:
    """Fold per-task stats in program order into one run-level record."""
    total = VerifyStats()
    for slot in slots:
        total.batches += slot.batches
        total.tiles_verified += slot.tiles_verified
        total.data_corrections += slot.data_corrections
        total.checksum_corrections += slot.checksum_corrections
        total.columns_flagged += slot.columns_flagged
        total.corrected_sites.extend(slot.corrected_sites)
        total.check_wall_s += slot.check_wall_s
    return total
