"""Dependency derivation: declared reads/writes → the task DAG.

The builder appends tasks in program order; edges come from the classic
last-writer bookkeeping over cells:

- **RAW** — a reader depends on the cell's last writer;
- **WAW** — a writer depends on the cell's last writer;
- **WAR** — a writer depends on every reader since that last write.

Because every cell's write sequence is therefore totally ordered, and
each read is ordered against the writes around it, *any* topological
execution of the graph computes bit-identical results: a task's inputs
are a pure function of the dataflow, never of the schedule.  Program
order itself is one valid topological order — the serial reference the
parallel executor is compared against.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.runtime.task import Cell, TileTask
from repro.util.validation import require


class TaskGraph:
    """Tasks in program order plus the derived dependency structure."""

    def __init__(self) -> None:
        self.tasks: list[TileTask] = []
        self._last_writer: dict[Cell, int] = {}
        self._readers_since: dict[Cell, set[int]] = {}
        #: successor adjacency and predecessor counts, index-aligned
        self.successors: list[set[int]] = []
        self.n_deps: list[int] = []

    def add(
        self,
        kind: str,
        iteration: int,
        tile: tuple[int, int],
        *,
        reads: Iterable[Cell],
        writes: Iterable[Cell],
        fn: Callable[[], None],
    ) -> TileTask:
        """Append one task; dependencies are derived from *reads*/*writes*."""
        task = TileTask(
            kind=kind,
            iteration=iteration,
            tile=tile,
            fn=fn,
            reads=frozenset(reads),
            writes=frozenset(writes),
            index=len(self.tasks),
        )
        deps: set[int] = set()
        for cell in task.reads:
            writer = self._last_writer.get(cell)
            if writer is not None:
                deps.add(writer)
        for cell in task.writes:
            writer = self._last_writer.get(cell)
            if writer is not None:
                deps.add(writer)
            deps.update(self._readers_since.get(cell, ()))
        deps.discard(task.index)
        for cell in task.reads:
            self._readers_since.setdefault(cell, set()).add(task.index)
        for cell in task.writes:
            self._last_writer[cell] = task.index
            self._readers_since[cell] = set()
        self.tasks.append(task)
        self.successors.append(set())
        self.n_deps.append(len(deps))
        for dep in deps:
            self.successors[dep].add(task.index)
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    def dependencies(self) -> list[set[int]]:
        """Predecessor sets, index-aligned (tests and diagnostics)."""
        preds: list[set[int]] = [set() for _ in self.tasks]
        for src, succ in enumerate(self.successors):
            for dst in succ:
                preds[dst].add(src)
        return preds

    def check_program_order(self) -> None:
        """Assert program order is a topological order (builder invariant)."""
        for src, succ in enumerate(self.successors):
            for dst in succ:
                require(
                    dst > src,
                    f"edge {src}->{dst} violates program order; the builder "
                    "emitted a task before one of its producers",
                )
