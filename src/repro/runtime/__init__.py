"""Dependency-driven tile-DAG runtime for intra-factorization parallelism.

One ABFT'd right-looking Cholesky becomes a graph of tile tasks with
declared reads/writes (:mod:`repro.runtime.task`), dependencies derived
from the declarations (:mod:`repro.runtime.dag`), executed by a
lookahead thread pool (:mod:`repro.runtime.executor`).  The driver entry
point is :func:`repro.runtime.scheme.dag_potrf` — registered with the
service as scheme ``"dag"``.
"""

from repro.runtime.cholesky import (
    HostStrips,
    HostTiles,
    build_cholesky_graph,
    merge_stats,
    plan_anchor,
)
from repro.runtime.dag import TaskGraph
from repro.runtime.executor import DagExecutor, inject_task_delays, inject_worker_stall
from repro.runtime.scheme import DagPotrfResult, dag_potrf
from repro.runtime.task import Cell, TileTask, TASK_KINDS

__all__ = [
    "Cell",
    "DagExecutor",
    "DagPotrfResult",
    "HostStrips",
    "HostTiles",
    "TASK_KINDS",
    "TaskGraph",
    "TileTask",
    "build_cholesky_graph",
    "dag_potrf",
    "inject_task_delays",
    "inject_worker_stall",
    "merge_stats",
    "plan_anchor",
]
