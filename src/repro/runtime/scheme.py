"""The ``dag`` scheme: the ABFT'd factorization on the tile-task runtime.

:func:`dag_potrf` is the runtime's counterpart of the desim drivers'
entry points (same call shape, duck-compatible result), but it executes
on the *host* clock: real BLAS kernels on real threads, makespan = wall
seconds.  It is real-numerics only — there is no simulated machine to
run a shadow factorization on.

The restart protocol mirrors :func:`repro.core.base.run_with_recovery`:
each attempt factors a fresh copy of the pristine matrix, an
unrecoverable attempt banks its wall time and disarms the injector
(one-shot faults), and the caller's array receives the final successful
factor in place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.blas.flops import potrf_flops
from repro.core.config import AbftConfig
from repro.core.correct import VerifyStats
from repro.core.multierror import MultiErrorCodec, vandermonde_weights
from repro.desim.trace import (
    META_CHK_READS,
    META_CHK_WRITES,
    META_ITERATION,
    META_TILE_READS,
    META_TILE_WRITES,
    Span,
    Timeline,
)
from repro.faults.injector import FaultInjector, Hook, no_faults
from repro.hetero.machine import Machine
from repro.runtime.cholesky import (
    HostStrips,
    HostTiles,
    build_cholesky_graph,
    encode_strips,
    merge_stats,
)
from repro.runtime.dag import TaskGraph
from repro.runtime.executor import DagExecutor
from repro.util.exceptions import (
    RestartExhaustedError,
    SingularBlockError,
    UnrecoverableError,
)
from repro.util.validation import check_block_size, check_square, require


@dataclass
class DagPotrfResult:
    """Outcome of a runtime factorization — duck-compatible with
    :class:`repro.core.base.FtPotrfResult` where the service needs it."""

    scheme: str
    machine: str
    n: int
    block_size: int
    makespan: float  # total host wall seconds across all attempts
    restarts: int
    stats: VerifyStats  # of the successful attempt
    timeline: Timeline  # of the successful attempt
    placement: str
    config: AbftConfig
    factor_data: np.ndarray
    runtime: dict  # executor summary of the successful attempt
    attempt_makespans: list[float] = field(default_factory=list)

    @property
    def gflops(self) -> float:
        return potrf_flops(self.n) / self.makespan / 1e9

    @property
    def factor(self) -> np.ndarray:
        """The lower-triangular factor L."""
        return np.tril(self.factor_data)


def _timeline(graph: TaskGraph) -> Timeline:
    """Real spans from the executed graph (host wall clock, tid = index)."""
    preds = graph.dependencies()
    spans: list[Span] = []
    for task in graph.tasks:
        meta = {
            META_ITERATION: task.iteration,
            META_TILE_READS: sorted((i, j) for (s, i, j) in task.reads if s == "A"),
            META_TILE_WRITES: sorted((i, j) for (s, i, j) in task.writes if s == "A"),
            META_CHK_READS: sorted((i, j) for (s, i, j) in task.reads if s == "C"),
            META_CHK_WRITES: sorted((i, j) for (s, i, j) in task.writes if s == "C"),
        }
        spans.append(
            Span(
                tid=task.index,
                name=task.label,
                kind=task.kind,
                resource="host",
                start=task.start_s,
                finish=task.finish_s,
                meta=meta,
                deps=tuple(sorted(preds[task.index])),
            )
        )
    return Timeline(spans)


def dag_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    config: AbftConfig | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
) -> DagPotrfResult:
    """Fault-tolerant Cholesky on the tile-DAG runtime (in place on *a*).

    ``config.dag_workers`` / ``config.lookahead`` pick the schedule; the
    factor, statistics and corrected sites are bit-identical for every
    choice (see :mod:`repro.runtime.dag` for why).
    """
    require(numerics == "real", "the dag scheme runs real numerics only")
    require(a is not None, "real mode requires the matrix a")
    cfg = config if config is not None else AbftConfig()
    inj = injector if injector is not None else no_faults()
    n = check_square("a", a)
    bs = block_size if block_size is not None else machine.default_block_size
    check_block_size(n, bs)
    pristine = a.copy()
    weights = vandermonde_weights(bs, cfg.n_checksums)
    codec = (
        MultiErrorCodec(bs, n_checksums=cfg.n_checksums, rtol=cfg.rtol, atol=cfg.atol)
        if cfg.n_checksums > 2
        else None
    )

    total = 0.0
    attempt_times: list[float] = []
    restarts = 0
    for _attempt in range(cfg.max_restarts + 1):
        work = pristine.copy()
        tiles = HostTiles(work, bs)
        strips = HostStrips(tiles.nb, bs, rows_per_tile=cfg.n_checksums)
        inj.bind("matrix", tiles)
        inj.bind("checksum", strips)
        t_start = time.perf_counter()
        encode_strips(tiles, strips, weights)
        inj.fire(Hook.BEFORE_FACTORIZATION, iteration=-1)
        graph, slots = build_cholesky_graph(
            tiles,
            strips,
            weights,
            inj,
            rtol=cfg.rtol,
            atol=cfg.atol,
            final_sweep=cfg.final_sweep,
            codec=codec,
        )
        executor = DagExecutor(graph, workers=cfg.dag_workers, lookahead=cfg.lookahead)
        try:
            runtime = executor.run()
        except (UnrecoverableError, SingularBlockError):
            wall = time.perf_counter() - t_start
            total += wall
            attempt_times.append(wall)
            restarts += 1
            # The injected fault was a one-shot event; do not re-inject.
            inj.disarm()
            continue
        wall = time.perf_counter() - t_start
        total += wall
        attempt_times.append(wall)
        a[:] = work
        return DagPotrfResult(
            scheme="dag",
            machine=machine.name,
            n=n,
            block_size=bs,
            makespan=total,
            restarts=restarts,
            stats=merge_stats(slots),
            timeline=_timeline(graph),
            placement="host",
            config=cfg,
            factor_data=work,
            runtime=runtime,
            attempt_makespans=attempt_times,
        )
    raise RestartExhaustedError(
        f"dag: still unrecoverable after {cfg.max_restarts} restart(s)"
    )
