"""Execute a forward recovery: repair the salvage, resume, re-gate.

This is the blocking body of the service's "erasure-recover" ladder
rung.  It runs parent-side (the crashed worker's pool slot has already
been respawned; a resume is cheap enough not to justify another
round-trip), and produces a normal
:class:`~repro.service.policy.AttemptOutcome` so the residual gate,
metrics and journaling downstream are untouched.

When the salvage carried no erasures (a clean snapshot from a crashed
worker) the resumed factor is **bit-identical** to an uninterrupted run:
the drivers replay the same deterministic kernels from the same
iteration-boundary bytes.  Erasure-repaired runs agree to the solve's
rounding (~1 ulp per reconstructed element) and are still held to the
service's end-to-end residual tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.core import AbftConfig
from repro.hetero.machine import Machine
from repro.magma.host import factorization_residual
from repro.recovery.salvage import Salvage, repair_salvage
from repro.service.job import Job
from repro.service.policy import _SCHEMES, RESUMABLE_SCHEMES, AttemptOutcome, job_matrix
from repro.util.exceptions import SalvageError
from repro.util.validation import require


def execute_resume(job: Job, machine: Machine, salvage: Salvage) -> AttemptOutcome:
    """Repair *salvage* in place, resume *job*'s scheme, gate the result.

    Raises :class:`SalvageError` (undecodable loss pattern, failed
    re-verification) or the scheme's own exceptions; the service answers
    either by falling back to the ordinary retry ladder.
    """
    require(job.numerics == "real", "forward recovery needs real numerics")
    require(
        job.scheme in RESUMABLE_SCHEMES,
        f"scheme {job.scheme!r} does not support mid-run resume",
    )
    if (salvage.n, salvage.block_size) != (job.n, job.block_size):
        raise SalvageError("snapshot geometry does not match the job")
    pristine = job_matrix(job)
    stats = repair_salvage(salvage, pristine)
    if job.injector is not None:
        job.injector.disarm()  # whatever fired is already in the salvage
    work = salvage.matrix  # repaired in place by repair_salvage
    config = AbftConfig(verify_interval=job.verify_interval, dag_workers=job.intra_workers)
    potrf = _SCHEMES[job.scheme]
    res = potrf(
        machine,
        a=work,
        block_size=job.block_size,
        config=config,
        injector=job.injector,
        start_iteration=salvage.resume_iteration,
    )
    residual = factorization_residual(pristine, res.factor)
    corrected = res.stats.data_corrections + res.stats.checksum_corrections
    return AttemptOutcome(
        sim_makespan=res.makespan,
        corrected_errors=corrected + stats.corrected_errors,
        restarts=res.restarts,
        residual=residual,
        timeline=res.timeline,
        corrected_sites=list(res.stats.corrected_sites) + list(stats.corrected_sites),
        stats=res.stats,
        factor=np.array(res.factor),
        extras={
            "resumed_from_iteration": salvage.resume_iteration,
            "total_iterations": salvage.nb,
            "erasure_tiles": stats.erased_tiles,
            "erasure_elements": stats.erased_elements,
            "reencoded_tiles": stats.reencoded_tiles,
        },
        runtime=getattr(res, "runtime", None),
    )
