"""Erasure-coded forward recovery: turn system faults into decodable erasures.

The checksum redundancy the ABFT schemes maintain for *soft* errors also
protects against *system* faults — a crashed pool worker, a truncated or
scribbled-on shared-memory segment.  This package closes that loop:

- :mod:`repro.recovery.snapshot` — a double-buffered, CRC-stamped
  iteration-boundary snapshot the worker publishes into shared memory as
  the factorization progresses (seqlock-style: payload, then row CRCs,
  then the epoch word last);
- :mod:`repro.recovery.salvage` — parent-side classification of what
  survived: CRC-failing rows become *known-location* erasures, repaired
  per tile by the Vandermonde erasure solve
  (:meth:`~repro.core.multierror.MultiErrorCodec.correct_mixed`);
- :mod:`repro.recovery.decision` — the forward-vs-backward cost model
  (reconstruct + resume vs. restart from scratch), following the
  PCG forward/backward-recovery analysis;
- :mod:`repro.recovery.resume` — re-verify the salvaged state and resume
  the scheme driver from the snapshot's iteration boundary
  (``start_iteration``), bit-identical to an uninterrupted run when no
  rows were lost.

The service's retry ladder consults this package whenever an executor
failure carries salvaged state, inserting an "erasure-recover" rung ahead
of backoff-retry and checkpoint fallback.
"""

from repro.recovery.decision import RecoveryDecision, choose_recovery
from repro.recovery.resume import execute_resume
from repro.recovery.salvage import Salvage, repair_salvage
from repro.recovery.snapshot import (
    SnapshotLayout,
    SnapshotWriter,
    read_snapshot,
    zero_epochs,
)

__all__ = [
    "RecoveryDecision",
    "Salvage",
    "SnapshotLayout",
    "SnapshotWriter",
    "choose_recovery",
    "execute_resume",
    "read_snapshot",
    "repair_salvage",
    "zero_epochs",
]
