"""Forward-vs-backward recovery: the cost model behind the ladder rung.

Following the forward/backward-recovery analysis of the PCG paper,
recovering *forward* (reconstruct the erased rows from checksum
redundancy, re-verify, resume at the snapshot's iteration) is compared
against recovering *backward* (throw the attempt away and restart from
the beginning — the existing retry rung):

``forward  ≈ T_potrf · remaining_flops/total_flops + T_repair``
``backward ≈ T_potrf``

with ``T_potrf`` from :meth:`~repro.hetero.costmodel.CostModel.
potrf_seconds` and the left-looking per-iteration flop profile deciding
how much of the factorization the snapshot already banked.  Forward is
chosen only when the salvage is decodable at all (scheme resumable,
erasure pattern within the ``m``-per-block-row capacity) *and* cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blas import flops as fl
from repro.core.multierror import recalc_flops
from repro.hetero.machine import Machine
from repro.recovery.salvage import Salvage
from repro.service.job import Job
from repro.service.policy import RESUMABLE_SCHEMES
from repro.util.validation import require


@dataclass(frozen=True)
class RecoveryDecision:
    """Outcome of one forward-vs-backward deliberation."""

    forward: bool
    reason: str
    forward_cost_s: float
    backward_cost_s: float
    #: fraction of the factorization's flops the snapshot already holds
    recovered_fraction: float = 0.0


def iteration_flops(j: int, nb: int, block_size: int) -> int:
    """Left-looking iteration *j*'s flops (SYRK + GEMM + POTF2 + TRSM)."""
    b = block_size
    total = fl.potrf_flops(b)
    if j > 0:
        total += (nb - j) * fl.gemm_flops(b, b, j * b)  # SYRK row + GEMM panel
    if j + 1 < nb:
        total += (nb - j - 1) * fl.trsm_flops(b, b)
    return total


def completed_fraction(start_iteration: int, nb: int, block_size: int) -> float:
    """Fraction of total factorization flops in iterations < *start_iteration*."""
    require(0 <= start_iteration <= nb, "start_iteration out of range")
    per = [iteration_flops(j, nb, block_size) for j in range(nb)]
    total = sum(per)
    if total == 0:
        return 1.0
    return sum(per[:start_iteration]) / total


def choose_recovery(job: Job, machine: Machine, salvage: Salvage | None) -> RecoveryDecision:
    """Decide whether to decode forward from *salvage* or restart."""
    if salvage is None:
        return RecoveryDecision(False, "no salvageable snapshot", 0.0, 0.0)
    if job.numerics != "real":
        return RecoveryDecision(False, "shadow attempts carry no bytes to salvage", 0.0, 0.0)
    if job.scheme not in RESUMABLE_SCHEMES:
        return RecoveryDecision(
            False, f"scheme {job.scheme!r} does not support mid-run resume", 0.0, 0.0
        )
    if (salvage.n, salvage.block_size) != (job.n, job.block_size):
        return RecoveryDecision(False, "snapshot geometry does not match the job", 0.0, 0.0)
    ok, why = salvage.feasibility()
    cost = machine.context(numerics="shadow").cost
    full = cost.potrf_seconds(job.n, job.block_size, scheme=job.scheme)
    if not ok:
        return RecoveryDecision(False, why, full, full)
    nb = salvage.nb
    done = completed_fraction(salvage.resume_iteration, nb, job.block_size)
    # Repair = one strip recalculation per lower-triangle tile (the salvage
    # verification sweep) plus the per-erasure Vandermonde solves; both run
    # at BLAS-3-ish rates, so bill them at the sustained GEMM rate.
    n_lower = nb * (nb + 1) // 2
    erased_tiles = sum(
        i + 1 for i in salvage.erasures()
    )  # every tile of an affected block row is re-solved
    repair_flops = n_lower * recalc_flops(job.block_size, salvage.n_checksums)
    repair_flops += erased_tiles * 2 * salvage.n_checksums**2 * job.block_size
    repair_s = repair_flops / (cost.gpu_sustained_gflops("gemm") * 1e9)
    forward_cost = full * (1.0 - done) + repair_s
    backward_cost = full
    if forward_cost < backward_cost:
        return RecoveryDecision(
            True,
            f"resume at iteration {salvage.resume_iteration}/{nb} "
            f"({done:.0%} of the work already banked)",
            forward_cost,
            backward_cost,
            recovered_fraction=done,
        )
    return RecoveryDecision(
        False,
        "snapshot too young: reconstruct + resume costs no less than a restart",
        forward_cost,
        backward_cost,
        recovered_fraction=done,
    )
