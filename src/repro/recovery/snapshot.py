"""Iteration-boundary snapshots over shared memory (seqlock + row CRCs).

The worker publishes a snapshot after each outer iteration's storage
window closes: the full matrix (columns ``0..j`` final L, the rest still
the original A), the maintained checksum strips, one CRC32 per row of
each, and an 8-word header.  Two slots alternate so a crash mid-write
tears at most the slot being written — the previous epoch survives
intact in the other slot.

Write ordering is the seqlock discipline: payload first, row CRCs next,
header fields, and the **epoch word last**.  The parent zeroes both
epoch words before every dispatch (:func:`zero_epochs`) because the
arena's warm free-list reuses segments byte-for-byte — a stale epoch
from a previous job must never validate.

The reader (:func:`read_snapshot`) only runs once the worker is dead or
the attempt has been settled, so there is no live concurrency; the CRCs
exist to *localize* damage, not to synchronize.  Rows whose CRC does not
match are reported as known-location erasures for
:mod:`repro.recovery.salvage` to reconstruct.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.config import AbftConfig
from repro.recovery.salvage import Salvage
from repro.util.validation import check_block_size, check_positive, require

#: Header words: epoch, iteration, n, block_size, n_checksums, plus spares.
HEADER_LEN = 8


class SnapshotLayout:
    """Float64 offsets of one snapshot slot (two slots per segment)."""

    def __init__(self, n: int, block_size: int, n_checksums: int | None = None) -> None:
        check_positive("n", n)
        nb = check_block_size(n, block_size)
        if n_checksums is None:
            n_checksums = AbftConfig().n_checksums
        self.n = n
        self.block_size = block_size
        self.n_checksums = n_checksums
        self.nb = nb
        self.chk_rows = n_checksums * nb
        self.mat_crc_off = HEADER_LEN
        self.chk_crc_off = self.mat_crc_off + n
        self.mat_off = self.chk_crc_off + self.chk_rows
        self.chk_off = self.mat_off + n * n
        self.slot_len = self.chk_off + self.chk_rows * n

    @property
    def shape(self) -> tuple[int, int]:
        """The (slots, floats-per-slot) geometry an arena lease needs."""
        return (2, self.slot_len)

    def matrix_view(self, slot: np.ndarray) -> np.ndarray:
        return slot[self.mat_off : self.mat_off + self.n * self.n].reshape(self.n, self.n)

    def chk_view(self, slot: np.ndarray) -> np.ndarray:
        return slot[self.chk_off : self.chk_off + self.chk_rows * self.n].reshape(
            self.chk_rows, self.n
        )


def row_crcs(array: np.ndarray) -> np.ndarray:
    """One CRC32 per row, as exactly representable float64 values."""
    out = np.empty(array.shape[0], dtype=np.float64)
    for r in range(array.shape[0]):
        out[r] = float(zlib.crc32(np.ascontiguousarray(array[r])))
    return out


def zero_epochs(buf: np.ndarray) -> None:
    """Invalidate both slots before a dispatch (stale-reuse guard)."""
    buf[0, 0] = 0.0
    buf[1, 0] = 0.0


class SnapshotWriter:
    """Publishes iteration-boundary state into a leased snapshot segment.

    The epoch counter is the writer's own monotone sequence (not the
    iteration number): an in-scheme restart replays iterations from the
    resume point, and the freshest *publish* must still win the
    two-slot race regardless.
    """

    def __init__(self, buf: np.ndarray, layout: SnapshotLayout) -> None:
        require(buf.shape == layout.shape, "snapshot buffer/layout mismatch")
        self.buf = buf
        self.layout = layout
        self._epoch = 0

    def publish(self, iteration: int, matrix: np.ndarray, chk: np.ndarray) -> None:
        lay = self.layout
        require(matrix.shape == (lay.n, lay.n), "snapshot matrix shape mismatch")
        require(chk.shape == (lay.chk_rows, lay.n), "snapshot strip shape mismatch")
        self._epoch += 1
        slot = self.buf[self._epoch % 2]
        slot[0] = 0.0  # invalidate while this slot is torn
        lay.matrix_view(slot)[:] = matrix
        lay.chk_view(slot)[:] = chk
        slot[lay.mat_crc_off : lay.mat_crc_off + lay.n] = row_crcs(matrix)
        slot[lay.chk_crc_off : lay.chk_crc_off + lay.chk_rows] = row_crcs(chk)
        slot[1] = float(iteration)
        slot[2] = float(lay.n)
        slot[3] = float(lay.block_size)
        slot[4] = float(lay.n_checksums)
        slot[5:HEADER_LEN] = 0.0
        slot[0] = float(self._epoch)  # epoch last: slot is now claimable


def _read_slot(slot: np.ndarray, lay: SnapshotLayout) -> Salvage | None:
    """Decode one slot, or ``None`` when its header cannot be trusted."""
    header = slot[:HEADER_LEN]
    if not np.isfinite(header).all():
        return None
    epoch = int(header[0])
    iteration = int(header[1])
    if epoch < 1 or not 0 <= iteration < lay.nb:
        return None
    if (int(header[2]), int(header[3]), int(header[4])) != (
        lay.n,
        lay.block_size,
        lay.n_checksums,
    ):
        return None
    matrix = np.array(lay.matrix_view(slot))
    chk = np.array(lay.chk_view(slot))
    want_mat = slot[lay.mat_crc_off : lay.mat_crc_off + lay.n]
    want_chk = slot[lay.chk_crc_off : lay.chk_crc_off + lay.chk_rows]
    bad_matrix = tuple(int(r) for r in np.nonzero(row_crcs(matrix) != want_mat)[0])
    bad_chk = tuple(int(r) for r in np.nonzero(row_crcs(chk) != want_chk)[0])
    return Salvage(
        iteration=iteration,
        n=lay.n,
        block_size=lay.block_size,
        n_checksums=lay.n_checksums,
        matrix=matrix,
        chk=chk,
        bad_matrix_rows=bad_matrix,
        bad_chk_rows=bad_chk,
        epoch=epoch,
    )


def read_snapshot(buf: np.ndarray, layout: SnapshotLayout) -> Salvage | None:
    """Salvage the freshest decodable snapshot, or ``None`` if none exists.

    Slots are tried newest-epoch first; a slot torn by a mid-write crash
    (header invalid) falls back to the other.  The returned
    :class:`~repro.recovery.salvage.Salvage` owns copies of the payload —
    callers may end the arena lease immediately after.
    """
    order = sorted(range(2), key=lambda s: buf[s, 0], reverse=True)
    for s in order:
        got = _read_slot(buf[s], layout)
        if got is not None:
            return got
    return None
