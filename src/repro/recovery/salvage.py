"""Classify salvaged state into erasures and repair it via the checksum code.

A salvage is the freshest decodable snapshot of a failed attempt.  Damage
shows up in two independent ways:

- **CRC-failing rows** — transport/storage loss with *known* location.
  Each bad matrix row maps to one erased row in every lower-triangle tile
  of its block row; the strict upper triangle of the row is restored from
  the job's deterministic input (left-looking Cholesky never writes it).
- **Checksum-detectable errors** — corruption that happened *before* the
  CRC stamp (an injected storage fault inside the vulnerability window
  lands in the snapshot with a valid CRC).  Tile-level verification
  against the maintained strips finds and corrects these.

Both decode through one call per tile:
:meth:`~repro.core.multierror.MultiErrorCodec.correct_mixed` solves the
known-row erasures and locates up to ``⌊(m+1−k)/2⌋`` unknown errors on
top.  Anything beyond capacity raises — the caller escalates to a full
restart; a silently wrong factor is never produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.multierror import MultiErrorCodec
from repro.util.exceptions import SalvageError, UnrecoverableError
from repro.util.validation import require

#: Salvage-time verification tolerances: looser than the in-run verifier's
#: (rtol 1e-9) because the maintained strips have drifted through a full
#: prefix of updates, but far below the service's 1e-8 residual gate —
#: corruption that hides under this tolerance also passes the gate.
SALVAGE_RTOL = 1e-8
SALVAGE_ATOL = 1e-10


@dataclass
class Salvage:
    """Everything recovered from one attempt's snapshot segment.

    ``matrix``/``chk`` are parent-owned copies (the arena lease may end
    as soon as this object exists).  ``bad_*_rows`` are global row
    indices whose CRC failed — known-location erasures.
    """

    iteration: int  #: last fully completed outer iteration
    n: int
    block_size: int
    n_checksums: int
    matrix: np.ndarray
    chk: np.ndarray
    bad_matrix_rows: tuple[int, ...]
    bad_chk_rows: tuple[int, ...]
    epoch: int

    @property
    def resume_iteration(self) -> int:
        """First iteration a resumed run must execute."""
        return self.iteration + 1

    @property
    def nb(self) -> int:
        return self.n // self.block_size

    def erasures(self) -> dict[int, list[int]]:
        """Erased in-tile rows per block row (sorted, deduplicated)."""
        out: dict[int, set[int]] = {}
        for r in self.bad_matrix_rows:
            out.setdefault(r // self.block_size, set()).add(r % self.block_size)
        return {i: sorted(rows) for i, rows in out.items()}

    def chk_bad_block_rows(self) -> set[int]:
        """Block rows whose strip band lost at least one row."""
        return {r // self.n_checksums for r in self.bad_chk_rows}

    def feasibility(self) -> tuple[bool, str]:
        """Can the erasure pattern be decoded forward?  ``(ok, reason)``.

        Capacity is per block row: up to ``m = n_checksums − 1`` erased
        rows, and the block row's own strip band must be intact (a lost
        strip row elsewhere is harmless — strips are re-derivable from
        verified data).
        """
        m = self.n_checksums - 1
        strip_damaged = self.chk_bad_block_rows()
        for i, rows in self.erasures().items():
            if len(rows) > m:
                return (
                    False,
                    f"block row {i}: {len(rows)} erased rows exceed the "
                    f"{m}-erasure capacity of {self.n_checksums} checksums",
                )
            if i in strip_damaged:
                return (
                    False,
                    f"block row {i}: erased data rows and erased strip rows "
                    "together leave nothing to decode from",
                )
        return True, "decodable"


@dataclass
class RepairStats:
    """What one salvage repair did."""

    erased_tiles: int = 0  #: tiles reconstructed from known-row erasures
    erased_elements: int = 0  #: elements the erasure solve changed
    corrected_errors: int = 0  #: unknown-location errors the decode fixed
    reencoded_tiles: int = 0  #: strips rebuilt after strip-row loss
    corrected_sites: list = field(default_factory=list)


def repair_salvage(
    salvage: Salvage,
    pristine: np.ndarray,
    rtol: float = SALVAGE_RTOL,
    atol: float = SALVAGE_ATOL,
) -> RepairStats:
    """Reconstruct erased rows and verify every tile, in place.

    *pristine* is the job's deterministic input matrix: the strict upper
    triangle of an erased row is restored from it byte-for-byte (the
    left-looking drivers never write above the diagonal), while the
    lower-triangle span is zeroed and solved per tile from the strips.

    Raises :class:`SalvageError` when the loss pattern is undecodable and
    on any tile whose syndromes cannot be explained within capacity —
    escalation to restart, never a guess.
    """
    ok, reason = salvage.feasibility()
    if not ok:
        raise SalvageError(reason)
    n, B, r = salvage.n, salvage.block_size, salvage.n_checksums
    require(pristine.shape == (n, n), "pristine input shape mismatch")
    codec = MultiErrorCodec(B, r, rtol=rtol, atol=atol)
    stats = RepairStats()
    erasures = salvage.erasures()
    matrix, chk = salvage.matrix, salvage.chk

    for i, rows in erasures.items():
        for local in rows:
            g = i * B + local
            matrix[g, (i + 1) * B :] = pristine[g, (i + 1) * B :]
            matrix[g, : (i + 1) * B] = 0.0

    for i in salvage.chk_bad_block_rows():
        # Strip band lost, data intact (feasibility guarantees the
        # disjunction): rebuild the whole band from the data it encodes.
        for c in range(i + 1):
            tile = matrix[i * B : (i + 1) * B, c * B : (c + 1) * B]
            chk[r * i : r * (i + 1), c * B : (c + 1) * B] = codec.encode(tile)
            stats.reencoded_tiles += 1

    reencoded = salvage.chk_bad_block_rows()
    for i in range(salvage.nb):
        rows = erasures.get(i, [])
        for c in range(i + 1):
            if i in reencoded and not rows:
                continue  # strip just rebuilt from this very data
            tile = matrix[i * B : (i + 1) * B, c * B : (c + 1) * B]
            strip = chk[r * i : r * (i + 1), c * B : (c + 1) * B]
            try:
                changed, corrections = codec.correct_mixed(tile, strip, rows)
            except UnrecoverableError as exc:
                raise SalvageError(
                    f"tile ({i}, {c}): salvage verification beyond capacity: {exc}"
                ) from exc
            if rows:
                stats.erased_tiles += 1
                stats.erased_elements += changed
            stats.corrected_errors += len(corrections)
            stats.corrected_sites.extend(
                ((i, c), corr.column, corr.rows) for corr in corrections
            )
    return stats
