"""The Machine facade: a named heterogeneous node that spawns run contexts."""

from __future__ import annotations

from repro.hetero.context import ExecutionContext
from repro.hetero.spec import PRESETS, MachineSpec
from repro.util.validation import require


class Machine:
    """One heterogeneous node (CPU sockets + GPU + PCIe link).

    A machine is stateless between runs; every factorization gets a fresh
    :class:`ExecutionContext` via :meth:`context`, so restarted runs (the
    ABFT recovery path) naturally pay the full cost again.
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    @classmethod
    def preset(cls, name: str) -> "Machine":
        """Construct one of the paper's testbeds: ``tardis``/``bulldozer64``."""
        require(name in PRESETS, f"unknown machine preset {name!r}; have {sorted(PRESETS)}")
        return cls(PRESETS[name])

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def default_block_size(self) -> int:
        """MAGMA's block size choice for this GPU generation."""
        return self.spec.default_block_size

    def context(self, numerics: str = "real") -> ExecutionContext:
        """A fresh execution context for one factorization run."""
        return ExecutionContext(self.spec, numerics=numerics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.spec.name!r}: {self.spec.gpu.name} + {self.spec.cpu.name})"
