"""CUDA-like streams and events.

A :class:`Stream` is an in-order queue: each task launched into it depends
on the previous one.  A :class:`GpuEvent` is a zero-cost marker recorded
into a stream; other streams (or the host) wait on it to build cross-stream
dependencies — exactly the CUDA ``cudaEventRecord`` /
``cudaStreamWaitEvent`` pattern the paper's implementation uses for its
concurrent checksum kernels and the CPU/GPU handoff around POTF2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.desim.task import Task


@dataclass
class Stream:
    """An in-order launch queue (GPU stream or the host 'stream')."""

    name: str
    last: Task | None = field(default=None, repr=False)

    def chain(self, task: Task) -> Task:
        """Make *task* the stream's new tail (ordered after the old tail)."""
        if self.last is not None:
            task.after(self.last)
        self.last = task
        return task


@dataclass(frozen=True)
class GpuEvent:
    """A recorded point in a stream that others can wait on."""

    marker: Task
