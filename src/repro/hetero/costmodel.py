"""Roofline-style kernel cost model.

Every operation the drivers issue is priced as a ``KernelCost`` holding:

``duration``
    seconds the kernel takes when it runs alone on its engine, and
``util``
    the fraction of that engine's capacity it occupies while running
    (its GPS demand).  ``duration · util`` is the resource-seconds of real
    work, which is conserved under any co-scheduling — so concurrency can
    hide *under-utilization*, never erase work.  That single invariant is
    what makes Optimizations 1 and 2 behave like the paper's measurements.

Pricing rules:

- BLAS-3 GPU kernels (GEMM/SYRK/TRSM): compute-bound.  Solo rate is
  ``eff(kind) · peak`` and utilization equals ``eff(kind)`` — a kernel that
  reaches 58% of peak is, equivalently, using 58% of the device.
- Checksum-updating kernels (2×m strips): same shape of rule but with the
  much lower "thin kernel" efficiencies, which is why running them in the
  main stream (pre-Opt-2) is expensive and overlapping them nearly free.
- BLAS-2 checksum recalculation (GEMV): bandwidth-bound.  Solo it reaches
  ``gemv_bandwidth_fraction`` of memory bandwidth; utilization is that same
  fraction, leaving most of the device idle — headroom that Optimization 1
  reclaims by co-scheduling many of them.
- Host kernels (POTF2, optional checksum updating): compute-bound against
  the aggregate CPU peak.
- Transfers: latency + bytes/bandwidth on the link resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blas import flops as fl
from repro.hetero.spec import CpuSpec, GpuSpec, LinkSpec
from repro.util.exceptions import ValidationError
from repro.util.validation import check_positive

_DOUBLE = 8  # bytes per float64


@dataclass(frozen=True)
class KernelCost:
    """Solo duration and GPS utilization of one kernel occurrence."""

    duration: float
    util: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValidationError("negative duration")
        if not 0.0 < self.util <= 1.0:
            raise ValidationError(f"util {self.util} outside (0, 1]")


class CostModel:
    """Prices kernels, host calls and transfers for one machine."""

    def __init__(self, gpu: GpuSpec, cpu: CpuSpec, link: LinkSpec) -> None:
        self.gpu = gpu
        self.cpu = cpu
        self.link = link

    # -- GPU compute kernels -------------------------------------------------

    def gpu_blas3(
        self, kind: str, flop_count: int, inner_k: int | None = None
    ) -> KernelCost:
        """A compute-bound BLAS-3 kernel of *flop_count* flops.

        *inner_k* is the contraction dimension; efficiency ramps with it as
        ``eff · k/(k + k_half)`` — skinny updates (small k) run far below a
        square GEMM's rate, the classical GPU BLAS-3 ramp.
        """
        check_positive("flop_count", flop_count)
        eff = self.gpu.eff(kind)
        if inner_k is not None:
            check_positive("inner_k", inner_k)
            eff = eff * inner_k / (inner_k + self.gpu.gemm_k_half)
        duration = (
            self.gpu.kernel_launch_overhead_s
            + flop_count / (eff * self.gpu.peak_gflops * 1e9)
        )
        return KernelCost(duration=duration, util=eff)

    def gemm(self, m: int, n: int, k: int, kind: str = "gemm") -> KernelCost:
        return self.gpu_blas3(kind, fl.gemm_flops(m, n, k), inner_k=k)

    def syrk(self, n: int, k: int, kind: str = "syrk") -> KernelCost:
        return self.gpu_blas3(kind, fl.syrk_flops(n, k), inner_k=k)

    def trsm(self, m: int, n: int, kind: str = "trsm") -> KernelCost:
        # the triangular solve's contraction is the tile order n, already
        # reflected in the kind's calibrated efficiency
        return self.gpu_blas3(kind, fl.trsm_flops(m, n))

    def gemv_recalc(self, rows: int, cols: int, n_vectors: int = 2) -> KernelCost:
        """Checksum recalculation of one block: *n_vectors* fused GEMVs.

        Bandwidth-bound: the block is streamed from device memory once per
        fused kernel.  Solo it reaches only ``gemv_bandwidth_fraction`` of
        the bus, so its utilization is that fraction — the headroom that
        CUDA concurrent kernel execution (Optimization 1) exploits.
        """
        check_positive("rows", rows)
        check_positive("cols", cols)
        nbytes = rows * cols * _DOUBLE  # one streaming pass, vectors fused
        frac = self.gpu.gemv_bandwidth_fraction
        duration = (
            self.gpu.kernel_launch_overhead_s
            + nbytes / (frac * self.gpu.mem_bandwidth_gbs * 1e9)
        )
        return KernelCost(duration=duration, util=self.gpu.thin_kernel_util)

    #: Arithmetic intensity of the 2-row checksum-update GEMMs (flops/byte):
    #: a (2×k)·(k×B) product streams ≈ 8·k·B bytes for 4·k·B flops.
    _CHK_UPDATE_AI = 0.5
    #: Fraction of memory bandwidth those thin kernels reach running alone.
    _CHK_UPDATE_BW_FRACTION = 0.6

    def chk_update_gpu(self, flop_count: int, kind: str = "chk_update_gemm") -> KernelCost:
        """A checksum-updating kernel on the GPU.

        These are 2-row GEMM/TRSM strips — memory-bound, not compute-bound
        (arithmetic intensity ≈ 0.5 flop/byte), which is why leaving them in
        the main stream (the pre-Optimization-2 baseline) costs far more
        than their flop count suggests, and why a separate stream or the
        idle CPU hides them almost completely.
        """
        check_positive("flop_count", flop_count)
        nbytes = flop_count / self._CHK_UPDATE_AI
        rate = self._CHK_UPDATE_BW_FRACTION * self.gpu.mem_bandwidth_gbs * 1e9
        duration = self.gpu.kernel_launch_overhead_s + nbytes / rate
        return KernelCost(duration=duration, util=self.gpu.thin_kernel_util)

    # -- CPU (host) work -------------------------------------------------------

    def cpu_potf2(self, b: int) -> KernelCost:
        """Unblocked Cholesky of a B×B tile on the host (LAPACK dpotf2)."""
        rate = self.cpu.eff("potf2") * self.cpu.peak_gflops * 1e9
        return KernelCost(duration=fl.potf2_flops(b) / rate, util=1.0)

    def cpu_chk_update(self, flop_count: int) -> KernelCost:
        """Checksum updating executed on the (otherwise idle) host."""
        check_positive("flop_count", flop_count)
        rate = self.cpu.eff("chk_update") * self.cpu.peak_gflops * 1e9
        return KernelCost(duration=flop_count / rate, util=1.0)

    def cpu_chk_potf2_update(self, b: int) -> KernelCost:
        """Algorithm 2 on the host: a 2×B strip solve, 2·B² flops."""
        rate = self.cpu.eff("chk_update") * self.cpu.peak_gflops * 1e9
        return KernelCost(duration=2.0 * b * b / rate, util=1.0)

    # -- transfers --------------------------------------------------------------

    def transfer(self, nbytes: int) -> KernelCost:
        """One CPU↔GPU copy of *nbytes* over the PCIe link."""
        if nbytes < 0:
            raise ValidationError("negative byte count")
        return KernelCost(duration=self.link.transfer_time(nbytes), util=1.0)

    # -- whole-run estimates (used by the Opt-2 placement model) -----------------

    def gpu_sustained_gflops(self, kind: str = "gemm") -> float:
        """Sustained GFLOPS for *kind* kernels running solo."""
        return self.gpu.eff(kind) * self.gpu.peak_gflops

    #: Coarse fault-tolerance overhead multipliers per scheme, used only for
    #: admission/packing estimates (the paper's Figures 14/15 ballpark).
    _SCHEME_OVERHEAD = {
        "none": 1.0,
        "offline": 1.10,
        "online": 1.20,
        "enhanced": 1.12,
        # the tile-DAG runtime fuses checksum updates like Enhanced; its
        # speedup comes from worker threads, which the scheduler accounts
        # for separately via per-job intra_workers capacity charging
        "dag": 1.12,
    }

    def potrf_seconds(self, n: int, block_size: int, scheme: str = "enhanced") -> float:
        """Predicted wall seconds for one protected factorization of order *n*.

        A scheduling estimate, not a simulation: useful flops at the GEMM
        sustained rate, a per-iteration launch/POTF2 round trip, and a flat
        per-scheme FT multiplier.  The service scheduler ranks workers with
        it; accuracy only matters in the relative ordering.
        """
        check_positive("n", n)
        check_positive("block_size", block_size)
        if scheme not in self._SCHEME_OVERHEAD:
            raise ValidationError(
                f"unknown scheme {scheme!r}; have {sorted(self._SCHEME_OVERHEAD)}"
            )
        compute = fl.potrf_flops(n) / (self.gpu_sustained_gflops("gemm") * 1e9)
        nb = max(1, -(-n // block_size))
        per_iter = self.cpu_potf2(min(block_size, n)).duration + 2 * self.link.transfer_time(
            min(block_size, n) ** 2 * _DOUBLE
        )
        return self._SCHEME_OVERHEAD[scheme] * (compute + nb * per_iter)

    def cpu_sustained_gflops(self, kind: str = "chk_update") -> float:
        return self.cpu.eff(kind) * self.cpu.peak_gflops
