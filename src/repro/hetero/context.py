"""The execution context: what drivers program against.

An :class:`ExecutionContext` plays the role of the CUDA runtime plus host
thread for one factorization run.  It

- allocates device buffers (with capacity accounting against the GPU spec),
- creates streams and events,
- records every kernel / transfer / host call as a task in a
  :class:`repro.desim.TaskGraph`, pricing it through the machine's
  :class:`~repro.hetero.costmodel.CostModel`,
- eagerly executes the real NumPy numerics in real mode (shadow mode skips
  the math — tasks and taint only), and
- finally replays the graph through the discrete-event engine to produce
  the simulated wall-clock timeline.

Numerics run eagerly in program order on the single Python thread, so the
computed values are independent of the simulated schedule — legitimate
because the recorded dependencies are exactly the ones that make the real
asynchronous execution produce those same values.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.blas.blocked import BlockedMatrix
from repro.desim.engine import Engine, SimulationResult
from repro.desim.resource import Resource
from repro.desim.task import Task, TaskGraph
from repro.desim.trace import META_STREAM
from repro.hetero.costmodel import CostModel, KernelCost
from repro.hetero.memory import DeviceChecksums, DeviceMatrix
from repro.hetero.spec import MachineSpec
from repro.hetero.stream import GpuEvent, Stream
from repro.util.exceptions import DeviceMemoryError
from repro.util.validation import require

_DOUBLE = 8


class ExecutionContext:
    """One factorization run's worth of simulated-machine state."""

    def __init__(self, spec: MachineSpec, numerics: str = "real") -> None:
        require(numerics in ("real", "shadow"), f"bad numerics mode {numerics!r}")
        self.spec = spec
        self.real = numerics == "real"
        self.cost = CostModel(spec.gpu, spec.cpu, spec.link)
        self.graph = TaskGraph()
        gpu = spec.gpu
        self.gpu_res = Resource(
            name="gpu",
            capacity=gpu.concurrency_ceiling,
            max_concurrent=gpu.max_concurrent_kernels,
        )
        self.cpu_res = Resource(name="cpu", capacity=1.0)
        self.h2d_res = Resource(name="h2d", capacity=1.0)
        self.d2h_res = Resource(name="d2h", capacity=1.0)
        self._streams: dict[str, Stream] = {}
        self._host = Stream(name="host")
        self._mem_used = 0
        self._mem_capacity = int(gpu.memory_gb * 1e9)

    # ------------------------------------------------------------------ streams

    def stream(self, name: str) -> Stream:
        """Get-or-create the named GPU stream."""
        if name not in self._streams:
            self._streams[name] = Stream(name=name)
        return self._streams[name]

    @property
    def host(self) -> Stream:
        """The host 'stream': CPU calls issued by the driver thread."""
        return self._host

    def record_event(self, stream: Stream) -> GpuEvent:
        """cudaEventRecord: a marker completing with the stream's tail."""
        marker = self.graph.new(f"event@{stream.name}", kind="event")
        if stream.last is not None:
            marker.after(stream.last)
        return GpuEvent(marker=marker)

    def wait_event(self, stream: Stream, event: GpuEvent) -> None:
        """cudaStreamWaitEvent: later work in *stream* waits for *event*."""
        barrier = self.graph.new(f"wait@{stream.name}", kind="event")
        barrier.after(stream.last, event.marker)
        stream.last = barrier

    def sync_streams(self, *streams: Stream, name: str = "deviceSync") -> Task:
        """cudaDeviceSynchronize over *streams* (all by default).

        Returns the barrier task; subsequent host work should depend on it,
        which :meth:`launch_cpu` does automatically via the host stream.
        """
        targets = list(streams) if streams else list(self._streams.values())
        deps = [s.last for s in targets if s.last is not None]
        if self._host.last is not None:
            deps.append(self._host.last)
        barrier = self.graph.barrier(name, deps)
        for s in targets:
            s.last = barrier
        self._host.last = barrier
        return barrier

    # ------------------------------------------------------------------ memory

    def _claim(self, nbytes: int, what: str) -> None:
        if self._mem_used + nbytes > self._mem_capacity:
            raise DeviceMemoryError(
                f"allocating {what} ({nbytes / 1e9:.2f} GB) exceeds "
                f"{self.spec.gpu.name} capacity "
                f"({self._mem_capacity / 1e9:.2f} GB, "
                f"{self._mem_used / 1e9:.2f} GB in use)"
            )
        self._mem_used += nbytes

    @property
    def device_bytes_used(self) -> int:
        return self._mem_used

    def alloc_matrix(
        self,
        n: int,
        block_size: int,
        data: np.ndarray | None = None,
        name: str = "A",
    ) -> DeviceMatrix:
        """Allocate the n×n input matrix on the device.

        In real mode *data* is required and is wrapped without copying
        (the factorization overwrites it, as MAGMA's in-place dpotrf does).
        """
        if self.real:
            require(data is not None, "real mode needs the actual matrix data")
            blocked = BlockedMatrix(data, block_size)
        else:
            require(data is None, "shadow mode takes no matrix data")
            blocked = None
        matrix = DeviceMatrix(name, n, block_size, blocked)
        self._claim(matrix.nbytes, f"matrix {name!r}")
        return matrix

    def alloc_checksums(
        self,
        n: int,
        block_size: int,
        name: str = "chk",
        rows_per_tile: int = 2,
    ) -> DeviceChecksums:
        """Allocate the (r·nb)×n checksum matrix on the device."""
        chk = DeviceChecksums.zeros(
            name, n, block_size, real=self.real, rows_per_tile=rows_per_tile
        )
        self._claim(chk.nbytes, f"checksums {name!r}")
        return chk

    # ------------------------------------------------------------------ launches

    def launch_gpu(
        self,
        name: str,
        kind: str,
        cost: KernelCost,
        stream: Stream,
        fn: Callable[[], None] | None = None,
        deps: list[Task] | None = None,
        **meta: Any,
    ) -> Task:
        """Issue one GPU kernel into *stream*; run its numerics if real."""
        task = self.graph.new(
            name,
            resource=self.gpu_res,
            duration=cost.duration,
            util=cost.util,
            kind=kind,
            deps=deps,
            **meta,
        )
        task.meta.setdefault(META_STREAM, stream.name)
        stream.chain(task)
        if self.real and fn is not None:
            fn()
        return task

    def launch_cpu(
        self,
        name: str,
        kind: str,
        cost: KernelCost,
        fn: Callable[[], None] | None = None,
        deps: list[Task] | None = None,
        **meta: Any,
    ) -> Task:
        """Issue one host call (ordered after earlier host work)."""
        task = self.graph.new(
            name,
            resource=self.cpu_res,
            duration=cost.duration,
            util=cost.util,
            kind=kind,
            deps=deps,
            **meta,
        )
        task.meta.setdefault(META_STREAM, self._host.name)
        self._host.chain(task)
        if self.real and fn is not None:
            fn()
        return task

    def transfer_d2h(
        self,
        nbytes: int,
        name: str = "d2h",
        deps: list[Task] | None = None,
        stream: Stream | None = None,
        **meta: Any,
    ) -> Task:
        """Device→host copy; chained into *stream* if given (async copy)."""
        cost = self.cost.transfer(nbytes)
        task = self.graph.new(
            name,
            resource=self.d2h_res,
            duration=cost.duration,
            util=cost.util,
            kind="d2h",
            deps=deps,
            bytes=nbytes,
            **meta,
        )
        if stream is not None:
            task.meta.setdefault(META_STREAM, stream.name)
            stream.chain(task)
        return task

    def transfer_h2d(
        self,
        nbytes: int,
        name: str = "h2d",
        deps: list[Task] | None = None,
        stream: Stream | None = None,
        **meta: Any,
    ) -> Task:
        """Host→device copy; chained into *stream* if given."""
        cost = self.cost.transfer(nbytes)
        task = self.graph.new(
            name,
            resource=self.h2d_res,
            duration=cost.duration,
            util=cost.util,
            kind="h2d",
            deps=deps,
            bytes=nbytes,
            **meta,
        )
        if stream is not None:
            task.meta.setdefault(META_STREAM, stream.name)
            stream.chain(task)
        return task

    # ------------------------------------------------------------------ replay

    def simulate(self) -> SimulationResult:
        """Run the recorded task graph through the discrete-event engine."""
        return Engine().run(self.graph)

    def tile_bytes(self, block_size: int) -> int:
        """Bytes of one B×B float64 tile (transfer sizing helper)."""
        return block_size * block_size * _DOUBLE
