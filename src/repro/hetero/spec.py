"""Hardware specifications and the two paper testbeds.

The numeric values are calibrated, not measured: peak rates come from the
vendor datasheets for the parts named in Section VII-A, and the efficiency
fractions were tuned so that the simulated plain MAGMA Cholesky lands near
the paper's reported times (Tables VII/VIII imply ≈273 GFLOPS sustained on
Tardis at n=20480 and ≈1117 GFLOPS on Bulldozer64 at n=30720).

Two structural parameters matter most for reproducing the paper's effects:

- ``max_concurrent_kernels`` — Fermi has a single hardware work queue, so
  despite a nominal 16-way limit it achieves very little real kernel
  concurrency; Kepler's Hyper-Q gives 32 genuinely concurrent queues.  This
  asymmetry is exactly why Optimization 1 buys ~2% on Tardis but ~10% on
  Bulldozer64 (Figures 8/9).
- per-kind ``efficiency`` — the fraction of peak a kernel reaches running
  alone, which doubles as its GPS utilization (spare capacity is what a
  second stream can steal, the mechanism behind Optimization 2 on the GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive, require

#: Kernel kinds the cost model understands.
KERNEL_KINDS = (
    "gemm",
    "syrk",
    "trsm",
    "potf2",
    "gemv",
    "chk_update_gemm",
    "chk_update_trsm",
    "chk_update_syrk",
    "chk_update_potf2",
)


@dataclass(frozen=True)
class GpuSpec:
    """A GPU accelerator."""

    name: str
    arch: str
    peak_gflops: float  # double-precision peak
    mem_bandwidth_gbs: float
    memory_gb: float
    max_concurrent_kernels: int
    kernel_launch_overhead_s: float
    #: Solo fraction-of-peak per BLAS-3 kernel kind.
    efficiency: dict[str, float] = field(default_factory=dict)
    #: Solo fraction of memory bandwidth a small BLAS-2 kernel achieves.
    gemv_bandwidth_fraction: float = 0.35
    #: Highest total utilization concurrent kernels can reach together.
    concurrency_ceiling: float = 1.0
    #: GPS demand of a thin (BLAS-2 / 2-row strip) kernel: the share of the
    #: device's *modeled* capacity it occupies while running.  On Kepler,
    #: Hyper-Q plus the compute/bandwidth split lets such kernels co-run
    #: with BLAS-3 work almost freely (low demand); Fermi's single hardware
    #: queue cannot, so a thin kernel blocks most of the device.
    thin_kernel_util: float = 0.5
    #: Inner-dimension half-saturation point for BLAS-3 kernels: a GEMM with
    #: inner dimension k reaches ``eff · k/(k + gemm_k_half)`` of peak.
    #: This is the classical GPU GEMM efficiency ramp; it is what makes the
    #: right-looking variant's B-wide trailing updates expensive and hence
    #: why MAGMA prefers the inner-product formulation (Section II-A).
    gemm_k_half: float = 160.0

    def __post_init__(self) -> None:
        check_positive("peak_gflops", self.peak_gflops)
        check_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)
        check_positive("max_concurrent_kernels", self.max_concurrent_kernels)
        for kind, eff in self.efficiency.items():
            require(0.0 < eff <= 1.0, f"efficiency[{kind}] must be in (0,1]")

    def eff(self, kind: str) -> float:
        """Solo efficiency for *kind* (defaults to 0.5 for unlisted kinds)."""
        return self.efficiency.get(kind, 0.5)


@dataclass(frozen=True)
class CpuSpec:
    """The host side: all sockets aggregated."""

    name: str
    sockets: int
    cores: int  # total across sockets
    peak_gflops: float  # aggregate double-precision peak
    efficiency: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("peak_gflops", self.peak_gflops)

    def eff(self, kind: str) -> float:
        return self.efficiency.get(kind, 0.35)


@dataclass(frozen=True)
class LinkSpec:
    """The CPU↔GPU interconnect (PCIe)."""

    name: str
    bandwidth_gbs: float
    latency_s: float

    def __post_init__(self) -> None:
        check_positive("bandwidth_gbs", self.bandwidth_gbs)

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move *nbytes* one way."""
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class MachineSpec:
    """A whole heterogeneous node."""

    name: str
    gpu: GpuSpec
    cpu: CpuSpec
    link: LinkSpec
    default_block_size: int

    def __post_init__(self) -> None:
        check_positive("default_block_size", self.default_block_size)


# ---------------------------------------------------------------------------
# Paper testbeds
# ---------------------------------------------------------------------------

TARDIS = MachineSpec(
    name="tardis",
    gpu=GpuSpec(
        name="Tesla M2075",
        arch="fermi",
        peak_gflops=515.0,
        mem_bandwidth_gbs=150.0,
        memory_gb=6.0,
        # Fermi's single hardware queue: nominally 16-way concurrency but
        # little real overlap; 2 models the achievable co-residency.
        max_concurrent_kernels=2,
        kernel_launch_overhead_s=4.0e-6,
        efficiency={
            "gemm": 0.558,
            "syrk": 0.49,
            "trsm": 0.42,
            "chk_update_gemm": 0.18,
            "chk_update_trsm": 0.15,
            "chk_update_syrk": 0.15,
        },
        gemv_bandwidth_fraction=0.55,
        concurrency_ceiling=0.92,
        thin_kernel_util=0.55,
    ),
    cpu=CpuSpec(
        name="2x AMD Opteron 6272",
        sockets=2,
        cores=32,
        peak_gflops=268.8,  # 32 cores × 2.1 GHz × 4 DP flops/cycle
        efficiency={"potf2": 0.10, "chk_update": 0.35},
    ),
    link=LinkSpec(name="PCIe 2.0 x16", bandwidth_gbs=6.0, latency_s=10e-6),
    default_block_size=256,  # MAGMA's Fermi default
)

BULLDOZER64 = MachineSpec(
    name="bulldozer64",
    gpu=GpuSpec(
        name="Tesla K40c",
        arch="kepler",
        peak_gflops=1430.0,
        mem_bandwidth_gbs=288.0,
        memory_gb=12.0,
        max_concurrent_kernels=32,  # Hyper-Q
        kernel_launch_overhead_s=4.0e-6,
        efficiency={
            "gemm": 0.809,
            "syrk": 0.69,
            "trsm": 0.55,
            "chk_update_gemm": 0.22,
            "chk_update_trsm": 0.18,
            "chk_update_syrk": 0.18,
        },
        gemv_bandwidth_fraction=0.30,
        concurrency_ceiling=0.95,
        thin_kernel_util=0.15,
    ),
    cpu=CpuSpec(
        name="4x AMD Opteron 6272",
        sockets=4,
        cores=64,
        peak_gflops=537.6,
        efficiency={"potf2": 0.10, "chk_update": 0.35},
    ),
    link=LinkSpec(name="PCIe 3.0 x16", bandwidth_gbs=11.0, latency_s=8e-6),
    default_block_size=512,  # MAGMA's Kepler default
)

#: All presets by name.
PRESETS: dict[str, MachineSpec] = {m.name: m for m in (TARDIS, BULLDOZER64)}
