"""Simulated heterogeneous CPU+GPU machine.

This subpackage replaces the paper's physical testbeds.  It provides:

- :mod:`repro.hetero.spec` — hardware descriptions, with presets calibrated
  to the paper's two systems (``TARDIS``: 2× Opteron 6272 + Tesla M2075
  Fermi; ``BULLDOZER64``: 4× Opteron 6272 + Tesla K40c Kepler);
- :mod:`repro.hetero.costmodel` — a roofline-style kernel cost model that
  assigns each kernel a solo duration and a GPU-utilization fraction (the
  quantity behind concurrent-kernel speedups);
- :mod:`repro.hetero.memory` — device-resident buffers: tiled matrices and
  checksum strips whose live storage can suffer injected bit flips;
- :mod:`repro.hetero.stream` — CUDA-like streams and events;
- :mod:`repro.hetero.context` — the execution context drivers program
  against: it runs real NumPy numerics (or shadow/taint semantics) *and*
  records every kernel, transfer and host call into a
  :class:`repro.desim.TaskGraph`;
- :mod:`repro.hetero.machine` — the facade tying specs, resources and
  contexts together.
"""

from repro.hetero.context import ExecutionContext
from repro.hetero.machine import Machine
from repro.hetero.memory import DeviceChecksums, DeviceMatrix
from repro.hetero.spec import (
    BULLDOZER64,
    TARDIS,
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MachineSpec,
)
from repro.hetero.stream import GpuEvent, Stream

__all__ = [
    "ExecutionContext",
    "Machine",
    "DeviceChecksums",
    "DeviceMatrix",
    "BULLDOZER64",
    "TARDIS",
    "CpuSpec",
    "GpuSpec",
    "LinkSpec",
    "MachineSpec",
    "GpuEvent",
    "Stream",
]
