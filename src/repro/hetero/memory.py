"""Device-resident buffers: tiled matrices and checksum strips.

A buffer owns (a) optional real storage — a NumPy array, present in real
mode only — and (b) a taint map from tile key to
:class:`repro.faults.taint.TaintState`, present in both modes.  Real-mode
corruption lives in the actual bits; shadow-mode corruption lives only in
the taint map.  Fault injection and ABFT verification address both through
the same ``tile_view`` / ``taint_of`` interface.
"""

from __future__ import annotations

import numpy as np

from repro.blas.blocked import BlockedMatrix
from repro.faults.taint import TaintState
from repro.util.validation import check_block_size, check_positive, require

_DOUBLE = 8


class DeviceBuffer:
    """Base class: named device allocation with taint bookkeeping."""

    def __init__(self, name: str, nbytes: int, array: np.ndarray | None) -> None:
        check_positive(f"nbytes of {name!r}", nbytes)
        self.name = name
        self.nbytes = nbytes
        self.array = array
        self._taint: dict[tuple[int, int], TaintState] = {}

    @property
    def real(self) -> bool:
        return self.array is not None

    def taint_of(self, key: tuple[int, int]) -> TaintState:
        """The (mutable) taint state of tile *key*, created clean on demand."""
        state = self._taint.get(key)
        if state is None:
            state = TaintState()
            self._taint[key] = state
        return state

    def any_taint(self) -> bool:
        return any(not t.is_clean() for t in self._taint.values())

    def tainted_keys(self) -> list[tuple[int, int]]:
        return [k for k, t in self._taint.items() if not t.is_clean()]

    def snapshot_taint(self) -> dict[tuple[int, int], TaintState]:
        """Deep copy of the current taint map (checkpointing support)."""
        return {k: t.copy() for k, t in self._taint.items()}

    def restore_taint(self, snapshot: dict[tuple[int, int], TaintState]) -> None:
        """Replace the taint map with a prior snapshot (rollback support)."""
        self._taint = {k: t.copy() for k, t in snapshot.items()}

    def tile_view(self, key: tuple[int, int]) -> np.ndarray:
        raise NotImplementedError


class DeviceMatrix(DeviceBuffer):
    """An n×n tiled matrix resident in simulated GPU memory.

    In real mode it wraps a :class:`BlockedMatrix` (zero-copy tile views);
    in shadow mode only the geometry exists.
    """

    def __init__(
        self,
        name: str,
        n: int,
        block_size: int,
        blocked: BlockedMatrix | None,
    ) -> None:
        self.n = n
        self.block_size = block_size
        self.nb = check_block_size(n, block_size)
        if blocked is not None:
            require(blocked.n == n, "blocked matrix order mismatch")
            require(blocked.block_size == block_size, "block size mismatch")
        self.blocked = blocked
        super().__init__(
            name,
            nbytes=n * n * _DOUBLE,
            array=None if blocked is None else blocked.data,
        )

    def tile_view(self, key: tuple[int, int]) -> np.ndarray:
        require(self.blocked is not None, f"{self.name}: no storage in shadow mode")
        return self.blocked.block(*key)

    def block(self, i: int, j: int) -> np.ndarray:
        return self.tile_view((i, j))


class DeviceChecksums(DeviceBuffer):
    """The checksum matrix: an (r·nb) × n strip array, r checksums per tile.

    Tile (i, j) of the data matrix owns strip rows [r·i, r·(i+1)) and
    columns [j·B, (j+1)·B): its r weighted column checksums, stored
    contiguously "so they can be updated together" (Section IV-A).  The
    paper's scheme uses r = 2; larger r enables the m+1-checksum
    generalization (:mod:`repro.core.multierror`).
    """

    def __init__(
        self,
        name: str,
        n: int,
        block_size: int,
        array: np.ndarray | None,
        rows_per_tile: int = 2,
    ) -> None:
        require(rows_per_tile >= 2, "need at least two checksums per tile")
        self.n = n
        self.block_size = block_size
        self.rows_per_tile = rows_per_tile
        self.nb = check_block_size(n, block_size)
        if array is not None:
            require(
                array.shape == (rows_per_tile * self.nb, n),
                f"checksum array must be {(rows_per_tile * self.nb, n)}, "
                f"got {array.shape}",
            )
        super().__init__(
            name, nbytes=rows_per_tile * self.nb * n * _DOUBLE, array=array
        )

    @classmethod
    def zeros(
        cls,
        name: str,
        n: int,
        block_size: int,
        real: bool,
        rows_per_tile: int = 2,
    ) -> "DeviceChecksums":
        nb = check_block_size(n, block_size)
        arr = np.zeros((rows_per_tile * nb, n), dtype=np.float64) if real else None
        return cls(name, n, block_size, arr, rows_per_tile=rows_per_tile)

    def tile_view(self, key: tuple[int, int]) -> np.ndarray:
        """The r×B strip of tile *key* (zero-copy view)."""
        require(self.array is not None, f"{self.name}: no storage in shadow mode")
        i, j = key
        b, r = self.block_size, self.rows_per_tile
        require(0 <= i < self.nb and 0 <= j < self.nb, f"tile {key} out of range")
        return self.array[r * i : r * (i + 1), j * b : (j + 1) * b]

    def strip(self, i: int, j: int) -> np.ndarray:
        return self.tile_view((i, j))

    def strip_row(self, i: int, j0: int, j1: int) -> np.ndarray:
        """Strips of tiles (i, j0..j1-1) as one r × (j1-j0)·B view."""
        require(self.array is not None, f"{self.name}: no storage in shadow mode")
        b, r = self.block_size, self.rows_per_tile
        return self.array[r * i : r * (i + 1), j0 * b : j1 * b]
