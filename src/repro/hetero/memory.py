"""Device-resident buffers: tiled matrices and checksum strips.

A buffer owns (a) optional real storage — a NumPy array, present in real
mode only — and (b) a taint map from tile key to
:class:`repro.faults.taint.TaintState`, present in both modes.  Real-mode
corruption lives in the actual bits; shadow-mode corruption lives only in
the taint map.  Fault injection and ABFT verification address both through
the same ``tile_view`` / ``taint_of`` interface.

Tile-major access
-----------------
Both buffer kinds expose their storage as a **tile-major 4-D view**
``tiles4[i, :, j, :]`` (shape ``(nb, h, nb, w)``, a zero-copy reshape of
the backing array), which is what makes batched checksum verification
(:mod:`repro.core.batchverify`) possible without gathering: any
*structured run* of tile keys — a column run ``(i0..i1, j)``, a row run
``(i, j0..j1)``, or a dense rectangle — maps onto one strided view of
shape ``(k, h, w)`` / ``(h, k·w)`` / ``(ki, kj, h, w)`` that a single
broadcast ``W @ view`` consumes.  :func:`plan_tile_runs` decomposes an
arbitrary ordered key list into maximal such runs; every verification
batch the scheme drivers issue (diagonal singletons, TRSM/GEMM panels,
the LD rectangle of the Enhanced pre-GEMM check, the offline final
sweep) decomposes into a handful of runs.

Taint scans are incremental: buffers keep a dirty-key set maintained by
:class:`~repro.faults.taint.TaintState` change notifications, so
``any_taint`` / ``tainted_keys`` no longer walk the whole taint map.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.blas.blocked import BlockedMatrix
from repro.faults.taint import TaintState
from repro.util.validation import check_block_size, check_positive, require

_DOUBLE = 8


# -- cross-process matrix transport --------------------------------------------
#
# The process execution backend (:mod:`repro.exec.process`) never pickles
# ndarrays across the worker boundary: matrices live in
# ``multiprocessing.shared_memory`` segments owned by the parent, and only
# the (name, shape, dtype, offset) descriptor crosses as part of the task
# payload.  Ownership rules:
#
# - the **parent** creates segments (one arena per pool worker slot, grown
#   on demand) and is the only side that ever calls ``unlink``;
# - a **worker** attaches by descriptor, keeps the attachment cached for
#   the life of the pool (warm state), and only ``close``s it on drain —
#   it never unlinks.  Pool workers are spawned children, so they inherit
#   the parent's resource-tracker fd: a worker's attach re-registers the
#   same name in the *same* tracker (a set — idempotent), and the segment
#   is reaped exactly once, by the parent's ``unlink``.  A worker exiting
#   or crashing therefore never tears down a segment the parent still
#   owns.


@dataclass(frozen=True, slots=True)
class ShmDescriptor:
    """Addressing record for an ndarray inside a shared-memory segment.

    This — not the array — is what crosses the process boundary.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int = 0
    #: owning :class:`SharedArena` tag (empty for standalone segments).
    #: Workers cache attachments per arena, so a descriptor naming a new
    #: segment under the same tag tells them to drop the outgrown one.
    arena: str = ""

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


def create_shared_array(
    name: str, shape: tuple[int, ...], dtype: str = "float64"
) -> tuple[shared_memory.SharedMemory, np.ndarray, ShmDescriptor]:
    """Create an owned segment sized for ``shape``/``dtype`` (parent side).

    Returns the segment handle (keep it alive; ``close``+``unlink`` when
    done), a zero-copy ndarray view of it, and the descriptor to send to
    workers.
    """
    desc = ShmDescriptor(name=name, shape=tuple(int(d) for d in shape), dtype=str(dtype))
    check_positive("shared array nbytes", desc.nbytes)
    shm = shared_memory.SharedMemory(name=name, create=True, size=desc.nbytes)
    view = np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf)
    return shm, view, desc


def attach_shared_array(
    desc: ShmDescriptor,
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a parent-owned segment and view it as an ndarray (worker side).

    The worker must only ever ``close()`` the returned handle — the parent
    owns the segment's lifetime and is the only side that ``unlink``s.
    Spawned pool workers share the parent's resource tracker, so the
    duplicate registration this attach makes is idempotent there and the
    segment is reaped exactly once.
    """
    shm = shared_memory.SharedMemory(name=desc.name, create=False)
    view = np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf, offset=desc.offset)
    return shm, view


def _reap_segment(shm: shared_memory.SharedMemory) -> None:
    """Close + unlink one segment, tolerating partial prior teardown.

    ``close`` fails with :class:`BufferError` while live ndarray views
    still map the segment — the mapping then outlives the name, which is
    harmless; the ``unlink`` (the part that frees /dev/shm) still runs.
    """
    try:
        shm.close()
    except BufferError:  # live views keep the mapping; unlink still frees the name
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


#: Smallest size class a lease can land in (one tmpfs page).
_MIN_SEGMENT_BYTES = 4096

#: Default per-arena high-water mark: free segments are trimmed (LRU
#: first) once the arena's total mapped bytes exceed this.
DEFAULT_HIGH_WATER_BYTES = 64 * 1024 * 1024


def _size_class(nbytes: int) -> int:
    """Next power of two >= ``nbytes`` (min one page) — the segment size."""
    size = _MIN_SEGMENT_BYTES
    while size < nbytes:
        size *= 2
    return size


@dataclass
class _Segment:
    """One live shared-memory segment tracked by a :class:`SharedArena`."""

    shm: shared_memory.SharedMemory
    size_class: int
    epoch: int
    finalizer: weakref.finalize
    last_used: int = 0


class SharedArena:
    """A parent-owned pool of warm shared segments (one arena per worker slot).

    ``lease(shape)`` returns a ``(view, descriptor)`` pair backed by a
    segment from a **size-class free-list** (size classes are powers of
    two, one page minimum): a fitting free segment is reused warm — same
    name, so a pool worker's cached attachment stays valid — and only a
    miss creates a new segment.  :meth:`end_lease` returns the segment to
    its class's free-list (LIFO, so the warmest segment goes out first)
    and then trims cold free segments LRU-first while the arena's total
    mapped bytes exceed ``high_water_bytes``.  This replaces the old
    per-attempt allocate/unlink churn while preserving the ownership
    rules above: the parent creates and unlinks, workers only attach and
    close (trimmed names are published via :meth:`drain_retired` so the
    executor can tell workers to drop stale mappings).

    :meth:`mark_stale` condemns every current segment (transport saw the
    backing file vanish or rot underneath us); healing is deferred to the
    next :meth:`lease`, by which point the caller's views are out of
    scope and the purge can actually run.  ``end_lease`` of a condemned
    descriptor is a silent no-op.

    Every created segment carries a ``weakref.finalize`` safety net: if
    the owning executor dies without :meth:`release` (abnormal shutdown),
    segments are still unlinked at arena collection or interpreter exit,
    so /dev/shm never accumulates residue.
    """

    def __init__(self, tag: str, high_water_bytes: int = DEFAULT_HIGH_WATER_BYTES) -> None:
        self.tag = tag
        self.high_water_bytes = int(high_water_bytes)
        self._seq = 0
        self._epoch = 0
        self._clock = 0
        self._segments: dict[str, _Segment] = {}
        self._leased: set[str] = set()
        self._free: dict[int, list[str]] = {}
        self._retired: list[str] = []
        #: whether the most recent :meth:`lease` was served from the
        #: free-list (warm hit) or had to create a segment (miss) — the
        #: executor reads this to drive its reuse/miss counters.
        self.last_lease_reused = False

    # -- introspection ---------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(seg.size_class for seg in self._segments.values())

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def free_count(self) -> int:
        return sum(len(names) for names in self._free.values())

    def leased_names(self) -> set[str]:
        return set(self._leased)

    # -- staleness / targeted teardown ----------------------------------

    def mark_stale(self) -> None:
        """Condemn every current segment (backing gone/corrupt underneath us).

        Healing is deferred to the next :meth:`lease` — by then the
        caller's views of the old segments are out of scope, so the
        purge can actually close the mappings.
        """
        self._epoch += 1

    def discard(self, name: str) -> None:
        """Drop one segment by name (its file vanished or rotted).

        Unlike :meth:`mark_stale` this is immediate and targeted: other
        segments' leases stay valid.  Unknown names are ignored.
        """
        seg = self._segments.pop(name, None)
        if seg is None:
            return
        self._leased.discard(name)
        names = self._free.get(seg.size_class)
        if names and name in names:
            names.remove(name)
        seg.finalizer.detach()
        _reap_segment(seg.shm)
        self._retired.append(name)

    def unlink_backing(self, name: str | None = None) -> None:
        """Remove /dev/shm file(s) while keeping the mappings alive.

        Chaos-test hook simulating an external tmpfs sweep: existing
        attachments keep working (the mapping survives the unlink) but
        any *new* attach by name fails with ``FileNotFoundError``.  With
        ``name=None`` every current segment's file is removed.
        """
        for seg_name, seg in self._segments.items():
            if name is not None and seg_name != name:
                continue
            try:
                seg.shm.unlink()
            except FileNotFoundError:
                pass

    def drain_retired(self) -> list[str]:
        """Names unlinked since the last drain (workers should close them)."""
        retired, self._retired = self._retired, []
        return retired

    # -- lease lifecycle -------------------------------------------------

    def _purge_stale(self) -> None:
        condemned = [n for n, seg in self._segments.items() if seg.epoch != self._epoch]
        for name in condemned:
            seg = self._segments.pop(name)
            self._leased.discard(name)
            names = self._free.get(seg.size_class)
            if names and name in names:
                names.remove(name)
            seg.finalizer.detach()
            _reap_segment(seg.shm)
            self._retired.append(name)

    def lease(self, shape: tuple[int, ...], dtype: str = "float64") -> tuple[np.ndarray, ShmDescriptor]:
        nbytes = ShmDescriptor("", tuple(int(d) for d in shape), str(dtype)).nbytes
        check_positive("arena lease nbytes", nbytes)
        self._purge_stale()
        cls = _size_class(nbytes)
        names = self._free.get(cls)
        if names:
            name = names.pop()  # LIFO: warmest segment first
            seg = self._segments[name]
            self.last_lease_reused = True
        else:
            self._seq += 1
            name = f"{self.tag}-{self._seq}"
            shm = shared_memory.SharedMemory(name=name, create=True, size=cls)
            seg = _Segment(
                shm=shm,
                size_class=cls,
                epoch=self._epoch,
                finalizer=weakref.finalize(self, _reap_segment, shm),
            )
            self._segments[name] = seg
            self.last_lease_reused = False
            # The new segment may push the arena over high-water: evict
            # cold free segments to make room (never a live lease — the
            # fresh segment is not on any free-list, so it is safe).
            self._trim()
        self._leased.add(name)
        self._clock += 1
        seg.last_used = self._clock
        desc = ShmDescriptor(
            name=name,
            shape=tuple(int(d) for d in shape),
            dtype=str(dtype),
            arena=self.tag,
        )
        view = np.ndarray(desc.shape, dtype=desc.dtype, buffer=seg.shm.buf)
        return view, desc

    def end_lease(self, desc: ShmDescriptor) -> None:
        """Return a leased segment to the free-list, then trim cold ones.

        Descriptors whose segment was condemned (:meth:`mark_stale`) or
        dropped (:meth:`discard`) in the meantime are silently ignored.
        """
        if desc.name not in self._leased:
            return
        self._leased.discard(desc.name)
        seg = self._segments[desc.name]
        self._clock += 1
        seg.last_used = self._clock
        self._free.setdefault(seg.size_class, []).append(desc.name)
        self._trim()

    def _trim(self) -> None:
        """Unlink free segments LRU-first while over the high-water mark."""
        while self.total_bytes > self.high_water_bytes:
            free_names = [n for names in self._free.values() for n in names]
            if not free_names:
                return
            victim = min(free_names, key=lambda n: self._segments[n].last_used)
            seg = self._segments.pop(victim)
            self._free[seg.size_class].remove(victim)
            seg.finalizer.detach()
            _reap_segment(seg.shm)
            self._retired.append(victim)

    def release(self) -> None:
        """Unlink every segment (parent-side ownership teardown); idempotent."""
        segments, self._segments = self._segments, {}
        self._leased.clear()
        self._free.clear()
        for seg in segments.values():
            seg.finalizer.detach()
            _reap_segment(seg.shm)


@dataclass(frozen=True, slots=True)
class TileRun:
    """A maximal structured subset of an ordered tile-key list.

    ``kind`` is ``"col"`` (fixed j, i in ``[i0, i1)``), ``"row"`` (fixed
    i, j in ``[j0, j1)``) or ``"rect"`` (the dense product
    ``[i0, i1) × [j0, j1)``, row-major).  A single key is a length-1
    column run.
    """

    kind: str
    i0: int
    i1: int
    j0: int
    j1: int

    def __len__(self) -> int:
        return (self.i1 - self.i0) * (self.j1 - self.j0)

    def keys(self) -> list[tuple[int, int]]:
        """The run's keys in the order they appeared in the batch."""
        if self.kind == "col":
            return [(i, self.j0) for i in range(self.i0, self.i1)]
        if self.kind == "row":
            return [(self.i0, j) for j in range(self.j0, self.j1)]
        return [
            (i, j)
            for i in range(self.i0, self.i1)
            for j in range(self.j0, self.j1)
        ]


def plan_tile_runs(keys: list[tuple[int, int]]) -> list[TileRun]:
    """Decompose an ordered key list into maximal col/row/rect runs.

    Greedy left-to-right: at each position the longer of the column run
    (``(i, j), (i+1, j), …``) and the row run (``(i, j), (i, j+1), …``)
    wins; consecutive equal-width row runs on consecutive block rows are
    then coalesced into one rectangle (the Enhanced scheme's LD region).
    The concatenation of ``run.keys()`` over the plan reproduces *keys*
    exactly, so batch processing preserves per-key order semantics.
    """
    runs: list[TileRun] = []
    p, m = 0, len(keys)
    while p < m:
        i, j = keys[p]
        lc = 1
        while p + lc < m and keys[p + lc] == (i + lc, j):
            lc += 1
        lr = 1
        while p + lr < m and keys[p + lr] == (i, j + lr):
            lr += 1
        if lr > lc:
            runs.append(TileRun("row", i, i + 1, j, j + lr))
            p += lr
        else:
            runs.append(TileRun("col", i, i + lc, j, j + 1))
            p += lc
    out: list[TileRun] = []
    for run in runs:
        prev = out[-1] if out else None
        if (
            prev is not None
            and run.kind == "row"
            and prev.kind in ("row", "rect")
            and prev.j0 == run.j0
            and prev.j1 == run.j1
            and prev.i1 == run.i0
        ):
            out[-1] = TileRun("rect", prev.i0, run.i1, run.j0, run.j1)
        else:
            out.append(run)
    return out


class DeviceBuffer:
    """Base class: named device allocation with taint bookkeeping.

    Subclasses pass the tile grid geometry (``nb`` block rows/columns of
    ``tile_shape = (h, w)`` tiles) so the base class can expose the
    tile-major 4-D view and the structured run views built on it.
    """

    def __init__(
        self,
        name: str,
        nbytes: int,
        array: np.ndarray | None,
        nb: int = 0,
        tile_shape: tuple[int, int] = (0, 0),
    ) -> None:
        check_positive(f"nbytes of {name!r}", nbytes)
        self.name = name
        self.nbytes = nbytes
        self.array = array
        self.nb = nb
        self.tile_shape = tile_shape
        self._taint: dict[tuple[int, int], TaintState] = {}
        # Keys whose TaintState is (possibly) dirty, in dirty-marking
        # order.  Maintained by TaintState change notifications so the
        # any_taint / tainted_keys hot path never scans the full map.
        self._dirty: dict[tuple[int, int], None] = {}
        self._t4: np.ndarray | None = None

    @property
    def real(self) -> bool:
        return self.array is not None

    # ------------------------------------------------------------------ taint

    def taint_of(self, key: tuple[int, int]) -> TaintState:
        """The (mutable) taint state of tile *key*, created clean on demand."""
        state = self._taint.get(key)
        if state is None:
            state = TaintState()
            state.bind(self, key)
            self._taint[key] = state
        return state

    def mark_taint(self, key: tuple[int, int], dirty: bool) -> None:
        """Taint-change notification hook (called by TaintState)."""
        if dirty:
            self._dirty[key] = None
        else:
            self._dirty.pop(key, None)

    def any_taint(self) -> bool:
        return bool(self._dirty)

    def tainted_keys(self) -> list[tuple[int, int]]:
        return list(self._dirty)

    def snapshot_taint(self) -> dict[tuple[int, int], TaintState]:
        """Deep copy of the current taint map (checkpointing support)."""
        return {k: t.copy() for k, t in self._taint.items()}

    def restore_taint(self, snapshot: dict[tuple[int, int], TaintState]) -> None:
        """Replace the taint map with a prior snapshot (rollback support)."""
        self._taint = {}
        self._dirty = {}
        for k, t in snapshot.items():
            state = t.copy()
            state.bind(self, k)
            self._taint[k] = state
            if not state.is_clean():
                self._dirty[k] = None

    # ------------------------------------------------------------- tile views

    def tile_view(self, key: tuple[int, int]) -> np.ndarray:
        """The ``h × w`` view of one tile (zero-copy)."""
        i, j = key
        self._check_key(i, j)
        return self.tiles4[i, :, j, :]

    @property
    def tiles4(self) -> np.ndarray:
        """Tile-major 4-D view ``(nb, h, nb, w)`` of the backing array.

        ``tiles4[i, :, j, :]`` is tile (i, j).  A zero-copy reshape —
        requires the backing storage to be C-contiguous, which every
        allocation path guarantees.
        """
        if self._t4 is None:
            require(self.array is not None, f"{self.name}: no storage in shadow mode")
            require(
                self.array.flags["C_CONTIGUOUS"],
                f"{self.name}: tile-major views need C-contiguous storage",
            )
            h, w = self.tile_shape
            self._t4 = self.array.reshape(self.nb, h, self.nb, w)
        return self._t4

    def col_run_view(self, i0: int, i1: int, j: int) -> np.ndarray:
        """Tiles ``(i0..i1-1, j)`` stacked as a ``(k, h, w)`` strided view."""
        self._check_key(i0, j)
        self._check_key(i1 - 1, j)
        return self.tiles4[i0:i1, :, j, :]

    def row_run_view(self, i: int, j0: int, j1: int) -> np.ndarray:
        """Tiles ``(i, j0..j1-1)`` fused as one 2-D ``h × k·w`` view."""
        self._check_key(i, j0)
        self._check_key(i, j1 - 1)
        h, w = self.tile_shape
        return self.array[i * h : (i + 1) * h, j0 * w : j1 * w]

    def rect_run_view(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        """Tile rectangle as a ``(ki, kj, h, w)`` strided view (row-major)."""
        self._check_key(i0, j0)
        self._check_key(i1 - 1, j1 - 1)
        return self.tiles4[i0:i1, :, j0:j1, :].transpose(0, 2, 1, 3)

    def run_view(self, run: TileRun) -> np.ndarray:
        """The zero-copy stacked view of one :class:`TileRun`."""
        if run.kind == "col":
            return self.col_run_view(run.i0, run.i1, run.j0)
        if run.kind == "row":
            return self.row_run_view(run.i0, run.j0, run.j1)
        return self.rect_run_view(run.i0, run.i1, run.j0, run.j1)

    def _check_key(self, i: int, j: int) -> None:
        require(self.array is not None, f"{self.name}: no storage in shadow mode")
        require(
            0 <= i < self.nb and 0 <= j < self.nb,
            f"tile ({i}, {j}) out of range for {self.nb}×{self.nb} grid",
        )


class DeviceMatrix(DeviceBuffer):
    """An n×n tiled matrix resident in simulated GPU memory.

    In real mode it wraps a :class:`BlockedMatrix` (zero-copy tile views);
    in shadow mode only the geometry exists.
    """

    def __init__(
        self,
        name: str,
        n: int,
        block_size: int,
        blocked: BlockedMatrix | None,
    ) -> None:
        self.n = n
        self.block_size = block_size
        nb = check_block_size(n, block_size)
        if blocked is not None:
            require(blocked.n == n, "blocked matrix order mismatch")
            require(blocked.block_size == block_size, "block size mismatch")
        self.blocked = blocked
        super().__init__(
            name,
            nbytes=n * n * _DOUBLE,
            array=None if blocked is None else blocked.data,
            nb=nb,
            tile_shape=(block_size, block_size),
        )

    def block(self, i: int, j: int) -> np.ndarray:
        return self.tile_view((i, j))


class DeviceChecksums(DeviceBuffer):
    """The checksum matrix: an (r·nb) × n strip array, r checksums per tile.

    Tile (i, j) of the data matrix owns strip rows [r·i, r·(i+1)) and
    columns [j·B, (j+1)·B): its r weighted column checksums, stored
    contiguously "so they can be updated together" (Section IV-A).  The
    paper's scheme uses r = 2; larger r enables the m+1-checksum
    generalization (:mod:`repro.core.multierror`).
    """

    def __init__(
        self,
        name: str,
        n: int,
        block_size: int,
        array: np.ndarray | None,
        rows_per_tile: int = 2,
    ) -> None:
        require(rows_per_tile >= 2, "need at least two checksums per tile")
        self.n = n
        self.block_size = block_size
        self.rows_per_tile = rows_per_tile
        nb = check_block_size(n, block_size)
        if array is not None:
            require(
                array.shape == (rows_per_tile * nb, n),
                f"checksum array must be {(rows_per_tile * nb, n)}, "
                f"got {array.shape}",
            )
        super().__init__(
            name,
            nbytes=rows_per_tile * nb * n * _DOUBLE,
            array=array,
            nb=nb,
            tile_shape=(rows_per_tile, block_size),
        )

    @classmethod
    def zeros(
        cls,
        name: str,
        n: int,
        block_size: int,
        real: bool,
        rows_per_tile: int = 2,
    ) -> "DeviceChecksums":
        nb = check_block_size(n, block_size)
        arr = np.zeros((rows_per_tile * nb, n), dtype=np.float64) if real else None
        return cls(name, n, block_size, arr, rows_per_tile=rows_per_tile)

    def strip(self, i: int, j: int) -> np.ndarray:
        """The r×B strip of tile (i, j) (zero-copy view)."""
        return self.tile_view((i, j))

    def strip_row(self, i: int, j0: int, j1: int) -> np.ndarray:
        """Strips of tiles (i, j0..j1-1) as one r × (j1-j0)·B view."""
        return self.row_run_view(i, j0, j1)

    def strip_panel(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        """Strips of the tile rectangle stacked as one 2-D view.

        Shape ``((i1-i0)·r, (j1-j0)·B)``: block row *i*'s strips occupy
        rows ``[r·(i-i0), r·(i-i0+1))``.  This is the fused operand of the
        batched GEMM/TRSM strip updates (:mod:`repro.core.update`).
        """
        self._check_key(i0, j0)
        self._check_key(i1 - 1, j1 - 1)
        b, r = self.block_size, self.rows_per_tile
        return self.array[r * i0 : r * i1, j0 * b : j1 * b]
