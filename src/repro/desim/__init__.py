"""A small discrete-event simulator for heterogeneous task graphs.

This is the substrate standing in for the real CUDA runtime: the hybrid
Cholesky drivers *record* every kernel, transfer and host call as a
:class:`~repro.desim.task.Task` with dependencies, and the
:class:`~repro.desim.engine.Engine` then computes when each task runs on a
machine made of :class:`~repro.desim.resource.Resource` objects.

The resource model is generalized processor sharing with admission slots:

- a task occupies ``util`` of its resource's ``capacity`` when running alone
  (a big DGEMM saturates the GPU, ``util = 1``; a tiny checksum DGEMV keeps
  only a few SMs busy, ``util ≪ 1``);
- concurrent tasks run at full speed while total utilization fits the
  capacity and are slowed proportionally beyond it;
- at most ``max_concurrent`` tasks may be admitted at once (the CUDA
  concurrent-kernel limit: 16 on Fermi, 32 on Kepler).

That is exactly the structure behind the paper's Optimization 1: many
independent BLAS-2 kernels, each with low solo utilization, finish almost
``P`` times faster when co-scheduled on ``P`` streams.
"""

from repro.desim.engine import Engine, SimulationResult
from repro.desim.resource import Resource
from repro.desim.task import Task, TaskGraph
from repro.desim.trace import Span, Timeline

__all__ = [
    "Engine",
    "SimulationResult",
    "Resource",
    "Task",
    "TaskGraph",
    "Span",
    "Timeline",
]
