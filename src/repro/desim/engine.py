"""The discrete-event engine: computes start/finish times for a task graph.

The engine advances simulated time between *rate-change events* (a task
starting or finishing).  Between events every admitted task progresses
linearly at ``util · scale(resource)``, so the next event is the minimum
time-to-finish over all running tasks.  This is the standard fluid
approximation of generalized processor sharing and costs
``O(events · active)`` — comfortably fast for the ~10⁴-task graphs a
paper-scale Cholesky produces.

Scheduling rules:

- a task becomes *ready* when all dependencies have finished;
- ready tasks queue FIFO per resource **by creation (launch) order** and are
  admitted while the resource has a free concurrency slot — the CUDA model,
  where kernels enter the hardware queue in the order the host issued them,
  not in the order their dependencies happened to resolve;
- zero-duration / resource-less tasks complete immediately upon readiness,
  cascading in the same instant (they model events, barriers and stream
  sync points).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass

from repro.desim.resource import Resource
from repro.desim.task import Task, TaskGraph
from repro.desim.trace import Span, Timeline
from repro.util.exceptions import DeadlockError, SimulationError

_EPS = 1e-12


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    makespan: float
    timeline: Timeline

    def utilization(self, resource: Resource) -> float:
        """Busy fraction of *resource* over the makespan (0 if empty run)."""
        if self.makespan <= 0.0:
            return 0.0
        return resource.busy_time / (self.makespan * resource.capacity)


class Engine:
    """Runs a :class:`TaskGraph` to completion and returns the schedule."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._t0 = start_time

    def run(self, graph: TaskGraph) -> SimulationResult:
        tasks = list(graph)
        if not tasks:
            return SimulationResult(makespan=0.0, timeline=Timeline([]))

        # Dependency bookkeeping.
        n_unmet: dict[Task, int] = {}
        dependents: dict[Task, list[Task]] = defaultdict(list)
        task_set = set(tasks)
        for t in tasks:
            n_unmet[t] = len(t.deps)
            for d in t.deps:
                if d not in task_set:
                    raise SimulationError(
                        f"task {t.name!r} depends on {d.name!r} which is not "
                        "in the graph"
                    )
                dependents[d].append(t)

        # FIFO ready queues per resource (heap keyed by tid = launch order).
        queues: dict[Resource, list[tuple[int, Task]]] = defaultdict(list)
        running: dict[Resource, dict[Task, float]] = defaultdict(dict)  # remaining work
        instant_ready: list[Task] = []

        now = self._t0
        finished = 0
        spans: list[Span] = []
        for r in {t.resource for t in tasks if t.resource is not None}:
            r.busy_time = 0.0

        def mark_ready(task: Task) -> None:
            if task.resource is None or task.duration == 0.0:
                instant_ready.append(task)
            else:
                heapq.heappush(queues[task.resource], (task.tid, task))

        def complete(task: Task, start: float, finish: float) -> None:
            nonlocal finished
            task.start_time = start
            task.finish_time = finish
            finished += 1
            spans.append(Span.from_task(task))
            for dep in dependents[task]:
                n_unmet[dep] -= 1
                if n_unmet[dep] == 0:
                    mark_ready(dep)

        for t in tasks:
            if n_unmet[t] == 0:
                mark_ready(t)

        total = len(tasks)
        while finished < total:
            # 1. Drain instantaneous tasks (may cascade at the same instant).
            while instant_ready:
                task = instant_ready.pop()
                complete(task, now, now)

            # 2. Admit queued tasks while slots are free.
            for resource, queue in queues.items():
                active = running[resource]
                while queue and resource.has_slot(len(active)):
                    _, task = heapq.heappop(queue)
                    task.start_time = now
                    active[task] = task.work

            # 3. If nothing is running, we either finished (via instants) or
            #    are deadlocked on an unsatisfiable dependency cycle.
            any_running = any(running[r] for r in running)
            if not any_running:
                if instant_ready:
                    continue
                if finished < total:
                    stuck = [t.name for t in tasks if t.finish_time < 0][:8]
                    raise DeadlockError(
                        f"{total - finished} tasks can never run "
                        f"(dependency cycle?); first stuck: {stuck}"
                    )
                break

            # 4. Advance to the next completion across all resources.
            dt = float("inf")
            rates: dict[Resource, float] = {}
            for resource, active in running.items():
                if not active:
                    continue
                total_util = sum(t.util for t in active)
                scale = resource.scale(total_util)
                rates[resource] = scale
                for task, remaining in active.items():
                    rate = task.util * scale
                    dt = min(dt, remaining / rate)
            if not (dt < float("inf")):
                raise SimulationError("no progress possible despite running tasks")
            dt = max(dt, 0.0)

            # 5. Integrate progress and retire finished tasks.
            now += dt
            for resource, active in list(running.items()):
                scale = rates.get(resource)
                if scale is None or not active:
                    continue
                done: list[Task] = []
                consumed = 0.0
                for task in active:
                    rate = task.util * scale
                    active[task] -= rate * dt
                    consumed += rate * dt
                    if active[task] <= task.work * _EPS + _EPS:
                        done.append(task)
                resource.busy_time += consumed
                for task in done:
                    del active[task]
                    complete(task, task.start_time, now)

        timeline = Timeline(sorted(spans, key=lambda s: (s.start, s.tid)))
        makespan = max((s.finish for s in timeline), default=0.0) - self._t0
        return SimulationResult(makespan=makespan, timeline=timeline)
