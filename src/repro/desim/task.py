"""Tasks and task graphs for the discrete-event engine.

A :class:`Task` is one unit of recorded work: a GPU kernel, a PCIe transfer,
or a host-side call.  Dependencies are explicit edges; the execution
contexts in :mod:`repro.hetero` derive them from CUDA stream semantics
(program order within a stream, events across streams, host synchronization).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.desim.resource import Resource
from repro.util.exceptions import ValidationError

_task_ids = itertools.count()


@dataclass(eq=False, slots=True)
class Task:
    """One schedulable unit of work.

    Parameters
    ----------
    name:
        Human-readable label; appears in timelines and traces.
    resource:
        Where the task runs.  ``None`` means a pure synchronization node
        that completes the instant its dependencies do.
    duration:
        Seconds the task takes when running alone on its resource.
    util:
        Fraction of the resource's capacity the task can use alone
        (``1.0`` = saturates it).  The engine converts this into GPS
        demand: actual resource-seconds consumed are ``duration · util``.
    kind:
        Free-form category tag (``"gemm"``, ``"h2d"``, ...) used by trace
        queries and overhead accounting.
    meta:
        Arbitrary annotations (block indices, iteration, byte counts).
    """

    name: str
    resource: Resource | None = None
    duration: float = 0.0
    util: float = 1.0
    kind: str = "task"
    meta: dict[str, Any] = field(default_factory=dict)
    deps: list["Task"] = field(default_factory=list)
    tid: int = field(default_factory=lambda: next(_task_ids), init=False)

    # Filled in by the engine:
    start_time: float = field(default=-1.0, init=False)
    finish_time: float = field(default=-1.0, init=False)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValidationError(f"task {self.name!r} has negative duration")
        if not 0.0 < self.util <= 1.0:
            raise ValidationError(
                f"task {self.name!r} has util {self.util}, must be in (0, 1]"
            )
        if self.resource is None and self.duration > 0:
            raise ValidationError(
                f"task {self.name!r} has duration but no resource to run on"
            )

    def after(self, *tasks: "Task | None") -> "Task":
        """Add dependencies (ignoring Nones) and return self for chaining."""
        for t in tasks:
            if t is not None:
                self.deps.append(t)
        return self

    @property
    def work(self) -> float:
        """GPS work: resource-seconds this task must accumulate to finish."""
        return self.duration * self.util

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}, d={self.duration:.3e}, u={self.util:.2f})"


class TaskGraph:
    """An append-only collection of tasks forming a DAG.

    The graph does not deduplicate or validate acyclicity eagerly — the
    engine detects cycles as a deadlock (tasks that can never become ready).
    Construction helpers keep driver code terse.
    """

    def __init__(self) -> None:
        self.tasks: list[Task] = []

    def add(self, task: Task) -> Task:
        """Register *task* and return it."""
        self.tasks.append(task)
        return task

    def new(
        self,
        name: str,
        resource: Resource | None = None,
        duration: float = 0.0,
        util: float = 1.0,
        kind: str = "task",
        deps: list[Task] | None = None,
        **meta: Any,
    ) -> Task:
        """Create, register and return a new task."""
        task = Task(
            name=name,
            resource=resource,
            duration=duration,
            util=util,
            kind=kind,
            meta=meta,
        )
        if deps:
            task.after(*deps)
        return self.add(task)

    def barrier(self, name: str, deps: list[Task], **meta: Any) -> Task:
        """A zero-cost node that completes when all *deps* have."""
        return self.new(name, deps=deps, kind="barrier", **meta)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)
