"""Resources: named capacities that tasks contend for.

A :class:`Resource` models one shared execution engine — a GPU's SM array,
a CPU socket's cores, or a PCIe direction.  The sharing discipline is
generalized processor sharing (GPS): every admitted task asks for ``util``
of the capacity; when the sum of requests exceeds ``capacity``, all admitted
tasks are slowed by the same factor ``capacity / Σ util``.

``max_concurrent`` caps how many tasks may be admitted simultaneously
(queued FIFO past that), which models both the CUDA concurrent-kernel limit
and a core-count cap (set ``capacity == max_concurrent`` and ``util = 1``
per task for a classic multi-core pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive


@dataclass(eq=False)
class Resource:
    """A contended execution engine in the simulated machine."""

    name: str
    capacity: float = 1.0
    max_concurrent: int | None = None
    busy_time: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(f"capacity of {self.name!r}", self.capacity)
        if self.max_concurrent is not None:
            check_positive(f"max_concurrent of {self.name!r}", self.max_concurrent)

    def scale(self, total_util: float) -> float:
        """GPS slowdown factor for the currently admitted total utilization."""
        if total_util <= self.capacity:
            return 1.0
        return self.capacity / total_util

    def has_slot(self, active_count: int) -> bool:
        """Whether one more task may be admitted."""
        return self.max_concurrent is None or active_count < self.max_concurrent
