"""Execution traces: spans, timelines, and nvprof-style summaries.

After an engine run, the :class:`Timeline` answers the questions the paper's
evaluation asks: how long did checksum recalculation take in aggregate, how
much of the GPU was busy, what fraction of time went to fault tolerance.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.desim.task import Task
from repro.util.formatting import render_table

# Task/Span ``meta`` keys of the tile-access event protocol.  Drivers and the
# ABFT machinery annotate every task that touches matrix tiles or checksum
# strips with these keys; :mod:`repro.analysis` consumes them to check the
# paper's ordering invariants statically.  Tile keys are ``(i, j)`` block
# coordinates; ``META_ITERATION`` is the factorization iteration the access
# belongs to (``-1`` for the initial encoding).
META_TILE_READS = "tile_reads"
META_TILE_WRITES = "tile_writes"
META_TILE_VERIFIES = "tile_verifies"
META_CHK_READS = "chk_reads"
META_CHK_WRITES = "chk_writes"
META_STREAM = "stream"
META_ITERATION = "iteration"
#: Set by the solve service on every span of a job's timeline so dumped
#: multi-job traces stay attributable after they leave the process.
META_JOB = "job"


@dataclass(frozen=True, slots=True)
class Span:
    """One completed task occurrence on the simulated clock."""

    tid: int
    name: str
    kind: str
    resource: str | None
    start: float
    finish: float
    meta: dict[str, Any]
    deps: tuple[int, ...] = ()

    @classmethod
    def from_task(cls, task: Task) -> "Span":
        return cls(
            tid=task.tid,
            name=task.name,
            kind=task.kind,
            resource=task.resource.name if task.resource else None,
            start=task.start_time,
            finish=task.finish_time,
            meta=dict(task.meta),
            deps=tuple(sorted({d.tid for d in task.deps})),
        )

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Timeline:
    """An ordered collection of spans with aggregate queries."""

    def __init__(self, spans: list[Span]) -> None:
        self.spans = spans

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.finish for s in self.spans) - min(s.start for s in self.spans)

    def filter(self, predicate: Callable[[Span], bool]) -> "Timeline":
        """Sub-timeline of spans matching *predicate*."""
        return Timeline([s for s in self.spans if predicate(s)])

    def of_kind(self, *kinds: str) -> "Timeline":
        """Sub-timeline of the given span kinds."""
        wanted = set(kinds)
        return self.filter(lambda s: s.kind in wanted)

    def total_duration(self) -> float:
        """Sum of span durations (overlap counted multiply)."""
        return sum(s.duration for s in self.spans)

    def busy_time(self, resource: str) -> float:
        """Union length of spans on *resource* (overlap counted once)."""
        intervals = sorted(
            (s.start, s.finish) for s in self.spans if s.resource == resource
        )
        busy = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, finish in intervals:
            if cur_start is None:
                cur_start, cur_end = start, finish
            elif start <= cur_end:
                cur_end = max(cur_end, finish)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = start, finish
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def kind_summary(self) -> dict[str, tuple[int, float]]:
        """Per-kind (count, total duration) — an nvprof-like rollup."""
        agg: dict[str, tuple[int, float]] = defaultdict(lambda: (0, 0.0))
        for s in self.spans:
            count, dur = agg[s.kind]
            agg[s.kind] = (count + 1, dur + s.duration)
        return dict(agg)

    def to_chrome_trace(self, time_unit_us: float = 1e6) -> list[dict]:
        """Export as Chrome/Perfetto trace events (the ``chrome://tracing``
        JSON array format): one complete event ("ph": "X") per span, one
        process per resource.  Load the dumped JSON in any Perfetto UI to
        inspect the simulated schedule interactively.

        *time_unit_us* converts simulated seconds to microseconds (the
        trace format's unit); scale it up to stretch very short runs.
        """
        resources = sorted({s.resource for s in self.spans if s.resource})
        pid_of = {r: i + 1 for i, r in enumerate(resources)}
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": resource},
            }
            for resource, pid in pid_of.items()
        ]
        for s in self.spans:
            if s.resource is None or s.duration <= 0:
                continue
            events.append(
                {
                    "name": s.name,
                    "cat": s.kind,
                    "ph": "X",
                    "pid": pid_of[s.resource],
                    "tid": 1,
                    "ts": s.start * time_unit_us,
                    "dur": s.duration * time_unit_us,
                    "args": {k: v for k, v in s.meta.items() if isinstance(v, (int, float, str))},
                }
            )
        return events

    def render_gantt(
        self,
        width: int = 100,
        lanes: list[str] | None = None,
        max_label: int = 14,
    ) -> str:
        """ASCII Gantt chart: one lane per resource, time left to right.

        Each character cell covers ``makespan / width`` seconds; a cell
        shows the first letter of the kind of the span occupying it (``.``
        when idle, ``#`` when several spans overlap within the cell).  This
        is the quick way to *see* the paper's scheduling claims — POTF2
        hiding under GEMM, recalculation batches fanning across streams,
        checksum updating overlapping on its own stream.
        """
        if not self.spans:
            return "(empty timeline)"
        t0 = min(s.start for s in self.spans)
        span_names = lanes or sorted(
            {s.resource for s in self.spans if s.resource is not None}
        )
        total = self.makespan or 1.0
        scale = width / total
        lines = [f"gantt: {total:.6f}s total, {total / width:.2e}s/cell"]
        for lane in span_names:
            cells = [None] * width
            for s in self.spans:
                if s.resource != lane or s.duration <= 0:
                    continue
                lo = int((s.start - t0) * scale)
                hi = max(lo + 1, int((s.finish - t0) * scale))
                for c in range(lo, min(hi, width)):
                    cells[c] = "#" if cells[c] else s.kind[0]
            row = "".join(c or "." for c in cells)
            lines.append(f"{lane[:max_label]:>{max_label}} |{row}|")
        kinds = sorted({s.kind for s in self.spans if s.duration > 0})
        lines.append("legend: " + "  ".join(f"{k[0]}={k}" for k in kinds))
        return "\n".join(lines)

    def render_summary(self, title: str = "timeline summary") -> str:
        """Text table of the per-kind rollup, longest aggregate first."""
        rows = [
            (kind, count, total, total / count if count else 0.0)
            for kind, (count, total) in sorted(
                self.kind_summary().items(), key=lambda kv: -kv[1][1]
            )
        ]
        return render_table(
            ["kind", "calls", "total_s", "avg_s"],
            [(k, c, f"{t:.6f}", f"{a:.6f}") for k, c, t, a in rows],
            title=title,
        )
