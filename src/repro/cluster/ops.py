"""Operator entry points: manifest, status and drain for a running cluster.

``repro cluster start`` leaves a ``cluster.json`` manifest in the
workdir so later invocations (``status``, ``drain``) can find the shard
sockets without talking to the router process.  Operator commands open
their own short-lived connections straight to each shard — the shard
server accepts any number of clients — so status works even if the
router is wedged, and drain works shard by shard.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from pathlib import Path

from repro.cluster import wire
from repro.cluster.metrics import aggregate_cluster_metrics
from repro.cluster.router import ClusterRouter
from repro.util.exceptions import ClusterError

MANIFEST_NAME = "cluster.json"


def write_manifest(router: ClusterRouter) -> Path:
    """Record the running topology where ``status``/``drain`` can find it."""
    manifest = {
        "schema": 1,
        "shards": [
            {
                "name": h.name,
                "socket": str(h.config.socket_path),
                "journal": str(h.config.journal_path),
                "pid": h.process.pid,
            }
            for h in router.handles
        ],
        "workdir": str(router.workdir),
    }
    path = router.workdir / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(workdir: str | Path) -> dict:
    path = Path(workdir) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise ClusterError(
            f"no cluster manifest at {path} — is a cluster running with this --workdir?"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ClusterError(f"unreadable cluster manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or "shards" not in manifest:
        raise ClusterError(f"malformed cluster manifest {path}")
    return manifest


async def shard_request(
    socket_path: str, message: dict, reply_type: str, timeout_s: float = 5.0
) -> dict:
    """One request/reply round trip on a fresh connection to a shard."""
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_unix_connection(socket_path), timeout_s
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        raise ClusterError(f"cannot reach shard at {socket_path}: {exc}") from exc
    try:
        await asyncio.wait_for(wire.client_handshake(reader, writer, role="cli"), timeout_s)
        await wire.write_frame(writer, message)
        while True:
            reply = await asyncio.wait_for(wire.read_frame(reader), timeout_s)
            if reply is None:
                raise ClusterError(f"shard at {socket_path} closed mid-request")
            if reply["type"] == reply_type:
                return reply
            if reply["type"] == "error":
                raise ClusterError(f"shard error: {reply.get('error')}")
            # results being pushed for another client's jobs: skip past
    except asyncio.TimeoutError:
        raise ClusterError(f"shard at {socket_path} did not reply within {timeout_s:g}s") from None
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()


async def cluster_status(workdir: str | Path, timeout_s: float = 5.0) -> dict:
    """Health + aggregated metrics of every shard in the manifest.

    Unreachable shards are reported (``alive: false``) rather than
    failing the whole status call — that is the situation status exists
    to show.
    """
    manifest = await asyncio.to_thread(read_manifest, workdir)
    shards: list[dict] = []
    snapshots: dict[str, dict] = {}
    for entry in manifest["shards"]:
        name, socket = str(entry["name"]), str(entry["socket"])
        try:
            health = await shard_request(socket, {"type": "health", "probe": 0}, "health_ok", timeout_s)
            metrics = await shard_request(socket, {"type": "metrics"}, "metrics_ok", timeout_s)
        except ClusterError as exc:
            shards.append({"name": name, "socket": socket, "alive": False, "error": str(exc)})
            continue
        snapshots[name] = metrics.get("metrics", {})
        shards.append(
            {
                "name": name,
                "socket": socket,
                "alive": True,
                "queue_depth": health.get("queue_depth"),
                "inflight": health.get("inflight"),
                "submitted": health.get("submitted"),
                "completed": health.get("completed"),
                "failed": health.get("failed"),
                "rejected": health.get("rejected"),
            }
        )
    return {
        "workdir": str(workdir),
        "shards": shards,
        "metrics": aggregate_cluster_metrics(snapshots),
    }


async def cluster_drain(workdir: str | Path, timeout_s: float = 60.0) -> list[str]:
    """Ask every reachable shard to finish its queue; returns who confirmed."""
    manifest = await asyncio.to_thread(read_manifest, workdir)
    drained: list[str] = []
    for entry in manifest["shards"]:
        with contextlib.suppress(ClusterError):
            reply = await shard_request(
                str(entry["socket"]), {"type": "drain"}, "drained", timeout_s
            )
            drained.append(str(reply.get("shard", entry["name"])))
    return drained
