"""Cluster-level metrics: shard health states and snapshot aggregation.

Each shard process owns a private
:class:`~repro.service.metrics.MetricsRegistry`; the router pulls
``to_dict()`` snapshots over the wire (``metrics`` frames) and this
module folds them into **one cluster export** with two views of every
series:

- the original flat name (``service_jobs_completed_total``) holding the
  **cluster-wide sum**, so every dashboard written against a single
  service keeps working unchanged against a cluster;
- a ``shard``-labelled series per member
  (``service_jobs_completed_total{shard="shard-0"}``) for per-shard
  drill-down, with the shard label merged into any labels the series
  already carried (sorted, matching the registry's own suffix format).

Histogram percentiles do not merge exactly across shards, so the
aggregate keeps honest cluster ``count``/``sum``/``max`` plus each
shard's full summary — no fabricated cluster-wide p99.
"""

from __future__ import annotations

import enum


class ShardState(enum.Enum):
    """Router-side health verdict for one shard (breaker-style).

    The numeric values are the wire/gauge encoding: the router exports
    ``cluster_shard_state{shard=...}`` with exactly these numbers, so
    dashboards can alert on ``> 0``.
    """

    CLOSED = 0  #: healthy and routable
    SUSPECT = 1  #: missed probes; routed around, not yet handed off
    DOWN = 2  #: dead or unreachable; work handed off to survivors


def _shard_series(name: str, suffix: str, shard: str) -> str:
    """Merge a ``shard`` label into an existing series suffix.

    ``suffix`` is either ``""``/``"total"`` (unlabelled series) or the
    registry's ``{k="v",...}`` form.  Label values here never contain
    commas (worker/backend names), so splitting on ``,`` is exact.
    """
    pairs: list[tuple[str, str]] = []
    if suffix.startswith("{") and suffix.endswith("}"):
        for part in suffix[1:-1].split(","):
            key, _, value = part.partition("=")
            pairs.append((key, value))
    pairs.append(("shard", f'"{shard}"'))
    pairs.sort()
    return name + "{" + ",".join(f"{k}={v}" for k, v in pairs) + "}"


def _fold_scalars(
    out: dict[str, float], shard: str, series: dict[str, float | dict]
) -> None:
    for name, value in series.items():
        parts = value if isinstance(value, dict) else {"": float(value)}
        for suffix, v in parts.items():
            key = _shard_series(name, suffix, shard)
            out[name] = out.get(name, 0.0) + float(v)
            out[key] = out.get(key, 0.0) + float(v)


def aggregate_cluster_metrics(
    shard_snapshots: dict[str, dict], router: dict | None = None
) -> dict:
    """Fold per-shard ``MetricsRegistry.to_dict()`` snapshots into one export.

    Returns a JSON-ready dict: flat names carry cluster-wide sums,
    ``{shard=...}`` series carry the per-member split, and the router's
    own registry snapshot rides along untouched under ``"router"``.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for shard in sorted(shard_snapshots):
        snapshot = shard_snapshots[shard]
        _fold_scalars(counters, shard, snapshot.get("counters", {}))
        _fold_scalars(gauges, shard, snapshot.get("gauges", {}))
        for name, summary in snapshot.get("histograms", {}).items():
            agg = histograms.setdefault(
                name, {"cluster": {"count": 0.0, "sum": 0.0, "max": 0.0}, "shards": {}}
            )
            agg["cluster"]["count"] += float(summary.get("count", 0.0))
            agg["cluster"]["sum"] += float(summary.get("sum", 0.0))
            agg["cluster"]["max"] = max(agg["cluster"]["max"], float(summary.get("max", 0.0)))
            agg["shards"][shard] = dict(summary)
    return {
        "schema": 1,
        "shards": sorted(shard_snapshots),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "router": router or {},
    }


def cluster_to_prometheus(aggregate: dict) -> str:
    """The aggregated export in Prometheus text exposition format.

    Flat series and ``shard``-labelled series emit side by side (the flat
    name is the cluster sum); histograms emit ``_count``/``_sum`` at
    cluster scope plus per-shard ``_count``/``_sum`` series.
    """
    lines: list[str] = []
    for kind in ("counters", "gauges"):
        prom_type = "counter" if kind == "counters" else "gauge"
        emitted: set[str] = set()
        for series in sorted(aggregate.get(kind, {})):
            base = series.split("{", 1)[0]
            if base not in emitted:
                emitted.add(base)
                lines.append(f"# TYPE {base} {prom_type}")
            lines.append(f"{series} {aggregate[kind][series]:g}")
    for name in sorted(aggregate.get("histograms", {})):
        agg = aggregate["histograms"][name]
        lines.append(f"# TYPE {name} summary")
        lines.append(f"{name}_count {agg['cluster']['count']:g}")
        lines.append(f"{name}_sum {agg['cluster']['sum']:g}")
        for shard in sorted(agg["shards"]):
            summary = agg["shards"][shard]
            lines.append(f'{name}_count{{shard="{shard}"}} {summary.get("count", 0):g}')
            lines.append(f'{name}_sum{{shard="{shard}"}} {summary.get("sum", 0):g}')
    return "\n".join(lines) + "\n"
