"""Consistent-hash placement of jobs onto shards, with virtual nodes.

Each shard name is hashed onto the ring at ``vnodes`` points (classic
virtual-node smoothing: with ~64 vnodes per shard the load imbalance of
plain consistent hashing drops from ~2x to a few percent).  A job key is
hashed once and lands on the first vnode clockwise; removing a shard
moves *only* that shard's keys (they slide to their ring successors),
which is exactly the property journal handoff needs — a dead shard's
replayed jobs spread over the survivors while everyone else's placement
stays put.

Hashing is ``sha1`` over stable strings, so placement is deterministic
across processes and Python runs (``hash()`` is salted per process and
must never leak in here).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.util.exceptions import ClusterError
from repro.util.validation import check_positive


def _hash(text: str) -> int:
    return int.from_bytes(hashlib.sha1(bytes(text, "utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over named shards."""

    def __init__(self, nodes: list[str] | tuple[str, ...] = (), vnodes: int = 64) -> None:
        check_positive("vnodes", vnodes)
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode hashes
        self._owner: dict[int, str] = {}  # vnode hash -> shard name
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _hash(f"{node}#{i}")
            # sha1 collisions across distinct vnode labels are not a real
            # concern; first owner wins keeps the ring deterministic anyway.
            if point not in self._owner:
                self._owner[point] = node
                bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        dead = [p for p, owner in self._owner.items() if owner == node]
        for point in dead:
            del self._owner[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def place(self, key: str, healthy: set[str] | None = None) -> str:
        """The shard owning *key*: first vnode clockwise with a healthy owner.

        ``healthy`` restricts eligible owners (an unhealthy shard's keys
        slide to their ring successors, the consistent-hash analogue of
        breaker-aware re-routing).  Raises :class:`ClusterError` when no
        eligible shard remains — the caller's signal that the cluster has
        lost every member.
        """
        eligible = self._nodes if healthy is None else (self._nodes & healthy)
        if not eligible:
            raise ClusterError("hash ring has no healthy shard to place on")
        start = bisect.bisect_right(self._points, _hash(key))
        count = len(self._points)
        for step in range(count):
            owner = self._owner[self._points[(start + step) % count]]
            if owner in eligible:
                return owner
        raise ClusterError("hash ring walk found no eligible shard")  # pragma: no cover

    def spread(self, keys: list[str], healthy: set[str] | None = None) -> dict[str, int]:
        """Placement histogram (shard -> key count), for tests and status."""
        out: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            out[self.place(key, healthy)] += 1
        return out
