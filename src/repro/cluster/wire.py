"""Length-prefixed JSON wire protocol for router ↔ shard traffic.

Every message on a cluster socket is one **frame**: a 4-byte big-endian
unsigned payload length followed by exactly that many bytes of UTF-8
JSON.  The payload must decode to a JSON *object* carrying a ``"type"``
string — anything else (bad length, oversized frame, undecodable bytes,
a non-object payload, a missing type) raises
:class:`~repro.util.exceptions.ClusterError`.  That error contract is
the whole point: a corrupt or malicious peer can cost the router one
connection, never crash the router or a shard process (fuzz-tested in
``tests/test_cluster_wire.py``, mirroring the journal fuzz suite).

Connections open with a **versioned handshake**: the client sends a
``hello`` frame carrying :data:`PROTOCOL_VERSION`; the server answers
with its own ``hello`` (echoing its shard name) or an ``error`` frame.
A version mismatch is detected by *both* sides before any other message
is interpreted, so protocol evolution degrades to a clean refusal
instead of garbled frames.

Message types (all JSON objects, ``"type"`` selects):

=============  =================================================
``hello``      handshake, both directions (``proto``, ``shard``/``role``)
``submit``     router → shard: one job spec to admit
``accepted``   shard → router: admission verdict for a submit
``rejected``   shard → router: admission refusal (+ ``retry_after_s``)
``result``     shard → router: a job reached a terminal state
``health``     client → shard: liveness/queue probe
``health_ok``  shard → client: probe answer (+ depth/inflight/counts)
``metrics``    client → shard: full metrics snapshot request
``metrics_ok`` shard → client: ``MetricsRegistry.to_dict()`` payload
``drain``      client → shard: block until queue+inflight are empty
``drained``    shard → client: drain finished
``stop``       client → shard: graceful shutdown request
``stopping``   shard → client: shutdown acknowledged
``partition``  chaos hook: ignore health probes for ``seconds``
``error``      either direction: protocol-level refusal
=============  =================================================
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.util.exceptions import ClusterError

#: bump on any incompatible frame/message change; checked by both ends
PROTOCOL_VERSION = 1

#: frames above this are refused before allocation (a 4-byte length can
#: claim 4 GiB; a factor payload for n=4096 is ~128 MiB base64 — far away)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire form (length prefix + JSON)."""
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ClusterError(f"outbound message must be a dict with a 'type' string: {message!r}")
    try:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ClusterError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ClusterError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8", errors="strict"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ClusterError(f"frame payload is {type(message).__name__}, not an object")
    if not isinstance(message.get("type"), str):
        raise ClusterError("frame payload has no 'type' string")
    return message


class FrameDecoder:
    """Sans-I/O incremental frame parser (feed bytes, collect messages).

    The asyncio paths use :func:`read_frame` directly; this class exists
    so the *same* parsing rules are property- and fuzz-testable without
    sockets, and for callers that receive arbitrary chunk boundaries.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Absorb *data*; return every complete message it finished."""
        self._buf.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buf) < _LEN.size:
                return messages
            (length,) = _LEN.unpack(bytes(self._buf[: _LEN.size]))
            if length > MAX_FRAME_BYTES:
                raise ClusterError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
            if len(self._buf) < _LEN.size + length:
                return messages
            payload = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            messages.append(_decode_payload(payload))

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def eof(self) -> None:
        """Declare end-of-stream; leftover bytes mean a truncated frame."""
        if self._buf:
            raise ClusterError(f"stream ended mid-frame ({len(self._buf)} trailing bytes)")


def decode_frames(data: bytes) -> list[dict]:
    """Parse a complete byte string into messages (strict: no tail allowed)."""
    decoder = FrameDecoder()
    messages = decoder.feed(data)
    decoder.eof()
    return messages


# -- asyncio stream helpers ----------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ClusterError(f"connection closed mid-header ({len(exc.partial)} bytes)") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ClusterError(f"connection closed mid-frame (wanted {length} bytes)") from exc
    return _decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- handshake -----------------------------------------------------------------


def hello(role: str, shard: str | None = None) -> dict:
    """The opening frame either side sends."""
    message: dict = {"type": "hello", "proto": PROTOCOL_VERSION, "role": role}
    if shard is not None:
        message["shard"] = shard
    return message


def check_hello(message: dict | None, expect_role: str | None = None) -> dict:
    """Validate a received handshake frame; raise :class:`ClusterError` otherwise."""
    if message is None:
        raise ClusterError("peer closed the connection before the handshake")
    if message.get("type") == "error":
        raise ClusterError(f"peer refused the handshake: {message.get('error', '?')}")
    if message.get("type") != "hello":
        raise ClusterError(f"expected a hello frame, got {message.get('type')!r}")
    proto = message.get("proto")
    if proto != PROTOCOL_VERSION:
        raise ClusterError(
            f"protocol version mismatch: peer speaks {proto!r}, this end {PROTOCOL_VERSION}"
        )
    if expect_role is not None and message.get("role") != expect_role:
        raise ClusterError(f"expected role {expect_role!r}, peer sent {message.get('role')!r}")
    return message


async def client_handshake(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, role: str = "router"
) -> dict:
    """Open a client connection: send our hello, validate the shard's."""
    await write_frame(writer, hello(role))
    return check_hello(await read_frame(reader), expect_role="shard")
