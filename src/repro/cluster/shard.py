"""One cluster shard: a full :class:`SolveService` behind a local socket.

A shard is a separate OS process (spawned by the router, or run directly
for tests) that owns everything a standalone service owns — executor
pool, circuit breakers, metrics registry, and a private write-ahead job
journal — plus an asyncio unix-socket server speaking the cluster wire
protocol (:mod:`repro.cluster.wire`).  The journal is the handoff
contract: every ``admitted`` record is fsynced before the admission
reply leaves the shard, so when the router finds the process dead it can
replay the shard's admitted-but-unfinished jobs onto survivors with
nothing lost.

The server accepts any number of client connections (the router holds
one persistent connection; ``repro cluster status``/``drain`` open
short-lived ones).  Job results are pushed to the connection that
submitted the job; a connection that vanished simply has its results
dropped — the router's journal handoff re-derives them.

A malformed frame costs the peer its connection (an ``error`` frame,
then close), never the shard: the connection handler catches
:class:`~repro.util.exceptions.ClusterError` per connection.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cluster import wire
from repro.service.core import ServiceConfig, SolveService
from repro.service.job import Job, JobResult
from repro.util.exceptions import ClusterError, ReproError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ShardConfig:
    """Everything one shard process needs (picklable: plain fields only)."""

    shard_id: int
    socket_path: str
    journal_path: str
    workers: tuple[str, ...] = ("tardis:2",)
    executor: str = "thread"
    exec_workers: int | None = 2
    max_queue_depth: int = 256
    job_timeout_s: float = 60.0
    #: ship completed factors back over the wire (chaos bit-identity checks)
    return_factors: bool = False
    #: shard-journal rotation threshold (long-lived shards compact their WAL)
    journal_compact_bytes: int | None = 1 << 20

    def __post_init__(self) -> None:
        check_positive("shard_id + 1", self.shard_id + 1)

    @property
    def name(self) -> str:
        return f"shard-{self.shard_id}"

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            workers=self.workers,
            max_queue_depth=self.max_queue_depth,
            job_timeout_s=self.job_timeout_s,
            executor=self.executor,
            exec_workers=self.exec_workers,
            journal_path=self.journal_path,
            journal_compact_bytes=self.journal_compact_bytes,
            keep_factors=self.return_factors,
        )


def encode_factor(factor: np.ndarray) -> dict:
    """A factor as a JSON-safe payload (raw bytes survive bit-exactly)."""
    arr = np.ascontiguousarray(factor)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_factor(payload: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(payload["data"].encode("ascii"), validate=True)
        arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return arr.reshape([int(d) for d in payload["shape"]]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterError(f"undecodable factor payload: {exc}") from exc


def result_message(result: JobResult, key: str, shard: str, with_factor: bool) -> dict:
    message = {
        "type": "result",
        "key": key,
        "job_id": int(result.job_id),
        "status": result.status.value,
        "shard": shard,
        "attempts": int(result.attempts),
        "retries": int(result.retries),
        "wait_s": float(result.wait_s),
        "exec_s": float(result.exec_s),
        "latency_s": float(result.latency_s),
        "error": result.error,
    }
    if with_factor and result.factor is not None:
        message["factor"] = encode_factor(result.factor)
    return message


class ShardServer:
    """The in-process shard: service + socket server + result pump."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.service = SolveService(config.service_config())
        self._server: asyncio.Server | None = None
        self._pump: asyncio.Task | None = None
        #: job_id -> (job key, the writer that submitted it)
        self._owners: dict[int, tuple[str, asyncio.StreamWriter]] = {}
        #: open client connections, so ``stop()`` can end them cleanly
        self._writers: set[asyncio.StreamWriter] = set()
        #: chaos hook — monotonic deadline until which health probes are ignored
        self._partition_until = 0.0
        #: set by ``serve_until``'s caller so a ``stop`` frame can end the process
        self._stop_event: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        Path(self.config.socket_path).parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(FileNotFoundError):
            Path(self.config.socket_path).unlink()
        await self.service.start_executor()
        self.service.start()
        self._pump = asyncio.get_running_loop().create_task(self._pump_results())
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.config.socket_path
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # End live connections now, so their handler tasks exit on EOF
        # instead of being cancelled mid-read at event-loop teardown.
        writers: list[asyncio.StreamWriter] = list(self._writers)
        for writer in writers:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
        if self._pump is not None:
            self._pump.cancel()
            await asyncio.gather(self._pump, return_exceptions=True)
            self._pump = None
        await self.service.stop()
        with contextlib.suppress(FileNotFoundError):
            Path(self.config.socket_path).unlink()

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        await self.start()
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    # -- result push -------------------------------------------------------------

    async def _pump_results(self) -> None:
        while True:
            result = await self.service.completions.get()
            owner = self._owners.pop(result.job_id, None)
            if owner is None:
                continue  # submitter hung up; the journal is the record
            key, writer = owner
            message = result_message(
                result, key, self.config.name, self.config.return_factors
            )
            try:
                await wire.write_frame(writer, message)
            except (ClusterError, ConnectionError, OSError):
                # The peer vanished between completion and push.  Nothing
                # is lost: the journal holds the terminal record, and the
                # router's handoff path re-derives any result it misses.
                continue

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            opening = await wire.read_frame(reader)
            try:
                wire.check_hello(opening)
            except ClusterError as exc:
                with contextlib.suppress(ClusterError, ConnectionError, OSError):
                    await wire.write_frame(writer, {"type": "error", "error": str(exc)})
                return
            await wire.write_frame(
                writer, wire.hello("shard", shard=self.config.name)
            )
            while True:
                message = await wire.read_frame(reader)
                if message is None:
                    return
                await self._dispatch(message, writer)
        except (ClusterError, ConnectionError, OSError) as exc:
            # One bad peer costs one connection, never the shard.
            with contextlib.suppress(ClusterError, ConnectionError, OSError):
                await wire.write_frame(writer, {"type": "error", "error": str(exc)})
        except asyncio.CancelledError:
            return  # event-loop shutdown mid-read: close quietly, not noisily
        finally:
            self._writers.discard(writer)
            self._owners = {
                job_id: (key, w)
                for job_id, (key, w) in self._owners.items()
                if w is not writer
            }
            writer.close()
            with contextlib.suppress(ConnectionError, OSError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, message: dict, writer: asyncio.StreamWriter) -> None:
        kind = message["type"]
        if kind == "submit":
            await self._handle_submit(message, writer)
        elif kind == "health":
            await self._handle_health(message, writer)
        elif kind == "metrics":
            await wire.write_frame(
                writer,
                {
                    "type": "metrics_ok",
                    "shard": self.config.name,
                    "metrics": self.service.metrics.to_dict(),
                },
            )
        elif kind == "drain":
            await self.service.drain()
            await wire.write_frame(writer, {"type": "drained", "shard": self.config.name})
        elif kind == "stop":
            await wire.write_frame(writer, {"type": "stopping", "shard": self.config.name})
            asyncio.get_running_loop().call_soon(self._request_stop)
        elif kind == "partition":
            seconds = float(message.get("seconds", 0.0))
            self._partition_until = time.monotonic() + seconds
            await wire.write_frame(writer, {"type": "partition_ok", "seconds": seconds})
        else:
            await wire.write_frame(
                writer, {"type": "error", "error": f"unknown message type {kind!r}"}
            )

    async def _handle_submit(self, message: dict, writer: asyncio.StreamWriter) -> None:
        try:
            job = Job.from_spec(message["spec"])
        except (KeyError, TypeError, ValueError, AttributeError, ReproError) as exc:
            await wire.write_frame(
                writer, {"type": "rejected", "key": message.get("key"), "reason": f"bad spec: {exc}"}
            )
            return
        # Register the owner before admission: the admitted record is
        # fsynced inside submit(), and a tiny job could complete before a
        # post-submit registration ran.
        self._owners[job.job_id] = (job.key, writer)
        decision = self.service.submit(job)
        if decision.accepted:
            await wire.write_frame(
                writer, {"type": "accepted", "key": job.key, "shard": self.config.name}
            )
        else:
            self._owners.pop(job.job_id, None)
            await wire.write_frame(
                writer,
                {
                    "type": "rejected",
                    "key": job.key,
                    "shard": self.config.name,
                    "reason": decision.reason,
                    "retry_after_s": decision.retry_after_s,
                },
            )

    async def _handle_health(self, message: dict, writer: asyncio.StreamWriter) -> None:
        if time.monotonic() < self._partition_until:
            return  # chaos: the probe times out router-side, as a real partition would
        m = self.service.metrics
        await wire.write_frame(
            writer,
            {
                "type": "health_ok",
                "shard": self.config.name,
                "probe": message.get("probe"),
                "queue_depth": self.service.queue.depth,
                "inflight": len(self.service._inflight),
                "submitted": int(m["service_jobs_submitted_total"].value()),
                "completed": int(m["service_jobs_completed_total"].value()),
                "failed": int(m["service_jobs_failed_total"].value()),
                "rejected": int(m["service_jobs_rejected_total"].value()),
            },
        )

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()


async def _shard_main(server: ShardServer) -> None:
    stop = asyncio.Event()
    server._stop_event = stop
    await server.serve_until(stop)


def shard_entry(config: ShardConfig) -> None:
    """Process entry point (multiprocessing spawn target).

    The server (and with it the service, executor pool and journal) is
    built *before* the event loop starts: construction does blocking
    file I/O, and nothing is serving yet.
    """
    asyncio.run(_shard_main(ShardServer(config)))
