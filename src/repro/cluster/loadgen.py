"""Cluster load generation: drive a :class:`ClusterRouter` like a service.

Reuses the single-service workload generator (:func:`make_jobs` — job *i*
is a pure function of ``(seed, i)``, so the same config produces the same
jobs whether they run inline, on one service, or sharded) and mirrors its
two driving modes:

- **closed loop**: a fixed outstanding window; rejections honor the
  shard's ``retry_after_s`` hint, so every job eventually completes —
  including across a mid-run shard kill, where completions simply stall
  until the health loop declares the shard DOWN and hands its work off;
- **open loop**: Poisson arrivals; rejections are recorded and lost.

``kill_shard_after`` turns a load run into the CI smoke scenario: after
that many completions the chosen shard is SIGKILLed mid-queue, and the
report's ``lost``/``duplicates`` fields make the no-lost /
no-duplicated-jobs invariant a one-line assertion.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.cluster.router import ClusterConfig, ClusterResult, ClusterRouter
from repro.service.loadgen import ARRIVAL_RNG_KEY, LoadGenConfig, make_jobs
from repro.util.formatting import render_table
from repro.util.rng import derive_rng
from repro.util.validation import require


@dataclass
class ClusterLoadReport:
    """What a cluster load run produced, ready to render or assert on."""

    wall_s: float
    shards: int
    submitted: int
    completed: int
    failed: int
    lost: int
    duplicates: int
    handoffs: int
    reroutes: int
    p50_latency_s: float
    p90_latency_s: float
    p99_latency_s: float
    jobs_per_s: float
    per_shard_completed: dict[str, int]

    @classmethod
    def from_router(cls, router: ClusterRouter, wall_s: float) -> "ClusterLoadReport":
        m = router.metrics
        latency = m["cluster_latency_seconds"]
        completed = sum(1 for r in router.results.values() if r.completed)
        failed = sum(1 for r in router.results.values() if not r.completed)
        lost = len(router._submitted_keys - set(router.results))
        per_shard = {
            h.name: int(m["cluster_jobs_completed_total"].value(shard=h.name))
            for h in router.handles
        }
        return cls(
            wall_s=wall_s,
            shards=router.config.shards,
            submitted=len(router._submitted_keys),
            completed=completed,
            failed=failed,
            lost=lost,
            duplicates=int(m["cluster_duplicate_results_total"].value()),
            handoffs=int(m["cluster_handoff_jobs_total"].value()),
            reroutes=int(m["cluster_reroutes_total"].value()),
            p50_latency_s=latency.percentile(0.5),
            p90_latency_s=latency.percentile(0.9),
            p99_latency_s=latency.percentile(0.99),
            jobs_per_s=completed / wall_s if wall_s > 0 else 0.0,
            per_shard_completed=per_shard,
        )

    def render(self, title: str = "cluster load report") -> str:
        split = ", ".join(f"{k}={v}" for k, v in sorted(self.per_shard_completed.items()))
        rows = [
            ("wall seconds", f"{self.wall_s:.3f}"),
            ("shards", self.shards),
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("lost (accepted, no result)", self.lost),
            ("duplicate results dropped", self.duplicates),
            ("handoff replays", self.handoffs),
            ("reroutes", self.reroutes),
            ("latency p50/p90/p99 (s)", f"{self.p50_latency_s:.4f} / "
                                        f"{self.p90_latency_s:.4f} / {self.p99_latency_s:.4f}"),
            ("throughput (jobs/s)", f"{self.jobs_per_s:.2f}"),
            ("per-shard completions", split or "-"),
        ]
        return render_table(["metric", "value"], rows, title=title)


async def run_cluster_closed_loop(
    router: ClusterRouter,
    cfg: LoadGenConfig,
    kill_shard_after: int | None = None,
    kill_index: int = 0,
) -> list[ClusterResult]:
    """Fixed outstanding window over the router; optional mid-run shard kill."""
    jobs = make_jobs(cfg)
    next_index = 0
    outstanding = 0
    completions = 0
    killed = False

    async def submit_next() -> None:
        nonlocal next_index, outstanding
        job = jobs[next_index]
        next_index += 1
        while True:
            decision = await router.submit(job)
            if decision.accepted:
                outstanding += 1
                return
            await asyncio.sleep(decision.retry_after_s or 0.01)

    while next_index < len(jobs) and outstanding < cfg.concurrency:
        await submit_next()
    while outstanding:
        await router.completions.get()
        outstanding -= 1
        completions += 1
        if kill_shard_after is not None and not killed and completions >= kill_shard_after:
            killed = True
            router.kill_shard(kill_index)
        if next_index < len(jobs):
            await submit_next()
    # The window can empty while handed-off replays are still in flight.
    await router.drain(timeout_s=120.0)
    return [router.results[j.key] for j in jobs if j.key in router.results]


async def run_cluster_open_loop(
    router: ClusterRouter, cfg: LoadGenConfig
) -> list[ClusterResult]:
    """Poisson arrivals at ``cfg.rate``; rejections are recorded, not retried."""
    require(cfg.rate is not None, "open loop needs a rate")
    gen = derive_rng(cfg.seed, ARRIVAL_RNG_KEY)
    for job in make_jobs(cfg):
        await router.submit(job)
        await asyncio.sleep(float(gen.exponential(1.0 / cfg.rate)))
    await router.drain(timeout_s=120.0)
    return [router.results[k] for k in sorted(router.results)]


async def run_cluster_load(
    cluster_cfg: ClusterConfig,
    cfg: LoadGenConfig,
    kill_shard_after: int | None = None,
    kill_index: int = 0,
) -> tuple[ClusterLoadReport, list[ClusterResult], dict]:
    """Spin up a cluster, drive it with *cfg* end to end, and report.

    Returns ``(report, results, aggregate)`` where *aggregate* is the
    cluster-level metrics export collected from the surviving shards
    just before teardown (a killed shard contributes nothing — its
    completions live on in the survivors' counters via handoff).
    """
    router = ClusterRouter(cluster_cfg)
    await router.start()
    try:
        t0 = time.monotonic()
        if cfg.rate is not None:
            results = await run_cluster_open_loop(router, cfg)
        else:
            results = await run_cluster_closed_loop(
                router, cfg, kill_shard_after=kill_shard_after, kill_index=kill_index
            )
        wall_s = time.monotonic() - t0
        aggregate = await router.cluster_metrics()
    finally:
        await router.stop()
    return ClusterLoadReport.from_router(router, wall_s), results, aggregate


def bench_cluster(
    cfg: LoadGenConfig,
    shard_counts: tuple[int, ...] = (1, 3),
    workers_per_shard: tuple[str, ...] = ("tardis:2",),
    exec_workers: int = 2,
) -> dict:
    """Throughput scaling document: the same workload at each shard count.

    The acceptance bar for the cluster front-end: aggregate jobs/s at N
    shards beats the 1-shard run of the identical workload (shards are
    separate processes, so NumPy kernels scale past a single GIL).
    """
    runs = []
    for shards in shard_counts:
        cluster_cfg = ClusterConfig(
            shards=shards,
            workers=workers_per_shard,
            exec_workers=exec_workers,
        )
        report, _, _ = asyncio.run(run_cluster_load(cluster_cfg, cfg))
        runs.append(
            {
                "shards": shards,
                "jobs_per_s": report.jobs_per_s,
                "wall_s": report.wall_s,
                "completed": report.completed,
                "failed": report.failed,
                "lost": report.lost,
                "duplicates": report.duplicates,
                "p50_latency_s": report.p50_latency_s,
                "p99_latency_s": report.p99_latency_s,
            }
        )
    from repro.experiments.stamp import run_stamp

    baseline = runs[0]["jobs_per_s"]
    return {
        "schema": 1,
        "stamp": run_stamp(),
        "workload": {
            "jobs": cfg.jobs,
            "sizes": list(cfg.sizes),
            "block_size": cfg.block_size,
            "scheme": cfg.scheme,
            "seed": cfg.seed,
            "concurrency": cfg.concurrency,
        },
        "runs": runs,
        "speedup_vs_one_shard": {
            str(r["shards"]): (r["jobs_per_s"] / baseline if baseline > 0 else 0.0)
            for r in runs
        },
    }
