"""Sharded cluster front-end: scale the solve service past one process.

The service layer (:mod:`repro.service`) gives one process admission
control, retries, breakers and a crash-recoverable journal.  This
package multiplies that by N: a :class:`~repro.cluster.router.ClusterRouter`
consistent-hash-places jobs across N shard *processes* (each a full
:class:`~repro.service.core.SolveService`), health-checks them with a
breaker-style CLOSED/SUSPECT/DOWN state machine, and — when a shard dies
— replays its journal's admitted-but-unfinished jobs onto survivors,
deduplicated by job key.  Deterministic jobs make the replay safe: the
rerun factor is bit-identical, so at-least-once execution still yields
exactly-once results.

Modules:

- :mod:`~repro.cluster.wire` — length-prefixed JSON frames + handshake;
- :mod:`~repro.cluster.hashring` — consistent hashing with virtual nodes;
- :mod:`~repro.cluster.shard` — the shard process (service behind a socket);
- :mod:`~repro.cluster.router` — placement, health, handoff, chaos hooks;
- :mod:`~repro.cluster.metrics` — per-shard → cluster metric aggregation;
- :mod:`~repro.cluster.loadgen` — cluster load driver + scaling bench.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.loadgen import ClusterLoadReport, bench_cluster, run_cluster_load
from repro.cluster.metrics import ShardState, aggregate_cluster_metrics, cluster_to_prometheus
from repro.cluster.router import ClusterConfig, ClusterResult, ClusterRouter
from repro.cluster.shard import ShardConfig, ShardServer, shard_entry

__all__ = [
    "ClusterConfig",
    "ClusterLoadReport",
    "ClusterResult",
    "ClusterRouter",
    "HashRing",
    "ShardConfig",
    "ShardServer",
    "ShardState",
    "aggregate_cluster_metrics",
    "bench_cluster",
    "cluster_to_prometheus",
    "run_cluster_load",
    "shard_entry",
]
