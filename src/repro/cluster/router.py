"""The cluster front-end: consistent-hash routing over N shard processes.

:class:`ClusterRouter` spawns ``shards`` independent shard processes
(each a full :class:`~repro.service.core.SolveService` with its own
executor pool, breakers, metrics and write-ahead journal — see
:mod:`repro.cluster.shard`), connects to each over a unix socket with a
versioned handshake, and places jobs by **consistent hashing** of the
job key over the healthy members (:mod:`repro.cluster.hashring`).

Health is tracked per shard with a breaker-style three-state machine:

- **CLOSED** (healthy): routable; probed every ``health_interval_s``;
- **SUSPECT**: missed ``suspect_after`` consecutive probes — new jobs
  route *away* (their ring placement slides to the next healthy shard)
  but nothing is handed off yet; a successful probe returns it to CLOSED;
- **DOWN**: the process died, the connection broke, or ``down_after``
  probes went unanswered — the shard is removed from routing and its
  work is **handed off**.

Handoff is journal-backed: every shard fsyncs a job's ``admitted``
record before acknowledging the submit, so the dead shard's journal is a
complete account of what it owed.  The router replays the journal's
admitted-but-unfinished entries (plus its own record of in-flight
submissions) onto surviving shards, **deduplicated by job key** against
results it already holds — the no-lost / no-duplicated-jobs invariant
the chaos battery asserts end to end.  Re-running a replayed job is safe
because jobs are deterministic in ``(seed, job_id)``: a duplicate
execution produces the bit-identical factor and is dropped at the
results map, never surfaced twice.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster import wire
from repro.cluster.hashring import HashRing
from repro.cluster.metrics import ShardState, aggregate_cluster_metrics
from repro.cluster.shard import ShardConfig, decode_factor, shard_entry
from repro.resilience.journal import incomplete_jobs, read_journal
from repro.service.job import Job
from repro.service.metrics import MetricsRegistry
from repro.service.queue import AdmissionDecision
from repro.util.exceptions import ClusterError, JournalError
from repro.util.validation import check_positive, require

#: longest sockaddr_un path we will ask the kernel for (portable limit ~104)
_MAX_SOCKET_PATH = 96


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and health-checking knobs for one cluster."""

    shards: int = 3
    #: journals + the cluster manifest live here; a fresh tempdir when unset
    workdir: str | Path | None = None
    vnodes: int = 64
    health_interval_s: float = 0.5
    probe_timeout_s: float = 1.0
    #: consecutive missed probes before a shard is SUSPECT (rerouted around)
    suspect_after: int = 1
    #: consecutive missed probes before a shard is DOWN (handed off)
    down_after: int = 3
    #: per-shard service wiring
    workers: tuple[str, ...] = ("tardis:2",)
    executor: str = "thread"
    exec_workers: int | None = 2
    max_queue_depth: int = 256
    job_timeout_s: float = 60.0
    return_factors: bool = False
    journal_compact_bytes: int | None = 1 << 20
    #: shard process spawn + handshake budget (cold numpy import included)
    connect_timeout_s: float = 60.0
    submit_timeout_s: float = 15.0

    def __post_init__(self) -> None:
        check_positive("shards", self.shards)
        check_positive("vnodes", self.vnodes)
        check_positive("health_interval_s", self.health_interval_s)
        check_positive("probe_timeout_s", self.probe_timeout_s)
        check_positive("suspect_after", self.suspect_after)
        require(
            self.down_after >= self.suspect_after,
            "down_after must be >= suspect_after",
        )


@dataclass
class ClusterResult:
    """One job's terminal record as the router saw it."""

    key: str
    job_id: int
    status: str
    shard: str
    attempts: int = 1
    retries: int = 0
    wait_s: float = 0.0
    exec_s: float = 0.0
    latency_s: float = 0.0
    error: str | None = None
    factor: object | None = field(default=None, repr=False)

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class _ShardHandle:
    """Router-side bookkeeping for one shard process."""

    def __init__(self, config: ShardConfig, process: multiprocessing.process.BaseProcess) -> None:
        self.config = config
        self.process = process
        self.name = config.name
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task | None = None
        self.state = ShardState.CLOSED
        self.missed_probes = 0
        self.last_health: dict = {}
        #: admitted on this shard, no result yet (job key -> Job)
        self.pending: dict[str, Job] = {}
        #: submit replies in flight (job key -> future resolving to the frame)
        self.submit_waiters: dict[str, asyncio.Future] = {}
        #: request/reply correlation for health/metrics/drain/partition/stop
        self.replies: dict[str, asyncio.Queue] = {}

    @property
    def connected(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    def reply_queue(self, kind: str) -> asyncio.Queue:
        if kind not in self.replies:
            self.replies[kind] = asyncio.Queue()
        return self.replies[kind]

    async def request(self, message: dict, reply_type: str, timeout_s: float) -> dict:
        """Send *message* and await the next frame of *reply_type*."""
        if not self.connected:
            raise ClusterError(f"{self.name} is not connected")
        queue = self.reply_queue(reply_type)
        await wire.write_frame(self.writer, message)
        try:
            return await asyncio.wait_for(queue.get(), timeout_s)
        except asyncio.TimeoutError:
            raise ClusterError(
                f"{self.name} did not answer {message['type']!r} within {timeout_s:g}s"
            ) from None

    def close_connection(self) -> None:
        if self.writer is not None:
            with contextlib.suppress(ConnectionError, OSError):
                self.writer.close()
            self.writer = None
            self.reader = None


class ClusterRouter:
    """Spawns, health-checks and routes over a fleet of shard processes."""

    def __init__(self, config: ClusterConfig, metrics: MetricsRegistry | None = None) -> None:
        self.config = config
        self.workdir = Path(
            config.workdir if config.workdir is not None else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._socket_dir = self._pick_socket_dir()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring = HashRing(vnodes=config.vnodes)
        self.handles: list[_ShardHandle] = []
        self.results: dict[str, ClusterResult] = {}
        self.completions: asyncio.Queue[ClusterResult] = asyncio.Queue()
        self._submitted_keys: set[str] = set()
        self._health_task: asyncio.Task | None = None
        self._stopping = False
        self._started = False
        m = self.metrics
        self._submitted_c = m.counter(
            "cluster_jobs_submitted_total", "jobs the router placed, by shard"
        )
        self._completed_c = m.counter("cluster_jobs_completed_total", "terminal completions, by shard")
        self._failed_c = m.counter("cluster_jobs_failed_total", "terminal failures, by shard")
        self._rejected_c = m.counter("cluster_jobs_rejected_total", "shard admission refusals")
        self._duplicates_c = m.counter(
            "cluster_duplicate_results_total",
            "results dropped because the key already resolved (handoff replays)",
        )
        self._handoffs_c = m.counter(
            "cluster_handoff_jobs_total", "jobs replayed from a dead shard's journal"
        )
        self._reroutes_c = m.counter(
            "cluster_reroutes_total", "placements diverted off the ring owner by health state"
        )
        self._probes_c = m.counter("cluster_health_probes_total", "health probes by shard and outcome")
        self._state_g = m.gauge(
            "cluster_shard_state", "per-shard health state (0 closed, 1 suspect, 2 down)"
        )
        self._latency_h = m.histogram("cluster_latency_seconds", "submit-to-result latency")

    # -- paths -------------------------------------------------------------------

    def _pick_socket_dir(self) -> Path:
        """Unix sockets under the workdir unless sockaddr_un would overflow."""
        probe = self.workdir / f"s{self.config.shards - 1}.sock"
        if len(str(probe)) <= _MAX_SOCKET_PATH:
            return self.workdir
        return Path(tempfile.mkdtemp(prefix="repro-cl-"))

    def socket_path(self, index: int) -> Path:
        return self._socket_dir / f"s{index}.sock"

    def journal_path(self, index: int) -> Path:
        return self.workdir / f"shard-{index}.journal.jsonl"

    def shard_config(self, index: int) -> ShardConfig:
        c = self.config
        return ShardConfig(
            shard_id=index,
            socket_path=str(self.socket_path(index)),
            journal_path=str(self.journal_path(index)),
            workers=c.workers,
            executor=c.executor,
            exec_workers=c.exec_workers,
            max_queue_depth=c.max_queue_depth,
            job_timeout_s=c.job_timeout_s,
            return_factors=c.return_factors,
            journal_compact_bytes=c.journal_compact_bytes,
        )

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        require(not self._started, "cluster already started")
        self._started = True
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.config.shards):
            cfg = self.shard_config(index)
            process = ctx.Process(target=shard_entry, args=(cfg,), daemon=True)
            process.start()
            self.handles.append(_ShardHandle(cfg, process))
        # Connect after all spawns so the imports cold-start in parallel.
        for handle in self.handles:
            await self._connect(handle)
            self.ring.add_node(handle.name)
            self._state_g.set(handle.state.value, shard=handle.name)
        self._health_task = asyncio.get_running_loop().create_task(self._health_loop())

    async def _connect(self, handle: _ShardHandle) -> None:
        deadline = time.monotonic() + self.config.connect_timeout_s
        last_error: Exception | None = None
        reader: asyncio.StreamReader
        writer: asyncio.StreamWriter
        while time.monotonic() < deadline:
            if not handle.process.is_alive() and handle.process.exitcode is not None:
                raise ClusterError(
                    f"{handle.name} exited with code {handle.process.exitcode} before serving"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(handle.config.socket_path)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                await asyncio.sleep(0.05)
                continue
            try:
                await wire.client_handshake(reader, writer)
            except ClusterError:
                with contextlib.suppress(ConnectionError, OSError):
                    writer.close()
                raise
            handle.reader, handle.writer = reader, writer
            handle.reader_task = asyncio.get_running_loop().create_task(self._read_loop(handle))
            return
        raise ClusterError(
            f"could not connect to {handle.name} within "
            f"{self.config.connect_timeout_s:g}s: {last_error}"
        )

    async def stop(self) -> None:
        """Graceful teardown: stop frames, then join (escalating to kill)."""
        self._stopping = True
        if self._health_task is not None:
            self._health_task.cancel()
            await asyncio.gather(self._health_task, return_exceptions=True)
            self._health_task = None
        for handle in self.handles:
            if handle.connected:
                with contextlib.suppress(ClusterError, ConnectionError, OSError):
                    await handle.request(
                        {"type": "stop"}, "stopping", self.config.probe_timeout_s
                    )
            if handle.reader_task is not None:
                handle.reader_task.cancel()
                await asyncio.gather(handle.reader_task, return_exceptions=True)
                handle.reader_task = None
            handle.close_connection()
        for handle in self.handles:
            await asyncio.to_thread(handle.process.join, 5.0)
            if handle.process.is_alive():
                handle.process.kill()
                await asyncio.to_thread(handle.process.join, 5.0)
            with contextlib.suppress(FileNotFoundError):
                Path(handle.config.socket_path).unlink()

    async def drain(self, poll_s: float = 0.02, timeout_s: float | None = None) -> None:
        """Wait until every accepted job has a terminal result."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while self._submitted_keys - set(self.results):
            if deadline is not None and time.monotonic() > deadline:
                missing = sorted(self._submitted_keys - set(self.results))
                raise ClusterError(f"drain timed out with {len(missing)} unresolved jobs: {missing[:5]}")
            await asyncio.sleep(poll_s)

    # -- routing -----------------------------------------------------------------

    def _healthy_names(self) -> set[str]:
        return {
            h.name
            for h in self.handles
            if h.state is ShardState.CLOSED and h.connected
        }

    def _handle_named(self, name: str) -> _ShardHandle:
        for handle in self.handles:
            if handle.name == name:
                return handle
        raise ClusterError(f"no shard named {name!r}")

    async def submit(self, job: Job) -> AdmissionDecision:
        """Place *job* on its ring owner (or the next healthy successor).

        Returns the shard's admission decision.  A shard that dies
        mid-submit is marked DOWN (triggering handoff) and the job is
        retried on the survivors, so callers see a dead shard as at most
        extra latency, never an error.
        """
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.config.shards + 1:
                raise ClusterError(f"submit of {job.key} exhausted every shard")
            healthy = self._healthy_names()
            if not healthy:
                raise ClusterError("no healthy shard to submit to")
            owner = self.ring.place(job.key, healthy)
            if self.ring.nodes != healthy and owner != self.ring.place(job.key):
                self._reroutes_c.inc(shard=owner)
            handle = self._handle_named(owner)
            try:
                reply = await self._submit_on(handle, job)
            except ClusterError:
                await self._shard_lost(handle)
                continue
            if reply["type"] == "accepted":
                self._submitted_keys.add(job.key)
                self._submitted_c.inc(shard=handle.name)
                if job.key not in self.results:
                    handle.pending[job.key] = job
                return AdmissionDecision(True, reason=f"accepted by {handle.name}")
            self._rejected_c.inc(shard=handle.name)
            return AdmissionDecision(
                False,
                reason=str(reply.get("reason", "rejected")),
                retry_after_s=reply.get("retry_after_s"),
            )

    async def _submit_on(self, handle: _ShardHandle, job: Job) -> dict:
        if not handle.connected:
            raise ClusterError(f"{handle.name} is not connected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        handle.submit_waiters[job.key] = future
        try:
            await wire.write_frame(
                handle.writer,
                {"type": "submit", "key": job.key, "spec": job.to_spec()},
            )
            return await asyncio.wait_for(future, self.config.submit_timeout_s)
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise ClusterError(f"submit to {handle.name} failed: {exc}") from exc
        finally:
            handle.submit_waiters.pop(job.key, None)

    # -- inbound frames ----------------------------------------------------------

    async def _read_loop(self, handle: _ShardHandle) -> None:
        try:
            while True:
                message = await wire.read_frame(handle.reader)
                if message is None:
                    break
                self._on_message(handle, message)
        except (ClusterError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        if not self._stopping:
            await self._shard_lost(handle)

    def _on_message(self, handle: _ShardHandle, message: dict) -> None:
        kind = message["type"]
        if kind in ("accepted", "rejected"):
            waiter = handle.submit_waiters.get(str(message.get("key")))
            if waiter is not None and not waiter.done():
                waiter.set_result(message)
        elif kind == "result":
            self._on_result(handle, message)
        elif kind in ("health_ok", "metrics_ok", "drained", "stopping", "partition_ok", "error"):
            handle.reply_queue(kind).put_nowait(message)
        # unknown pushes are ignored: forward compatibility over strictness

    def _on_result(self, handle: _ShardHandle, message: dict) -> None:
        key = str(message.get("key"))
        handle.pending.pop(key, None)
        if key in self.results:
            # A handoff replay (or a lost-result rerun) finishing twice:
            # deterministic jobs make both copies bit-identical, so the
            # first one wins and the duplicate is only a counter.
            self._duplicates_c.inc(shard=handle.name)
            return
        factor = None
        if "factor" in message:
            try:
                factor = decode_factor(message["factor"])
            except ClusterError:
                factor = None
        result = ClusterResult(
            key=key,
            job_id=int(message.get("job_id", -1)),
            status=str(message.get("status", "failed")),
            shard=str(message.get("shard", handle.name)),
            attempts=int(message.get("attempts", 1)),
            retries=int(message.get("retries", 0)),
            wait_s=float(message.get("wait_s", 0.0)),
            exec_s=float(message.get("exec_s", 0.0)),
            latency_s=float(message.get("latency_s", 0.0)),
            error=message.get("error"),
            factor=factor,
        )
        self.results[key] = result
        if result.completed:
            self._completed_c.inc(shard=result.shard)
        else:
            self._failed_c.inc(shard=result.shard)
        self._latency_h.observe(result.latency_s)
        self.completions.put_nowait(result)

    # -- health ------------------------------------------------------------------

    async def _health_loop(self) -> None:
        probe = 0
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            probe += 1
            for handle in list(self.handles):
                if handle.state is ShardState.DOWN:
                    continue
                await self._probe(handle, probe)

    async def _probe(self, handle: _ShardHandle, probe: int) -> None:
        if not handle.process.is_alive():
            self._probes_c.inc(shard=handle.name, outcome="dead")
            await self._shard_lost(handle)
            return
        try:
            reply = await handle.request(
                {"type": "health", "probe": probe}, "health_ok", self.config.probe_timeout_s
            )
        except ClusterError:
            handle.missed_probes += 1
            self._probes_c.inc(shard=handle.name, outcome="timeout")
            if handle.missed_probes >= self.config.down_after:
                await self._shard_lost(handle)
            elif handle.missed_probes >= self.config.suspect_after:
                self._set_state(handle, ShardState.SUSPECT)
            return
        handle.missed_probes = 0
        handle.last_health = reply
        self._probes_c.inc(shard=handle.name, outcome="ok")
        if handle.state is ShardState.SUSPECT:
            self._set_state(handle, ShardState.CLOSED)  # the partition healed

    def _set_state(self, handle: _ShardHandle, state: ShardState) -> None:
        handle.state = state
        self._state_g.set(state.value, shard=handle.name)

    # -- failure + handoff -------------------------------------------------------

    async def _shard_lost(self, handle: _ShardHandle) -> None:
        """Declare *handle* DOWN and hand its unfinished work to survivors."""
        if handle.state is ShardState.DOWN:
            return
        self._set_state(handle, ShardState.DOWN)
        if handle.reader_task is not None and handle.reader_task is not asyncio.current_task():
            handle.reader_task.cancel()
        handle.close_connection()
        # In-flight submits never got an admission reply; fail them so the
        # submit() retry loop re-places the job (they are *not* handed off
        # here — their caller still owns them).
        submitting = set(handle.submit_waiters)
        for key, waiter in list(handle.submit_waiters.items()):
            if not waiter.done():
                waiter.set_exception(ClusterError(f"{handle.name} went down mid-submit"))
        await self._handoff(handle, exclude=submitting)

    async def _handoff(self, handle: _ShardHandle, exclude: set[str]) -> None:
        """Replay the dead shard's admitted-but-unfinished jobs on survivors."""
        candidates: dict[str, Job] = {}
        try:
            records = await asyncio.to_thread(read_journal, handle.config.journal_path)
            for job in incomplete_jobs(records):
                candidates[job.key] = job
        except JournalError:
            # A corrupt journal degrades handoff to the router's own
            # pending map; anything it knew about is still replayed.
            pass
        for key, job in handle.pending.items():
            candidates.setdefault(key, job)
        handle.pending.clear()
        for key, job in candidates.items():
            if key in self.results or key in exclude:
                continue
            self._handoffs_c.inc(shard=handle.name)
            decision = await self.submit(job)
            if not decision.accepted:
                # Survivors refused (full queues): retry after the hint so
                # the no-lost-jobs invariant holds even under overload.
                await asyncio.sleep(decision.retry_after_s or 0.05)
                await self.submit(job)

    # -- chaos + operations ------------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """SIGKILL a shard process (chaos hook: no goodbye, no flush)."""
        self.handles[index].process.kill()

    async def partition_shard(self, index: int, seconds: float) -> None:
        """Make a shard ignore health probes (chaos: router↔shard partition)."""
        handle = self.handles[index]
        await handle.request(
            {"type": "partition", "seconds": seconds},
            "partition_ok",
            self.config.probe_timeout_s,
        )

    async def restart_shard(self, index: int) -> None:
        """Respawn a DOWN shard and fold it back into the ring (rejoin)."""
        handle = self.handles[index]
        require(handle.state is ShardState.DOWN, f"{handle.name} is not down")
        if handle.process.is_alive():
            handle.process.kill()
        await asyncio.to_thread(handle.process.join, 5.0)
        ctx = multiprocessing.get_context("spawn")
        handle.process = ctx.Process(target=shard_entry, args=(handle.config,), daemon=True)
        handle.process.start()
        await self._connect(handle)
        handle.missed_probes = 0
        self._set_state(handle, ShardState.CLOSED)

    async def drain_shards(self, timeout_s: float = 60.0) -> list[str]:
        """Ask every live shard to drain; returns the names that confirmed."""
        drained = []
        for handle in self.handles:
            if not handle.connected:
                continue
            with contextlib.suppress(ClusterError):
                reply = await handle.request({"type": "drain"}, "drained", timeout_s)
                drained.append(str(reply.get("shard", handle.name)))
        return drained

    # -- metrics -----------------------------------------------------------------

    async def shard_metrics(self) -> dict[str, dict]:
        """Each live shard's ``MetricsRegistry.to_dict()`` snapshot."""
        snapshots: dict[str, dict] = {}
        for handle in self.handles:
            if not handle.connected:
                continue
            with contextlib.suppress(ClusterError):
                reply = await handle.request(
                    {"type": "metrics"}, "metrics_ok", self.config.probe_timeout_s * 4
                )
                snapshots[handle.name] = reply.get("metrics", {})
        return snapshots

    async def cluster_metrics(self) -> dict:
        """The aggregated cluster export (flat sums + per-shard labels)."""
        return aggregate_cluster_metrics(await self.shard_metrics(), self.metrics.to_dict())
