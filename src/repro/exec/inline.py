"""Inline backend: attempts run on the caller's thread, no concurrency.

The reference backend: zero dispatch machinery, deterministic by
construction, and the baseline the scaling benchmark normalizes against.
Because an attempt blocks the event loop, the service's per-attempt
``asyncio.wait_for`` cannot preempt it mid-flight — timeouts are only
observed between attempts.  Use it for debugging and determinism pinning,
never for serving.
"""

from __future__ import annotations

from repro.exec.base import AttemptRequest, Executor, _SlotTimer
from repro.hetero.machine import Machine
from repro.service import policy
from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome


def run_request(request: AttemptRequest) -> AttemptOutcome:
    """Resolve and run one request in this process (shared by inline/thread).

    ``execute_attempt`` / ``execute_fallback`` are looked up through the
    policy module at call time so tests can monkeypatch them there and
    reach every in-process backend.
    """
    machine = request.machine if request.machine is not None else Machine.preset(request.preset)
    if request.kind == "attempt":
        return policy.execute_attempt(request.job, machine)
    return policy.execute_fallback(request.job, machine, request.retry)


class InlineExecutor(Executor):
    """Run every attempt synchronously in the calling thread."""

    name = "inline"

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        super().__init__(capacity=1, metrics=metrics)

    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        timer = _SlotTimer()
        waited = timer.waited()
        self._note_dispatch(waited, request)
        # Inline has no wire, no pickle, no wakeup — its dispatch
        # overhead is the slot-timer's epsilon, by definition.
        self._note_latency(waited)
        try:
            return run_request(request)
        finally:
            self._note_done()

    async def execute(self, request: AttemptRequest) -> AttemptOutcome:
        # Deliberately NOT off-thread: inline means "block right here".
        return self.run_sync(request)

    def _run_batch_inline(
        self, requests: list[AttemptRequest]
    ) -> list[AttemptOutcome | BaseException]:
        # Mirrors the base run_batch_sync loop on purpose: execute_batch
        # deliberately blocks the event loop, so it must only reach this
        # backend's own run_sync — never the polymorphic batch helper,
        # whose other implementations block on worker queues.
        results: list[AttemptOutcome | BaseException] = []
        for request in requests:
            try:
                results.append(self.run_sync(request))
            except Exception as exc:
                results.append(exc)
        return results

    async def execute_batch(self, requests: list[AttemptRequest]):
        # Like execute(): a batch on the inline backend blocks right here.
        return self._run_batch_inline(requests)
