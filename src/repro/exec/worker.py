"""Pool-worker entry point and warm per-worker state (spawn-safe).

Each process-pool worker runs :func:`worker_main`: a loop over its inbox
queue, executing one *batch* of attempts per message and streaming one
reply per item on its outbox.  The expensive things happen once per
worker lifetime, not once per attempt — that is the pool's whole reason
to be persistent:

- module imports (NumPy/SciPy + the repro numerics) are paid at spawn;
- :class:`~repro.hetero.machine.Machine` presets are cached by name;
- shared-memory segments are attached once per segment *name* and kept
  mapped (the parent's arena free-list reuses names across jobs, so
  steady-state traffic attaches nothing); the parent tells the worker
  which names it trimmed via the batch's ``retired`` list, and those
  mappings are closed before the batch runs;
- per-geometry scratch workspaces (the pristine-copy buffer every
  real-mode attempt needs) are cached by matrix order, so repeat
  geometries allocate nothing.

Message protocol (parent → worker): ``("batch", batch_id,
payload_bytes)`` where the pickled payload is ``{"items": [item, ...],
"retired": [segment_name, ...]}``, plus ``("warm", [(n, block_size),
...])`` and ``("stop",)``.  Worker → parent: ``("ready", worker_id,
pid)`` once at startup, then **one streamed reply per item, in item
order, as each completes**: ``("item", batch_id, index, "ok",
reply_bytes, injector_state)`` or ``("item", batch_id, index, "err",
exc_type, message, injector_state)``.  Item payloads and replies are
pre-pickled bytes — matrices never ride in them; they cross through the
shared-memory segment named by the item's
:class:`~repro.hetero.memory.ShmDescriptor`.  ``injector_state``
(:func:`injector_state`) carries the run's fault bookkeeping back: the
parent pickles ``job.injector`` fresh per attempt, so without it a fault
fired inside the worker would stay armed on the parent and re-inject on
retry — unlike the in-process backends, which mutate the caller's
injector directly.

Because replies stream per item, a worker that dies mid-batch (the
``crash`` chaos hook flushes the outbox feeder before ``os._exit`` so
the failure point is deterministic) loses only the items it had not yet
answered: the parent turns exactly those into
:class:`~repro.util.exceptions.WorkerCrashedError` values and the
already-streamed survivors keep their results.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from typing import Any

import numpy as np

from repro.hetero.machine import Machine
from repro.hetero.memory import ShmDescriptor, attach_shared_array
from repro.recovery.snapshot import SnapshotLayout, SnapshotWriter
from repro.service.policy import execute_attempt, execute_fallback
from repro.util.exceptions import ReproError


class WorkerState:
    """Everything a worker keeps warm across attempts."""

    def __init__(self) -> None:
        self.machines: dict[str, Machine] = {}
        self.segments: dict[str, Any] = {}  # segment name -> SharedMemory attachment
        self.scratch: dict[tuple[int, ...], np.ndarray] = {}

    def machine(self, preset: str) -> Machine:
        mach = self.machines.get(preset)
        if mach is None:
            mach = self.machines[preset] = Machine.preset(preset)
        return mach

    def view(self, desc: ShmDescriptor) -> np.ndarray:
        """A zero-copy ndarray over the descriptor's segment (attach-once).

        Cached per segment *name*: the parent's arena free-list keeps
        several segments alive per arena and reuses their names across
        jobs, so a warm name attaches nothing.  Names the parent trimmed
        arrive in the batch's ``retired`` list and are dropped by
        :meth:`close_segments` — the worker never decides on its own that
        a mapping is dead.
        """
        shm = self.segments.get(desc.name)
        if shm is None:
            shm, _ = attach_shared_array(desc)
            self.segments[desc.name] = shm
        return np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf, offset=desc.offset)

    def close_segments(self, retired: list[str]) -> None:
        """Close mappings for segments the parent unlinked (arena trim)."""
        for name in retired:
            shm = self.segments.pop(name, None)
            if shm is not None:
                shm.close()

    def scratch_for(self, shape: tuple[int, ...]) -> np.ndarray:
        """The warmed per-geometry workspace (allocated on first use)."""
        buf = self.scratch.get(shape)
        if buf is None:
            buf = self.scratch[shape] = np.empty(shape, dtype=np.float64)
        return buf

    def warm(self, geometries: list[tuple[int, int]]) -> None:
        """Pre-touch the caches for the given (n, block_size) geometries."""
        for n, _block in geometries:
            self.scratch_for((int(n), int(n)))

    def close(self) -> None:
        for shm in self.segments.values():
            shm.close()
        self.segments.clear()


def injector_state(payload: dict, fired_before: int) -> dict | None:
    """The post-run injector delta to ship back to the parent (plain data).

    ``fired``: indices of every plan now marked fired (covers both actual
    firing and in-worker ``disarm()``).  ``records``: the
    :class:`~repro.faults.injector.FiredFault` entries this run appended,
    as ``(plan_index, iteration, old_value)`` triples the parent rebuilds
    against its own plan objects.
    """
    injector = payload["job"].injector
    if injector is None:
        return None
    plans = injector.plans
    records = [
        (next(i for i, p in enumerate(plans) if p is fault.plan), fault.iteration, fault.old_value)
        for fault in injector.fired[fired_before:]
    ]
    return {
        "fired": [i for i, p in enumerate(plans) if p.fired],
        "records": records,
    }


def run_task(payload: dict, state: WorkerState, outbox: Any = None) -> Any:
    """Execute one attempt/fallback payload; returns the reply outcome.

    Real-mode matrices arrive and leave through the payload's shm
    descriptor: the parent filled the segment with the job's input bits,
    and the factored bytes are written back into the same segment (the
    outcome's ``factor`` field is stripped before pickling —
    ``extras["factor_in_shm"]`` tells the parent to reattach it).

    When the payload carries a ``snapshot`` descriptor, the attempt's
    driver publishes iteration-boundary state into that segment
    (:class:`~repro.recovery.snapshot.SnapshotWriter`) so the parent can
    salvage a crashed attempt forward instead of restarting it.  The
    ``crash_after`` chaos key kills the process at the first boundary at
    or past that iteration — *after* the publish, so the snapshot is the
    deterministic survivor.
    """
    job = payload["job"]
    machine = state.machine(payload["preset"])
    desc: ShmDescriptor | None = payload.get("input")
    a = state.view(desc) if desc is not None else None
    scratch = state.scratch_for(a.shape) if a is not None else None
    progress = None
    snap_desc: ShmDescriptor | None = payload.get("snapshot")
    if snap_desc is not None and payload["kind"] == "attempt" and a is not None:
        writer = SnapshotWriter(state.view(snap_desc), SnapshotLayout(job.n, job.block_size))
        crash_after = payload.get("crash_after")

        def progress(iteration: int, matrix: np.ndarray, chk: np.ndarray) -> None:
            writer.publish(iteration, matrix, chk)
            if crash_after is not None and iteration >= crash_after:
                # Chaos hook: die at a deterministic iteration boundary.
                # Flush the outbox feeder first (same discipline as the
                # batch-level crash hook) so already-streamed replies
                # survive; the snapshot just published is the salvage.
                if outbox is not None:
                    outbox.close()
                    outbox.join_thread()
                os._exit(44)

    if payload["kind"] == "attempt":
        outcome = execute_attempt(job, machine, a=a, scratch=scratch, progress=progress)
    else:
        outcome = execute_fallback(job, machine, payload["retry"], a=a, scratch=scratch)
    if desc is not None and outcome.factor is not None:
        view = state.view(desc)
        np.copyto(view, outcome.factor)
        outcome.factor = None
        outcome.extras["factor_in_shm"] = True
        # Integrity stamp: the parent re-hashes the segment after copying
        # the factor out; a mismatch means the bytes were scribbled on in
        # transit and the attempt is retried instead of returned.
        outcome.extras["factor_crc"] = zlib.crc32(view)
    return outcome


def _run_item(batch_id: int, index: int, payload: dict, state: WorkerState, outbox: Any) -> None:
    """Run one batch item and stream its reply (never raises)."""
    injector = payload["job"].injector
    fired_before = len(injector.fired) if injector is not None else 0
    started = time.perf_counter()
    # Exception only: SystemExit / KeyboardInterrupt / other
    # BaseExceptions mean this process should die and let the parent's
    # respawn path take over, not keep serving in an unknown state.
    try:
        reply = run_task(payload, state, outbox)
        # The parent pops this before anyone compares extras: it feeds
        # the dispatch-overhead EWMA (wire+pickle time = round-trip
        # minus the compute the worker actually did).
        reply.extras["exec_wall_s"] = time.perf_counter() - started
        outbox.put(
            ("item", batch_id, index, "ok", pickle.dumps(reply), injector_state(payload, fired_before))
        )
    except ReproError as exc:
        outbox.put(
            (
                "item",
                batch_id,
                index,
                "err",
                type(exc).__name__,
                str(exc),
                injector_state(payload, fired_before),
            )
        )
    except Exception as exc:  # defensive: report, keep serving
        outbox.put(
            (
                "item",
                batch_id,
                index,
                "err",
                type(exc).__name__,
                str(exc),
                injector_state(payload, fired_before),
            )
        )


def worker_main(worker_id: int, inbox: Any, outbox: Any) -> None:
    """The worker process's main loop (spawn target; must stay top-level)."""
    state = WorkerState()
    outbox.put(("ready", worker_id, os.getpid()))
    while True:
        msg = inbox.get()
        tag = msg[0]
        if tag == "stop":
            state.close()
            outbox.put(("bye", worker_id))
            return
        if tag == "warm":
            state.warm(msg[1])
            continue
        _, batch_id, blob = msg
        batch = pickle.loads(blob)
        state.close_segments(batch.get("retired") or [])
        for index, payload in enumerate(batch["items"]):
            if payload.get("crash"):  # test hook: die mid-batch, hard
                # Flush the outbox feeder first so every reply already
                # streamed for this batch survives deterministically —
                # the crash loses exactly the items not yet answered.
                outbox.close()
                outbox.join_thread()
                os._exit(43)
            if payload.get("wedge"):  # test hook: hang mid-attempt
                time.sleep(payload["wedge"])
            _run_item(batch_id, index, payload, state, outbox)
