"""Pool-worker entry point and warm per-worker state (spawn-safe).

Each process-pool worker runs :func:`worker_main`: a loop over its inbox
queue, executing one attempt per message and replying on its outbox.  The
expensive things happen once per worker lifetime, not once per attempt —
that is the pool's whole reason to be persistent:

- module imports (NumPy/SciPy + the repro numerics) are paid at spawn;
- :class:`~repro.hetero.machine.Machine` presets are cached by name;
- shared-memory segments are attached once per segment name and reused
  (the parent leases the same arena per worker slot, so steady-state
  traffic attaches nothing);
- per-geometry scratch workspaces (the pristine-copy buffer every
  real-mode attempt needs) are cached by matrix order, so repeat
  geometries allocate nothing.

Message protocol (parent → worker): ``("task", task_id, payload_bytes)``,
``("warm", [(n, block_size), ...])``, ``("stop",)``.  Worker → parent:
``("ready", worker_id, pid)`` once at startup, then ``("ok", task_id,
reply_bytes)`` or ``("err", task_id, exc_type, message)`` per task.
Payloads and replies are pre-pickled bytes — matrices never ride in them;
they cross through the shared-memory segment named by the payload's
:class:`~repro.hetero.memory.ShmDescriptor`.
"""

from __future__ import annotations

import os
import pickle
from typing import Any

import numpy as np

from repro.hetero.machine import Machine
from repro.hetero.memory import ShmDescriptor, attach_shared_array
from repro.service.policy import execute_attempt, execute_fallback
from repro.util.exceptions import ReproError


class WorkerState:
    """Everything a worker keeps warm across attempts."""

    def __init__(self) -> None:
        self.machines: dict[str, Machine] = {}
        self.segments: dict[str, Any] = {}  # name -> SharedMemory attachment
        self.scratch: dict[tuple[int, ...], np.ndarray] = {}

    def machine(self, preset: str) -> Machine:
        mach = self.machines.get(preset)
        if mach is None:
            mach = self.machines[preset] = Machine.preset(preset)
        return mach

    def view(self, desc: ShmDescriptor) -> np.ndarray:
        """A zero-copy ndarray over the descriptor's segment (attach-once)."""
        shm = self.segments.get(desc.name)
        if shm is None:
            shm, _ = attach_shared_array(desc)
            self.segments[desc.name] = shm
        return np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf, offset=desc.offset)

    def scratch_for(self, shape: tuple[int, ...]) -> np.ndarray:
        """The warmed per-geometry workspace (allocated on first use)."""
        buf = self.scratch.get(shape)
        if buf is None:
            buf = self.scratch[shape] = np.empty(shape, dtype=np.float64)
        return buf

    def warm(self, geometries: list[tuple[int, int]]) -> None:
        """Pre-touch the caches for the given (n, block_size) geometries."""
        for n, _block in geometries:
            self.scratch_for((int(n), int(n)))

    def close(self) -> None:
        for shm in self.segments.values():
            shm.close()
        self.segments.clear()


def run_task(payload: dict, state: WorkerState) -> Any:
    """Execute one attempt/fallback payload; returns the reply outcome.

    Real-mode matrices arrive and leave through the payload's shm
    descriptor: the parent filled the segment with the job's input bits,
    and the factored bytes are written back into the same segment (the
    outcome's ``factor`` field is stripped before pickling —
    ``extras["factor_in_shm"]`` tells the parent to reattach it).
    """
    job = payload["job"]
    machine = state.machine(payload["preset"])
    desc: ShmDescriptor | None = payload.get("input")
    a = state.view(desc) if desc is not None else None
    scratch = state.scratch_for(a.shape) if a is not None else None
    if payload["kind"] == "attempt":
        outcome = execute_attempt(job, machine, a=a, scratch=scratch)
    else:
        outcome = execute_fallback(job, machine, payload["retry"], a=a, scratch=scratch)
    if desc is not None and outcome.factor is not None:
        view = state.view(desc)
        np.copyto(view, outcome.factor)
        outcome.factor = None
        outcome.extras["factor_in_shm"] = True
    return outcome


def worker_main(worker_id: int, inbox: Any, outbox: Any) -> None:
    """The worker process's main loop (spawn target; must stay top-level)."""
    state = WorkerState()
    outbox.put(("ready", worker_id, os.getpid()))
    while True:
        msg = inbox.get()
        tag = msg[0]
        if tag == "stop":
            state.close()
            outbox.put(("bye", worker_id))
            return
        if tag == "warm":
            state.warm(msg[1])
            continue
        _, task_id, blob = msg
        payload = pickle.loads(blob)
        if payload.get("crash"):  # test hook: die mid-attempt, hard
            os._exit(43)
        try:
            reply = run_task(payload, state)
            outbox.put(("ok", task_id, pickle.dumps(reply)))
        except ReproError as exc:
            outbox.put(("err", task_id, type(exc).__name__, str(exc)))
        except BaseException as exc:  # defensive: report, keep serving
            outbox.put(("err", task_id, type(exc).__name__, str(exc)))
