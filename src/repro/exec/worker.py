"""Pool-worker entry point and warm per-worker state (spawn-safe).

Each process-pool worker runs :func:`worker_main`: a loop over its inbox
queue, executing one attempt per message and replying on its outbox.  The
expensive things happen once per worker lifetime, not once per attempt —
that is the pool's whole reason to be persistent:

- module imports (NumPy/SciPy + the repro numerics) are paid at spawn;
- :class:`~repro.hetero.machine.Machine` presets are cached by name;
- shared-memory segments are attached once per segment name and reused
  (the parent leases the same arena per worker slot, so steady-state
  traffic attaches nothing);
- per-geometry scratch workspaces (the pristine-copy buffer every
  real-mode attempt needs) are cached by matrix order, so repeat
  geometries allocate nothing.

Message protocol (parent → worker): ``("task", task_id, payload_bytes)``,
``("warm", [(n, block_size), ...])``, ``("stop",)``.  Worker → parent:
``("ready", worker_id, pid)`` once at startup, then ``("ok", task_id,
reply_bytes, injector_state)`` or ``("err", task_id, exc_type, message,
injector_state)`` per task.  Payloads and replies are pre-pickled bytes —
matrices never ride in them; they cross through the shared-memory segment
named by the payload's :class:`~repro.hetero.memory.ShmDescriptor`.
``injector_state`` (:func:`injector_state`) carries the run's fault
bookkeeping back: the parent pickles ``job.injector`` fresh per attempt,
so without it a fault fired inside the worker would stay armed on the
parent and re-inject on retry — unlike the in-process backends, which
mutate the caller's injector directly.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from typing import Any

import numpy as np

from repro.hetero.machine import Machine
from repro.hetero.memory import ShmDescriptor, attach_shared_array
from repro.service.policy import execute_attempt, execute_fallback
from repro.util.exceptions import ReproError


class WorkerState:
    """Everything a worker keeps warm across attempts."""

    def __init__(self) -> None:
        self.machines: dict[str, Machine] = {}
        self.segments: dict[str, Any] = {}  # name -> SharedMemory attachment
        self.scratch: dict[tuple[int, ...], np.ndarray] = {}

    def machine(self, preset: str) -> Machine:
        mach = self.machines.get(preset)
        if mach is None:
            mach = self.machines[preset] = Machine.preset(preset)
        return mach

    def view(self, desc: ShmDescriptor) -> np.ndarray:
        """A zero-copy ndarray over the descriptor's segment (attach-once).

        Cached per arena slot, not per segment name: when the parent grows
        an arena it unlinks the outgrown segment and leases from a fresh
        one, so the stale attachment is closed here the moment its
        replacement arrives — otherwise every outgrown geometry's memory
        would stay mapped in each worker for the pool's lifetime.
        """
        key = desc.arena or desc.name
        shm = self.segments.get(key)
        if shm is not None and shm.name != desc.name:
            shm.close()  # superseded by a grown arena segment
            shm = None
        if shm is None:
            shm, _ = attach_shared_array(desc)
            self.segments[key] = shm
        return np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf, offset=desc.offset)

    def scratch_for(self, shape: tuple[int, ...]) -> np.ndarray:
        """The warmed per-geometry workspace (allocated on first use)."""
        buf = self.scratch.get(shape)
        if buf is None:
            buf = self.scratch[shape] = np.empty(shape, dtype=np.float64)
        return buf

    def warm(self, geometries: list[tuple[int, int]]) -> None:
        """Pre-touch the caches for the given (n, block_size) geometries."""
        for n, _block in geometries:
            self.scratch_for((int(n), int(n)))

    def close(self) -> None:
        for shm in self.segments.values():
            shm.close()
        self.segments.clear()


def injector_state(payload: dict, fired_before: int) -> dict | None:
    """The post-run injector delta to ship back to the parent (plain data).

    ``fired``: indices of every plan now marked fired (covers both actual
    firing and in-worker ``disarm()``).  ``records``: the
    :class:`~repro.faults.injector.FiredFault` entries this run appended,
    as ``(plan_index, iteration, old_value)`` triples the parent rebuilds
    against its own plan objects.
    """
    injector = payload["job"].injector
    if injector is None:
        return None
    plans = injector.plans
    records = [
        (next(i for i, p in enumerate(plans) if p is fault.plan), fault.iteration, fault.old_value)
        for fault in injector.fired[fired_before:]
    ]
    return {
        "fired": [i for i, p in enumerate(plans) if p.fired],
        "records": records,
    }


def run_task(payload: dict, state: WorkerState) -> Any:
    """Execute one attempt/fallback payload; returns the reply outcome.

    Real-mode matrices arrive and leave through the payload's shm
    descriptor: the parent filled the segment with the job's input bits,
    and the factored bytes are written back into the same segment (the
    outcome's ``factor`` field is stripped before pickling —
    ``extras["factor_in_shm"]`` tells the parent to reattach it).
    """
    job = payload["job"]
    machine = state.machine(payload["preset"])
    desc: ShmDescriptor | None = payload.get("input")
    a = state.view(desc) if desc is not None else None
    scratch = state.scratch_for(a.shape) if a is not None else None
    if payload["kind"] == "attempt":
        outcome = execute_attempt(job, machine, a=a, scratch=scratch)
    else:
        outcome = execute_fallback(job, machine, payload["retry"], a=a, scratch=scratch)
    if desc is not None and outcome.factor is not None:
        view = state.view(desc)
        np.copyto(view, outcome.factor)
        outcome.factor = None
        outcome.extras["factor_in_shm"] = True
        # Integrity stamp: the parent re-hashes the segment after copying
        # the factor out; a mismatch means the bytes were scribbled on in
        # transit and the attempt is retried instead of returned.
        outcome.extras["factor_crc"] = zlib.crc32(view)
    return outcome


def worker_main(worker_id: int, inbox: Any, outbox: Any) -> None:
    """The worker process's main loop (spawn target; must stay top-level)."""
    state = WorkerState()
    outbox.put(("ready", worker_id, os.getpid()))
    while True:
        msg = inbox.get()
        tag = msg[0]
        if tag == "stop":
            state.close()
            outbox.put(("bye", worker_id))
            return
        if tag == "warm":
            state.warm(msg[1])
            continue
        _, task_id, blob = msg
        payload = pickle.loads(blob)
        if payload.get("crash"):  # test hook: die mid-attempt, hard
            os._exit(43)
        if payload.get("wedge"):  # test hook: hang mid-attempt
            time.sleep(payload["wedge"])
        injector = payload["job"].injector
        fired_before = len(injector.fired) if injector is not None else 0
        # Exception only: SystemExit / KeyboardInterrupt / other
        # BaseExceptions mean this process should die and let the parent's
        # respawn path take over, not keep serving in an unknown state.
        try:
            reply = run_task(payload, state)
            outbox.put(("ok", task_id, pickle.dumps(reply), injector_state(payload, fired_before)))
        except ReproError as exc:
            outbox.put(
                ("err", task_id, type(exc).__name__, str(exc), injector_state(payload, fired_before))
            )
        except Exception as exc:  # defensive: report, keep serving
            outbox.put(
                ("err", task_id, type(exc).__name__, str(exc), injector_state(payload, fired_before))
            )
