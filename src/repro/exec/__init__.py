"""Pluggable execution backends for the solve service.

``inline`` (debug/baseline), ``thread`` (GIL-bound ``asyncio.to_thread``
pool — the historical behaviour), ``process`` (persistent multicore
worker pool with batched dispatch and zero-copy shared-memory matrix
transport), and ``auto`` (cost-model placement across all three — see
:mod:`repro.exec.chooser`).  See :mod:`repro.exec.base` for the protocol
and its determinism contract.
"""

from repro.exec.base import (
    BACKENDS,
    EXECUTOR_CHOICES,
    AttemptRequest,
    Executor,
    make_executor,
)
from repro.exec.chooser import AutoExecutor, choose_backend, predicted_crossover_n
from repro.exec.inline import InlineExecutor
from repro.exec.process import ProcessExecutor
from repro.exec.thread import ThreadExecutor

__all__ = [
    "BACKENDS",
    "EXECUTOR_CHOICES",
    "AttemptRequest",
    "AutoExecutor",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "choose_backend",
    "make_executor",
    "predicted_crossover_n",
]
