"""Pluggable execution backends for the solve service.

``inline`` (debug/baseline), ``thread`` (GIL-bound ``asyncio.to_thread``
pool — the historical behaviour), and ``process`` (persistent multicore
worker pool with zero-copy shared-memory matrix transport).  See
:mod:`repro.exec.base` for the protocol and its determinism contract.
"""

from repro.exec.base import BACKENDS, AttemptRequest, Executor, make_executor
from repro.exec.inline import InlineExecutor
from repro.exec.process import ProcessExecutor
from repro.exec.thread import ThreadExecutor

__all__ = [
    "BACKENDS",
    "AttemptRequest",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "make_executor",
]
