"""The pluggable execution-backend protocol for the solve service.

One :class:`Executor` owns *how* blocking ABFT attempts run — in the event
loop (``inline``), in the default thread pool (``thread``), or on a
persistent multicore process pool with shared-memory matrix transport
(``process``) — while the service keeps owning *what* runs: admission,
scheduling, the retry ladder, and metrics.  The contract every backend
honors:

- **determinism** — an attempt's ``factor``, ``corrected_sites`` and
  ``stats`` are bit-identical whichever backend executes it (pinned by
  ``tests/test_exec_backends.py`` reusing the batchverify parity harness);
- **failure transparency** — scheme-level errors surface as the same
  :class:`~repro.util.exceptions.ReproError` types the thread path always
  raised; infrastructure failures (a worker crash) surface as
  :class:`~repro.util.exceptions.WorkerCrashedError`, which the service's
  retry ladder treats like any other failed attempt;
- **graceful drain** — ``stop()`` returns only after in-flight attempts
  finished and backend resources (processes, shared segments) are
  released.

Backends expose a synchronous ``run_sync`` core so non-async callers
(benchmarks, property tests) can drive a warm pool without an event loop;
the async ``execute`` wrapper is what the service awaits under its
per-attempt timeout.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome, RetryPolicy
from repro.util.exceptions import ExecutorError, WorkerTaskError
from repro.util.validation import check_positive, require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hetero.machine import Machine
    from repro.service.job import Job

#: Registered backend names, in increasing order of parallelism.
BACKENDS = ("inline", "thread", "process")

#: What ``--executor`` accepts: the concrete backends plus the cost-model
#: chooser (:mod:`repro.exec.chooser`), which places each job on one of them.
EXECUTOR_CHOICES = BACKENDS + ("auto",)

#: Smoothing factor for the per-backend dispatch-overhead EWMA.
DISPATCH_EWMA_ALPHA = 0.2


def is_infra_error(exc: BaseException) -> bool:
    """Was this failure the *backend's* fault rather than the job's?

    Infrastructure failures — a crashed or wedged worker, a lost or
    corrupted shared-memory segment — indict the executor and feed its
    circuit breaker (:mod:`repro.resilience.breaker`).  A
    :class:`~repro.util.exceptions.WorkerTaskError` is the job's own
    exception relayed across the boundary: any backend would have failed
    identically, so it must never open a breaker.
    """
    return isinstance(exc, ExecutorError) and not isinstance(exc, WorkerTaskError)


@dataclass
class AttemptRequest:
    """One unit of dispatch: run *job* once on machine *preset*.

    ``machine`` is the in-process fast path (inline/thread reuse the
    scheduler's live object); ``preset`` is the cross-process form — a
    name the worker resolves against its warm preset cache, because a
    :class:`~repro.hetero.machine.Machine` never crosses the boundary.

    ``timeout_s`` is the caller's per-attempt budget (the service passes
    its ``job_timeout_s``): backends with out-of-process workers use it to
    bound how long a dispatched attempt may go silent before the worker is
    declared wedged, killed, and its slot reclaimed — an async caller's
    ``asyncio.wait_for`` alone cannot do that, because cancelling the
    awaiting thread does not stop ``run_sync``.
    """

    job: "Job"
    preset: str
    machine: "Machine | None" = None
    kind: str = "attempt"  # "attempt" | "fallback"
    retry: RetryPolicy | None = None
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        require(self.kind in ("attempt", "fallback"), f"bad request kind {self.kind!r}")
        if self.kind == "fallback":
            require(self.retry is not None, "fallback requests need the retry policy")
        if self.timeout_s is not None:
            check_positive("timeout_s", self.timeout_s)


class Executor(ABC):
    """Base class: metrics plumbing plus the sync/async execution pair."""

    name: str = "?"

    def __init__(self, capacity: int, metrics: MetricsRegistry | None = None) -> None:
        require(capacity >= 1, "executor capacity must be >= 1")
        self.capacity = capacity
        self._mlock = threading.Lock()  # metric updates arrive from pool threads
        self.bind_metrics(metrics if metrics is not None else MetricsRegistry())

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """(Re)register this backend's metrics in *metrics*."""
        self.metrics = metrics
        self._attempts = metrics.counter(
            "executor_attempts_total", "attempts dispatched through the execution backend"
        )
        self._dispatch_h = metrics.histogram(
            "executor_dispatch_seconds", "wait from dispatch to an execution slot"
        )
        self._busy_g = metrics.gauge(
            "executor_worker_utilization", "busy execution slots (capacity under 'capacity')"
        )
        self._ipc_bytes = metrics.counter(
            "executor_ipc_bytes_total", "bytes crossing the process boundary (payloads + shm)"
        )
        self._restarts = metrics.counter(
            "executor_worker_restarts_total", "pool workers respawned after a crash or cancel"
        )
        self._transport_errs = metrics.counter(
            "executor_transport_errors_total",
            "shared-memory transport faults detected parent-side",
        )
        self._batch_h = metrics.histogram(
            "executor_batch_size", "attempts per dispatch unit (1 = singleton)"
        )
        self._arena_reuse = metrics.counter(
            "executor_arena_reuse_total", "leases served warm from an arena free-list"
        )
        self._arena_miss = metrics.counter(
            "executor_arena_miss_total", "leases that had to create a new arena segment"
        )
        self._latency_g = metrics.gauge(
            "executor_dispatch_latency_s",
            "per-backend dispatch-overhead EWMA (seconds beyond the compute itself)",
        )
        with self._mlock:
            self._busy_g.set(self.capacity, kind="capacity")
            self._busy_g.set(0.0, kind="busy")

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:  # noqa: B027 - optional hook
        """Bring up backend resources (worker processes, warm caches)."""

    async def stop(self) -> None:  # noqa: B027 - optional hook
        """Drain in-flight attempts and release backend resources."""

    # -- execution ---------------------------------------------------------------

    @abstractmethod
    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        """Run one attempt to completion, blocking the calling thread."""

    def run_batch_sync(self, requests: list[AttemptRequest]) -> list[AttemptOutcome | BaseException]:
        """Run a batch of attempts; failures come back as exception *values*.

        The default runs the batch as sequential singletons — backends
        that can amortize a round-trip (one wire message, one worker
        wakeup) override this.  Results align 1:1 with *requests*; a
        failed item never aborts the rest of the batch.
        """
        results: list[AttemptOutcome | BaseException] = []
        for request in requests:
            try:
                results.append(self.run_sync(request))
            except Exception as exc:
                results.append(exc)
        return results

    async def execute(self, request: AttemptRequest) -> AttemptOutcome:
        """Async wrapper the service awaits (under its own timeout)."""
        import asyncio

        return await asyncio.to_thread(self.run_sync, request)

    async def execute_batch(
        self, requests: list[AttemptRequest]
    ) -> list[AttemptOutcome | BaseException]:
        """Async batch wrapper; exception values, never raises per-item."""
        import asyncio

        return await asyncio.to_thread(self.run_batch_sync, requests)

    # -- metric helpers (thread-safe) --------------------------------------------

    def _note_dispatch(self, waited_s: float, request: AttemptRequest) -> None:
        self._note_batch_dispatch(waited_s, [request])

    def _note_batch_dispatch(self, waited_s: float, requests: list[AttemptRequest]) -> None:
        """Record one dispatch unit carrying *requests* attempts."""
        with self._mlock:
            for request in requests:
                self._attempts.inc(backend=self.name, kind=request.kind)
                self._busy_g.inc(kind="busy")
            self._dispatch_h.observe(waited_s)
            self._batch_h.observe(float(len(requests)))

    def _note_done(self, count: int = 1) -> None:
        with self._mlock:
            self._busy_g.dec(float(count), kind="busy")

    def _note_arena_lease(self, reused: bool) -> None:
        with self._mlock:
            if reused:
                self._arena_reuse.inc(backend=self.name)
            else:
                self._arena_miss.inc(backend=self.name)

    def _note_latency(self, overhead_s: float) -> None:
        """Fold one measured dispatch overhead into this backend's EWMA."""
        overhead_s = max(0.0, float(overhead_s))
        with self._mlock:
            prior = self._latency_g.value(backend=self.name)
            if self._latency_g._values.get((("backend", self.name),)) is None:
                blended = overhead_s
            else:
                blended = (1.0 - DISPATCH_EWMA_ALPHA) * prior + DISPATCH_EWMA_ALPHA * overhead_s
            self._latency_g.set(blended, backend=self.name)

    def dispatch_latency_s(self) -> float:
        """Current dispatch-overhead EWMA for this backend (0.0 if unmeasured)."""
        return self._latency_g.value(backend=self.name)

    def _note_ipc(self, nbytes: int, direction: str) -> None:
        with self._mlock:
            self._ipc_bytes.inc(nbytes, direction=direction)

    def _note_restart(self, reason: str) -> None:
        with self._mlock:
            self._restarts.inc(reason=reason)

    def _note_transport_error(self, kind: str) -> None:
        with self._mlock:
            self._transport_errs.inc(kind=kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(capacity={self.capacity})"


class _SlotTimer:
    """Measures time-to-slot for the dispatch-latency histogram."""

    __slots__ = ("t0",)

    def __init__(self) -> None:
        self.t0 = time.perf_counter()

    def waited(self) -> float:
        return time.perf_counter() - self.t0


def make_executor(
    kind: str,
    workers: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> Executor:
    """Construct a backend by name (the ``--executor`` CLI switch).

    *workers* bounds backend concurrency: thread-pool width for
    ``thread``, pool size for ``process``; ignored by ``inline``.
    ``auto`` builds the cost-model chooser over all three.
    """
    require(kind in EXECUTOR_CHOICES, f"unknown executor {kind!r}; have {EXECUTOR_CHOICES}")
    from repro.exec.chooser import AutoExecutor
    from repro.exec.inline import InlineExecutor
    from repro.exec.process import ProcessExecutor
    from repro.exec.thread import ThreadExecutor

    if kind == "inline":
        return InlineExecutor(metrics=metrics)
    if kind == "thread":
        return ThreadExecutor(workers=workers or 4, metrics=metrics)
    if kind == "auto":
        return AutoExecutor(workers=workers or 2, metrics=metrics)
    return ProcessExecutor(workers=workers or 2, metrics=metrics)
