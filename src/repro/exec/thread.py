"""Thread backend: ``asyncio.to_thread`` attempts, bounded by a semaphore.

The historical service behaviour, now behind the :class:`Executor`
protocol: each attempt runs in the default thread pool, concurrency is
capped at *workers*, and the GIL still serializes the NumPy-adjacent
Python glue — which is exactly the ceiling the process backend exists to
break.
"""

from __future__ import annotations

import threading

from repro.exec.base import AttemptRequest, Executor, _SlotTimer
from repro.exec.inline import run_request
from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome


class ThreadExecutor(Executor):
    """Run attempts on worker threads (at most *workers* at once)."""

    name = "thread"

    def __init__(self, workers: int = 4, metrics: MetricsRegistry | None = None) -> None:
        super().__init__(capacity=workers, metrics=metrics)
        self._slots = threading.Semaphore(workers)

    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        timer = _SlotTimer()
        with self._slots:
            waited = timer.waited()
            self._note_dispatch(waited, request)
            # A thread attempt's dispatch overhead is the time spent
            # waiting for a pool slot (the hand-off itself is free).
            self._note_latency(waited)
            try:
                return run_request(request)
            finally:
                self._note_done()
