"""Cost-model backend placement: the ``--executor auto`` chooser.

The service-level analog of the paper's Opt-2 CPU-vs-GPU placement
question: offloading an attempt to the process pool buys parallelism but
costs a wire round-trip (pickle, queue wakeup, shm fill) — worth paying
only when the attempt's compute dwarfs it.  :class:`AutoExecutor` owns
one member of every concrete backend and places each dispatch on the one
with the *earliest predicted completion*:

    eta(inline)  = overhead_inline  + compute · (q_inline + 1)
    eta(thread)  = overhead_thread  + compute · (q_thread + 1)
    eta(process) = overhead_process + compute · (1 + q_process / capacity)

where ``compute`` is the job's cost-model estimate
(:meth:`~repro.hetero.costmodel.CostModel.potrf_seconds`) scaled into
host seconds, ``overhead_b`` is the backend's measured dispatch-latency
EWMA (``executor_dispatch_latency_s``), and ``q_b`` is the backend's
current in-flight depth.  Inline and thread serialize on the GIL, so
queue depth multiplies their compute term; the process pool divides it
across its workers.  At zero load a small job therefore stays inline
(the honest answer on this codebase — see ``BENCH_service.json``), and
as depth or job size grows placement shifts to the pool, exactly the
crossover the scaling bench records.

Self-calibration: :meth:`AutoExecutor.start_sync` runs one small
real-mode probe job through each backend, measures wall seconds, scales
the cost model into host units from the inline wall, and seeds each
backend's overhead EWMA from the difference — so the chooser makes sane
decisions from the first real dispatch instead of after a warm-up.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping

from repro.exec.base import BACKENDS, AttemptRequest, Executor, _SlotTimer
from repro.exec.inline import InlineExecutor
from repro.exec.process import ProcessExecutor
from repro.exec.thread import ThreadExecutor
from repro.hetero.machine import Machine
from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome
from repro.util.validation import require

#: Geometry of the self-calibration probe job (small enough to be cheap,
#: real-mode so it exercises the shm transport the placement must price).
_CALIB_N = 64
_CALIB_B = 32
_CALIB_PRESET = "tardis"
_CALIB_TIMEOUT_S = 60.0


def choose_backend(
    compute_s: float,
    overhead_s: Mapping[str, float],
    inflight: Mapping[str, int],
    process_capacity: int,
) -> str:
    """Pure placement decision: earliest predicted completion wins.

    Ties break toward the earlier entry in :data:`~repro.exec.base.
    BACKENDS` (less machinery), so a zero-compute job always lands
    inline.
    """
    require(compute_s >= 0, "compute estimate must be nonnegative")
    cap = max(1, int(process_capacity))
    etas: dict[str, float] = {}
    for backend in BACKENDS:
        depth = max(0, int(inflight.get(backend, 0)))
        overhead = max(0.0, float(overhead_s.get(backend, 0.0)))
        if backend == "process":
            etas[backend] = overhead + compute_s * (1.0 + depth / cap)
        else:
            # GIL-serialized: queued depth multiplies the compute term.
            etas[backend] = overhead + compute_s * (depth + 1.0)
    return min(BACKENDS, key=lambda b: (etas[b], BACKENDS.index(b)))


def predicted_crossover_n(
    compute_s_for: Callable[[int], float],
    overhead_process_s: float,
    process_capacity: int,
    sizes: list[int] | tuple[int, ...],
    load: int | None = None,
) -> int | None:
    """Smallest job size the model routes to the process pool under load.

    *compute_s_for* maps a job order ``n`` to estimated host compute
    seconds (the scaling bench passes measured inline seconds-per-job);
    *load* is the assumed per-backend queue depth (defaults to the pool
    capacity — a saturated closed loop).  Returns ``None`` when even the
    largest size stays inline.
    """
    cap = max(1, int(process_capacity))
    depth = cap if load is None else max(0, int(load))
    for n in sorted(int(s) for s in sizes):
        compute = float(compute_s_for(n))
        if compute <= 0.0:
            continue
        eta_inline = compute * (depth + 1.0)
        eta_process = max(0.0, float(overhead_process_s)) + compute * (1.0 + depth / cap)
        if eta_process <= eta_inline:
            return n
    return None


class AutoExecutor(Executor):
    """Place each dispatch on inline/thread/process by predicted completion.

    Owns one member of every concrete backend, all bound to the *same*
    metrics registry (the :class:`~repro.resilience.breaker.
    FailoverExecutor` convention), so per-backend attempt counts, batch
    sizes and latency EWMAs land in one place.  ``capacity`` is the
    process pool's — the service sizes its dispatch slots for the widest
    backend and the chooser decides where each slot's work actually runs.
    """

    name = "auto"

    def __init__(
        self,
        workers: int = 2,
        metrics: MetricsRegistry | None = None,
        calibrate: bool = True,
    ) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self.members: dict[str, Executor] = {
            "inline": InlineExecutor(metrics=registry),
            "thread": ThreadExecutor(workers=workers, metrics=registry),
            "process": ProcessExecutor(workers=workers, metrics=registry),
        }
        self._ilock = threading.Lock()
        self._inflight: dict[str, int] = {backend: 0 for backend in BACKENDS}
        self._machines: dict[str, Machine] = {}
        #: host wall seconds per cost-model second (set by calibration).
        self.host_scale = 1.0
        self._calibrate_on_start = calibrate
        self._calibrated = False
        self.calibration_walls: dict[str, float] = {}
        self.calibration_error: str | None = None
        super().__init__(capacity=self.members["process"].capacity, metrics=registry)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        super().bind_metrics(metrics)
        self._placements = metrics.counter(
            "executor_auto_placements_total", "attempts placed per backend by the cost-model chooser"
        )

    @property
    def process(self) -> ProcessExecutor:
        """The process member (chaos hooks live here)."""
        return self.members["process"]  # type: ignore[return-value]

    # -- lifecycle ---------------------------------------------------------------

    def start_sync(self) -> None:
        """Spawn the pool and (once) run the self-calibration probes."""
        self.members["process"].start_sync()  # type: ignore[attr-defined]
        if self._calibrate_on_start and not self._calibrated:
            self._run_calibration()

    async def start(self) -> None:
        import asyncio

        await asyncio.to_thread(self.start_sync)

    def stop_sync(self) -> None:
        for member in self.members.values():
            stop_sync = getattr(member, "stop_sync", None)
            if stop_sync is not None:
                stop_sync()

    async def stop(self) -> None:
        for member in self.members.values():
            await member.stop()

    # -- calibration -------------------------------------------------------------

    def _calibration_request(self) -> AttemptRequest:
        from repro.service.job import Job

        job = Job(
            job_id=0,
            n=_CALIB_N,
            block_size=_CALIB_B,
            scheme="enhanced",
            numerics="real",
            seed=0,
        )
        return AttemptRequest(job=job, preset=_CALIB_PRESET, timeout_s=_CALIB_TIMEOUT_S)

    def _run_calibration(self) -> None:
        """Measure one probe job per backend; seed scales and EWMAs.

        A calibration failure must never block service start — the
        chooser just falls back to unscaled estimates and unseeded EWMAs
        (which self-correct as real traffic flows).
        """
        walls: dict[str, float] = {}
        try:
            for backend in BACKENDS:
                started = time.perf_counter()
                self.members[backend].run_sync(self._calibration_request())
                walls[backend] = time.perf_counter() - started
        except Exception as exc:  # calibration is best-effort
            self.calibration_error = f"{type(exc).__name__}: {exc}"
            self._calibrated = True
            return
        self.calibration_walls = walls
        model = self._model_seconds(self._calibration_request())
        if model > 0.0:
            self.host_scale = max(1e-9, walls["inline"]) / model
        for backend in BACKENDS:
            # The probe's wall minus the inline wall isolates the
            # backend's dispatch machinery from the compute both share.
            self.members[backend]._note_latency(max(0.0, walls[backend] - walls["inline"]))
        self._calibrated = True

    # -- placement ---------------------------------------------------------------

    def _machine_for(self, request: AttemptRequest) -> Machine:
        if request.machine is not None:
            return request.machine
        machine = self._machines.get(request.preset)
        if machine is None:
            machine = self._machines[request.preset] = Machine.preset(request.preset)
        return machine

    def _model_seconds(self, request: AttemptRequest) -> float:
        job = request.job
        machine = self._machine_for(request)
        block = job.block_size or machine.default_block_size
        cost = machine.context(numerics="shadow").cost
        return cost.potrf_seconds(job.n, block, scheme=job.scheme)

    def estimate_host_seconds(self, request: AttemptRequest) -> float:
        """The job's compute estimate in (calibrated) host wall seconds."""
        return self._model_seconds(request) * self.host_scale

    def choose(self, requests: list[AttemptRequest]) -> str:
        """Which backend this dispatch unit should run on (by mean compute)."""
        compute = sum(self.estimate_host_seconds(r) for r in requests) / len(requests)
        with self._ilock:
            inflight = dict(self._inflight)
        overhead = {b: self.members[b].dispatch_latency_s() for b in BACKENDS}
        return choose_backend(compute, overhead, inflight, self.members["process"].capacity)

    # -- execution ---------------------------------------------------------------

    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        result = self.run_batch_sync([request])[0]
        if isinstance(result, BaseException):
            raise result
        return result

    def run_batch_sync(self, requests: list[AttemptRequest]) -> list[AttemptOutcome | BaseException]:
        require(len(requests) >= 1, "empty dispatch batch")
        backend = self.choose(requests)
        member = self.members[backend]
        timer = _SlotTimer()
        self._note_batch_dispatch(timer.waited(), requests)
        self._placements.inc(float(len(requests)), backend=backend)
        with self._ilock:
            self._inflight[backend] += len(requests)
        try:
            return member.run_batch_sync(requests)
        finally:
            with self._ilock:
                self._inflight[backend] -= len(requests)
            self._note_done(len(requests))
