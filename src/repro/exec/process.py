"""Process backend: a persistent spawn pool with shared-memory transport.

This is the multicore path: *workers* long-lived processes (spawned once,
kept warm — see :mod:`repro.exec.worker`), each owning one inbox/outbox
queue pair and one parent-owned :class:`~repro.hetero.memory.SharedArena`.
Dispatching an attempt:

1. the parent leases an ``n × n`` view from the checked-out worker's
   arena and fills it with the job's deterministic input matrix —
   **this, not a pickle, is how the matrix travels** (rule RPL007);
2. the task payload (job record, preset name, shm *descriptor*) is
   pickled and queued; the worker factors the shared view in place and
   writes the factor bytes back through the same segment;
3. the parent polls the outbox while watching worker liveness — a dead
   process (crash, OOM kill, test-injected ``os._exit``) raises
   :class:`~repro.util.exceptions.WorkerCrashedError` after the pool
   respawns a replacement, and the service's retry ladder requeues the
   attempt.

``stop()`` drains: every worker gets a stop sentinel, is joined (then
terminated if wedged), and every arena segment is unlinked — the parent
is the only owner of shared memory, always.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
import zlib
from collections import deque

import numpy as np

from repro.exec.base import AttemptRequest, Executor, _SlotTimer
from repro.exec.worker import worker_main
from repro.faults.injector import FiredFault
from repro.hetero.memory import SharedArena
from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome, job_matrix
from repro.util.exceptions import (
    ExecutorError,
    ShmIntegrityError,
    ShmTransportError,
    WorkerCrashedError,
    WorkerTaskError,
)
from repro.util.validation import require

#: How often the result wait re-checks worker liveness (seconds).
_POLL_S = 0.05
#: How long a spawning worker may take to report ready (imports included).
_READY_TIMEOUT_S = 120.0
#: Per-attempt silence ceiling when the request carries no timeout
#: (synchronous bench/test callers); the service always passes one.
_DEFAULT_DEADLINE_S = 600.0
#: Slack added to the request timeout before a silent worker is declared
#: wedged, so the caller's own ``asyncio.wait_for`` fires first and the
#: kill only reclaims slots the async layer already abandoned.
_DEADLINE_GRACE_S = 2.0


class _WorkerHandle:
    """Parent-side record of one pool worker slot."""

    def __init__(self, worker_id: int, ctx, arena_tag: str) -> None:
        self.worker_id = worker_id
        self.ctx = ctx
        self.arena = SharedArena(arena_tag)
        self.process = None
        self.inbox = None
        self.outbox = None

    def spawn(self) -> None:
        self.inbox = self.ctx.Queue()
        self.outbox = self.ctx.Queue()
        self.process = self.ctx.Process(
            target=worker_main,
            args=(self.worker_id, self.inbox, self.outbox),
            daemon=True,
            name=f"repro-exec-w{self.worker_id}",
        )
        self.process.start()
        msg = self.outbox.get(timeout=_READY_TIMEOUT_S)
        require(msg[0] == "ready", f"worker {self.worker_id} failed its ready handshake: {msg!r}")

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)

    def close(self) -> None:
        # The arena release is the part that frees /dev/shm; it must run
        # even when the kill or queue teardown throws (a worker that died
        # mid-dispatch can leave queue feeder threads in odd states).
        try:
            self.kill()
            for q in (self.inbox, self.outbox):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
        finally:
            self.arena.release()


class ProcessExecutor(Executor):
    """Persistent multi-process pool with zero-copy matrix transport."""

    name = "process"

    def __init__(self, workers: int = 2, metrics: MetricsRegistry | None = None) -> None:
        super().__init__(capacity=workers, metrics=metrics)
        self._ctx = multiprocessing.get_context("spawn")
        self._slots = threading.Semaphore(workers)
        self._lock = threading.Lock()
        self._idle: list[_WorkerHandle] = []
        self._handles: list[_WorkerHandle] = []
        self._task_ids = itertools.count(1)
        self._started = False
        self._stopping = False
        # One-shot chaos overlays, consumed FIFO by the next dispatches.
        # Worker-side keys ("crash", "wedge") ride in the task payload;
        # parent-side keys ("truncate_shm", "corrupt_shm") are acted on
        # around the shm transport without the worker's knowledge.
        self._chaos: deque[dict] = deque()

    # -- lifecycle ---------------------------------------------------------------

    def start_sync(self, warm: list[tuple[int, int]] | None = None) -> None:
        """Spawn the pool (idempotent, thread-safe); optionally pre-warm."""
        with self._lock:
            self._start_locked(warm)

    def _start_locked(self, warm: list[tuple[int, int]] | None = None) -> None:
        """Spawn under ``self._lock`` — concurrent first dispatches through
        ``run_sync`` must not each bring up a full pool."""
        if self._started:
            return
        require(not self._stopping, "executor is stopping")
        base = f"rx-{multiprocessing.current_process().pid}-{id(self) & 0xFFFF:x}"
        try:
            for wid in range(self.capacity):
                handle = _WorkerHandle(wid, self._ctx, f"{base}-w{wid}")
                # Track before spawn: if spawn itself fails the cleanup
                # below still releases this slot's arena and queues.
                self._handles.append(handle)
                handle.spawn()
                if warm:
                    handle.inbox.put(("warm", [(int(n), int(b)) for n, b in warm]))
                self._idle.append(handle)
        except BaseException:
            # Partial start must not leak workers or /dev/shm segments.
            for handle in self._handles:
                handle.close()
            self._handles.clear()
            self._idle.clear()
            raise
        self._started = True

    async def start(self) -> None:
        import asyncio

        await asyncio.to_thread(self.start_sync)

    def stop_sync(self) -> None:
        """Graceful drain: stop sentinels, join, then hard teardown."""
        with self._lock:
            if not self._started or self._stopping:
                return
            # Turns away new dispatches while we wait for the in-flight
            # ones; the slot acquisition below must happen outside the
            # lock, because finishing attempts need it to check back in.
            self._stopping = True
        # Taking every slot guarantees no attempt is in flight.  The count
        # of slots actually taken is tracked so a failure mid-acquisition
        # releases exactly that many — releasing ``capacity`` after a
        # partial acquire would inflate the semaphore and let more
        # attempts run concurrently than the pool has workers.
        acquired = 0
        try:
            for _ in range(self.capacity):
                self._slots.acquire()  # noqa: RPL101 — loop-paired with the release loop below; the counter keeps the pairing exact
                acquired += 1
            with self._lock:
                for handle in self._handles:
                    if handle.process is not None and handle.process.is_alive():
                        handle.inbox.put(("stop",))
                for handle in self._handles:
                    if handle.process is not None:
                        handle.process.join(timeout=5.0)
                    handle.close()
                self._handles.clear()
                self._idle.clear()
                self._started = False
        finally:
            with self._lock:
                self._stopping = False
            for _ in range(acquired):
                self._slots.release()

    async def stop(self) -> None:
        import asyncio

        await asyncio.to_thread(self.stop_sync)

    # -- chaos hooks -------------------------------------------------------------

    def _arm(self, overlay: dict, count: int) -> None:
        require(count >= 1, "injection count must be >= 1")
        with self._lock:
            self._chaos.extend(dict(overlay) for _ in range(count))

    def inject_crash(self, count: int = 1) -> None:
        """Arm worker crashes on the next *count* dispatched attempts.

        Deterministic stand-in for an OOM kill mid-attempt; used by the
        retry-ladder requeue tests (``count > 1`` exhausts the ladder).
        """
        self._arm({"crash": True}, count)

    def inject_wedge(self, seconds: float, count: int = 1) -> None:
        """Arm one-shot stalls: the next attempts' workers hang *seconds*.

        Deterministic stand-in for a worker stuck in native code; used by
        the deadline-reclaim tests.
        """
        self._arm({"wedge": float(seconds)}, count)

    def inject_shm_truncation(self, count: int = 1) -> None:
        """Arm /dev/shm segment removal under the next dispatched attempts.

        The parent unlinks the segment *after* filling it, so a worker
        without a warm mapping fails its attach (``FileNotFoundError`` →
        :class:`ShmTransportError` parent-side) and the arena heals on
        the next lease.  A worker already attached keeps its mapping —
        exactly the asymmetry a real tmpfs sweep exhibits.
        """
        self._arm({"truncate_shm": True}, count)

    def inject_shm_corruption(self, count: int = 1) -> None:
        """Arm in-transit factor corruption for the next dispatched attempts.

        The parent scribbles on the shared view after the worker's reply
        (between the worker's CRC stamp and the parent's copy-out), so the
        integrity check must catch it and raise :class:`ShmIntegrityError`.
        """
        self._arm({"corrupt_shm": True}, count)

    def _next_chaos(self) -> dict:
        with self._lock:
            return self._chaos.popleft() if self._chaos else {}

    # -- execution ---------------------------------------------------------------

    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        with self._lock:
            require(not self._stopping, "executor is stopping")
            self._start_locked()
        timer = _SlotTimer()
        handle = None
        self._slots.acquire()
        try:
            with self._lock:
                if not self._idle:
                    # stop_sync won the race for this slot and tore the pool
                    # down while we waited; there is no worker to dispatch to.
                    raise ExecutorError("executor stopped while the attempt waited for a slot")
                handle = self._idle.pop()
            self._note_dispatch(timer.waited(), request)
            try:
                return self._dispatch(handle, request)
            finally:
                self._note_done()
        finally:
            try:
                with self._lock:
                    if handle is not None:
                        self._idle.append(handle)
            finally:
                # Must check the handle back in *before* releasing the slot
                # (a freed slot with an empty idle list strands the next
                # attempt), and must release even if the check-in throws.
                self._slots.release()

    def _dispatch(self, handle: _WorkerHandle, request: AttemptRequest) -> AttemptOutcome:
        job = request.job
        chaos = self._next_chaos()
        view = desc = None
        if job.numerics == "real":
            view, desc = handle.arena.lease((job.n, job.n))
            np.copyto(view, job_matrix(job))
            if chaos.get("truncate_shm"):
                handle.arena.unlink_backing()
        payload = {
            "job": job,
            "preset": request.preset,
            "kind": request.kind,
            "retry": request.retry,
            "input": desc,
        }
        for key in ("crash", "wedge"):
            if key in chaos:
                payload[key] = chaos[key]
        blob = pickle.dumps(payload)
        self._note_ipc(len(blob) + (desc.nbytes if desc is not None else 0), "to_worker")
        task_id = next(self._task_ids)
        budget = request.timeout_s if request.timeout_s is not None else _DEFAULT_DEADLINE_S
        deadline = time.monotonic() + budget + _DEADLINE_GRACE_S
        handle.inbox.put(("task", task_id, blob))
        reply = self._await_reply(handle, task_id, deadline)
        self._sync_injector(job, reply[-1])
        if reply[0] == "err":
            _, _, exc_type, message, _ = reply
            if exc_type == "FileNotFoundError":
                # The worker's attach found the segment gone from /dev/shm
                # (external sweep, or the truncation chaos hook).  Mark the
                # arena stale so the next lease re-creates the segment; the
                # attempt itself is retryable.
                handle.arena.mark_stale()
                self._note_transport_error("missing_segment")
                raise ShmTransportError(
                    f"worker {handle.worker_id} lost its shm segment mid-attempt "
                    f"({message}); arena re-created, attempt requeued"
                )
            raise WorkerTaskError(exc_type, message)
        outcome: AttemptOutcome = pickle.loads(reply[2])
        self._note_ipc(len(reply[2]) + (desc.nbytes if desc is not None else 0), "from_worker")
        if outcome.extras.pop("factor_in_shm", False) and view is not None:
            expected_crc = outcome.extras.pop("factor_crc", None)
            if chaos.get("corrupt_shm"):
                view[0, -1] += 1.0  # scribble between the worker's CRC stamp and our read
            if expected_crc is not None and zlib.crc32(view) != expected_crc:
                self._note_transport_error("corrupt_factor")
                raise ShmIntegrityError(
                    f"worker {handle.worker_id}'s factor failed its CRC check crossing "
                    "shared memory; result discarded, attempt requeued"
                )
            outcome.factor = np.array(view)  # detach from the arena before reuse
        else:
            outcome.extras.pop("factor_crc", None)
        return outcome

    @staticmethod
    def _sync_injector(job, state: dict | None) -> None:
        """Apply the worker's post-run injector delta to the parent's copy.

        The worker ran against a pickled snapshot, so fired plans and
        fired-fault records must be mirrored here for the parent-side
        ``job.injector`` to match what the in-process backends leave
        behind — a fault that fired in the worker stays one-shot across
        retries ("a restarted run must not re-inject").
        """
        injector = job.injector
        if injector is None or state is None:
            return
        for idx, iteration, old_value in state["records"]:
            injector.fired.append(
                FiredFault(plan=injector.plans[idx], iteration=iteration, old_value=old_value)
            )
        for idx in state["fired"]:
            injector.plans[idx].fired = True

    def _await_reply(self, handle: _WorkerHandle, task_id: int, deadline: float):
        """Poll the worker's outbox, watching liveness; respawn on death.

        *deadline* (monotonic seconds) bounds the wait: a worker that is
        alive but silent past it — wedged in native code, say — is killed
        and respawned so the pool slot is always reclaimed, even though
        the caller's ``asyncio.wait_for`` cannot cancel this thread.
        """
        process, outbox = handle.process, handle.outbox
        while True:
            if time.monotonic() > deadline:
                self._respawn(handle, reason="wedged")
                raise WorkerCrashedError(
                    f"pool worker {handle.worker_id} missed its attempt deadline; "
                    "killed and respawned, attempt requeued"
                )
            try:
                reply = outbox.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if not process.is_alive():
                    exitcode = process.exitcode
                    self._respawn(handle, reason="crash")
                    raise WorkerCrashedError(
                        f"pool worker {handle.worker_id} died mid-attempt "
                        f"(exitcode {exitcode}); attempt requeued"
                    ) from None
                continue
            if reply[0] in ("ok", "err") and reply[1] == task_id:
                return reply
            # Stale reply from a cancelled/abandoned attempt: drop it.

    def _respawn(self, handle: _WorkerHandle, reason: str) -> None:
        handle.kill()
        for q in (handle.inbox, handle.outbox):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        handle.spawn()
        self._note_restart(reason)
