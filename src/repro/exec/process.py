"""Process backend: a persistent spawn pool with shared-memory transport.

This is the multicore path: *workers* long-lived processes (spawned once,
kept warm — see :mod:`repro.exec.worker`), each owning one inbox/outbox
queue pair and one parent-owned :class:`~repro.hetero.memory.SharedArena`.
The dispatch unit is a **batch** of attempts (a singleton is just a batch
of one — ``run_sync`` literally runs ``run_batch_sync([request])``, which
is what pins batched/singleton bit-identity by construction):

1. the parent leases one view per real-mode item from the checked-out
   worker's arena — warm segments come back off the arena's size-class
   free-list, so steady-state traffic creates nothing — and fills each
   with the job's deterministic input matrix; **this, not a pickle, is
   how matrices travel** (rule RPL007);
2. the batch payload (job records, preset names, shm *descriptors*, plus
   the names of any segments the arena trimmed since last time) is
   pickled and queued as **one wire message / one worker wakeup**; the
   worker factors each shared view in place, writes factor bytes back
   through the same segments, and streams one reply per item as it
   completes;
3. the parent polls the outbox while watching worker liveness — a dead
   process (crash, OOM kill, test-injected ``os._exit``) loses only the
   items it had not yet answered: after the pool respawns a replacement,
   exactly those come back as
   :class:`~repro.util.exceptions.WorkerCrashedError` and the service's
   retry ladder requeues them, while the batch's already-streamed
   survivors keep their results.

``stop()`` drains: every worker gets a stop sentinel, is joined (then
terminated if wedged), and every arena segment is unlinked — the parent
is the only owner of shared memory, always.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
import zlib
from collections import deque

import numpy as np

from repro.exec.base import AttemptRequest, Executor, _SlotTimer
from repro.exec.worker import worker_main
from repro.faults.injector import FiredFault
from repro.hetero.memory import SharedArena
from repro.recovery.snapshot import SnapshotLayout, read_snapshot, zero_epochs
from repro.service.metrics import MetricsRegistry
from repro.service.policy import RESUMABLE_SCHEMES, AttemptOutcome, job_matrix
from repro.util.exceptions import (
    ExecutorError,
    ShmIntegrityError,
    ShmTransportError,
    WorkerCrashedError,
    WorkerTaskError,
)
from repro.util.validation import require

#: How often the result wait re-checks worker liveness (seconds).
_POLL_S = 0.05
#: How long a spawning worker may take to report ready (imports included).
_READY_TIMEOUT_S = 120.0
#: Per-attempt silence ceiling when the request carries no timeout
#: (synchronous bench/test callers); the service always passes one.
_DEFAULT_DEADLINE_S = 600.0
#: Slack added to the request timeout before a silent worker is declared
#: wedged, so the caller's own ``asyncio.wait_for`` fires first and the
#: kill only reclaims slots the async layer already abandoned.
_DEADLINE_GRACE_S = 2.0


class _WorkerHandle:
    """Parent-side record of one pool worker slot."""

    def __init__(self, worker_id: int, ctx, arena_tag: str) -> None:
        self.worker_id = worker_id
        self.ctx = ctx
        self.arena = SharedArena(arena_tag)
        self.process = None
        self.inbox = None
        self.outbox = None

    def spawn(self) -> None:
        self.inbox = self.ctx.Queue()
        self.outbox = self.ctx.Queue()
        self.process = self.ctx.Process(
            target=worker_main,
            args=(self.worker_id, self.inbox, self.outbox),
            daemon=True,
            name=f"repro-exec-w{self.worker_id}",
        )
        self.process.start()
        msg = self.outbox.get(timeout=_READY_TIMEOUT_S)
        require(msg[0] == "ready", f"worker {self.worker_id} failed its ready handshake: {msg!r}")

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)

    def close(self) -> None:
        # The arena release is the part that frees /dev/shm; it must run
        # even when the kill or queue teardown throws (a worker that died
        # mid-dispatch can leave queue feeder threads in odd states).
        try:
            self.kill()
            for q in (self.inbox, self.outbox):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
        finally:
            self.arena.release()


class ProcessExecutor(Executor):
    """Persistent multi-process pool with zero-copy matrix transport."""

    name = "process"

    def __init__(self, workers: int = 2, metrics: MetricsRegistry | None = None) -> None:
        super().__init__(capacity=workers, metrics=metrics)
        self._ctx = multiprocessing.get_context("spawn")
        self._slots = threading.Semaphore(workers)
        self._lock = threading.Lock()
        self._idle: list[_WorkerHandle] = []
        self._handles: list[_WorkerHandle] = []
        self._task_ids = itertools.count(1)
        self._started = False
        self._stopping = False
        # One-shot chaos overlays, consumed FIFO by the next dispatches.
        # Worker-side keys ("crash", "wedge") ride in the task payload;
        # parent-side keys ("truncate_shm", "corrupt_shm") are acted on
        # around the shm transport without the worker's knowledge.
        self._chaos: deque[dict] = deque()

    # -- lifecycle ---------------------------------------------------------------

    def start_sync(self, warm: list[tuple[int, int]] | None = None) -> None:
        """Spawn the pool (idempotent, thread-safe); optionally pre-warm."""
        with self._lock:
            self._start_locked(warm)

    def _start_locked(self, warm: list[tuple[int, int]] | None = None) -> None:
        """Spawn under ``self._lock`` — concurrent first dispatches through
        ``run_sync`` must not each bring up a full pool."""
        if self._started:
            return
        require(not self._stopping, "executor is stopping")
        base = f"rx-{multiprocessing.current_process().pid}-{id(self) & 0xFFFF:x}"
        try:
            for wid in range(self.capacity):
                handle = _WorkerHandle(wid, self._ctx, f"{base}-w{wid}")
                # Track before spawn: if spawn itself fails the cleanup
                # below still releases this slot's arena and queues.
                self._handles.append(handle)
                handle.spawn()
                if warm:
                    handle.inbox.put(("warm", [(int(n), int(b)) for n, b in warm]))
                self._idle.append(handle)
        except BaseException:
            # Partial start must not leak workers or /dev/shm segments.
            for handle in self._handles:
                handle.close()
            self._handles.clear()
            self._idle.clear()
            raise
        self._started = True

    async def start(self) -> None:
        import asyncio

        await asyncio.to_thread(self.start_sync)

    def stop_sync(self) -> None:
        """Graceful drain: stop sentinels, join, then hard teardown."""
        with self._lock:
            if not self._started or self._stopping:
                return
            # Turns away new dispatches while we wait for the in-flight
            # ones; the slot acquisition below must happen outside the
            # lock, because finishing attempts need it to check back in.
            self._stopping = True
        # Taking every slot guarantees no attempt is in flight.  The count
        # of slots actually taken is tracked so a failure mid-acquisition
        # releases exactly that many — releasing ``capacity`` after a
        # partial acquire would inflate the semaphore and let more
        # attempts run concurrently than the pool has workers.
        acquired = 0
        try:
            for _ in range(self.capacity):
                self._slots.acquire()  # noqa: RPL101 — loop-paired with the release loop below; the counter keeps the pairing exact
                acquired += 1
            with self._lock:
                for handle in self._handles:
                    if handle.process is not None and handle.process.is_alive():
                        handle.inbox.put(("stop",))
                for handle in self._handles:
                    if handle.process is not None:
                        handle.process.join(timeout=5.0)
                    handle.close()
                self._handles.clear()
                self._idle.clear()
                self._started = False
        finally:
            with self._lock:
                self._stopping = False
            for _ in range(acquired):
                self._slots.release()

    async def stop(self) -> None:
        import asyncio

        await asyncio.to_thread(self.stop_sync)

    # -- chaos hooks -------------------------------------------------------------

    def _arm(self, overlay: dict, count: int) -> None:
        require(count >= 1, "injection count must be >= 1")
        with self._lock:
            self._chaos.extend(dict(overlay) for _ in range(count))

    def inject_crash(self, count: int = 1, at_item: int = 0) -> None:
        """Arm worker crashes on upcoming dispatched attempts.

        Deterministic stand-in for an OOM kill mid-attempt; used by the
        retry-ladder requeue tests (``count > 1`` exhausts the ladder).
        Overlays are consumed one per *item*, so ``at_item`` pads the
        queue with that many no-op overlays first — with batched
        dispatch this places the crash mid-batch: items before it stream
        their replies and survive, items from it on are lost.
        """
        require(at_item >= 0, "at_item must be >= 0")
        if at_item:
            self._arm({}, at_item)
        self._arm({"crash": True}, count)

    def inject_wedge(self, seconds: float, count: int = 1) -> None:
        """Arm one-shot stalls: the next attempts' workers hang *seconds*.

        Deterministic stand-in for a worker stuck in native code; used by
        the deadline-reclaim tests.
        """
        self._arm({"wedge": float(seconds)}, count)

    def inject_shm_truncation(self, count: int = 1) -> None:
        """Arm /dev/shm segment removal under the next dispatched attempts.

        The parent unlinks the segment *after* filling it, so a worker
        without a warm mapping fails its attach (``FileNotFoundError`` →
        :class:`ShmTransportError` parent-side) and the arena heals on
        the next lease.  A worker already attached keeps its mapping —
        exactly the asymmetry a real tmpfs sweep exhibits.
        """
        self._arm({"truncate_shm": True}, count)

    def inject_shm_corruption(self, count: int = 1) -> None:
        """Arm in-transit factor corruption for the next dispatched attempts.

        The parent scribbles on the shared view after the worker's reply
        (between the worker's CRC stamp and the parent's copy-out), so the
        integrity check must catch it and raise :class:`ShmIntegrityError`.
        """
        self._arm({"corrupt_shm": True}, count)

    def inject_midrun_crash(
        self, after_iteration: int = 0, count: int = 1, corrupt_rows: tuple = ()
    ) -> None:
        """Arm worker death at an iteration boundary, snapshot published first.

        Unlike :meth:`inject_crash` (which dies before any work), the
        worker factors through iteration *after_iteration*, publishes the
        snapshot, and only then ``os._exit``\\ s — the deterministic
        stand-in for an OOM kill mid-attempt with salvageable state.
        *corrupt_rows* additionally scribbles those global matrix rows of
        the surviving snapshot before the parent reads it, turning them
        into CRC-detected known-location erasures (rows sharing one block
        row beyond the ``m``-erasure capacity force backward recovery).
        """
        require(after_iteration >= 0, "after_iteration must be >= 0")
        overlay: dict = {"crash_after": int(after_iteration)}
        if corrupt_rows:
            overlay["corrupt_snapshot"] = tuple(int(r) for r in corrupt_rows)
        self._arm(overlay, count)

    def _next_chaos(self) -> dict:
        with self._lock:
            return self._chaos.popleft() if self._chaos else {}

    # -- execution ---------------------------------------------------------------

    def run_sync(self, request: AttemptRequest) -> AttemptOutcome:
        """One attempt == a batch of one; unwrap the value or raise it."""
        result = self.run_batch_sync([request])[0]
        if isinstance(result, BaseException):
            raise result
        return result

    def run_batch_sync(self, requests: list[AttemptRequest]) -> list[AttemptOutcome | BaseException]:
        """Run a batch on ONE worker round-trip; failures come back as values."""
        require(len(requests) >= 1, "empty dispatch batch")
        with self._lock:
            require(not self._stopping, "executor is stopping")
            self._start_locked()
        timer = _SlotTimer()
        handle = None
        self._slots.acquire()
        try:
            with self._lock:
                if not self._idle:
                    # stop_sync won the race for this slot and tore the pool
                    # down while we waited; there is no worker to dispatch to.
                    raise ExecutorError("executor stopped while the attempt waited for a slot")
                handle = self._idle.pop()
            self._note_batch_dispatch(timer.waited(), requests)
            try:
                return self._dispatch_batch(handle, requests)
            finally:
                self._note_done(len(requests))
        finally:
            try:
                with self._lock:
                    if handle is not None:
                        self._idle.append(handle)
            finally:
                # Must check the handle back in *before* releasing the slot
                # (a freed slot with an empty idle list strands the next
                # attempt), and must release even if the check-in throws.
                self._slots.release()

    def _dispatch_batch(
        self, handle: _WorkerHandle, requests: list[AttemptRequest]
    ) -> list[AttemptOutcome | BaseException]:
        views: list[np.ndarray | None] = []
        descs = []
        snaps: list[np.ndarray | None] = []
        snap_descs = []
        overlays: list[dict] = []
        items: list[dict] = []
        budget = 0.0
        for request in requests:
            job = request.job
            chaos = self._next_chaos()
            view = desc = None
            snap_view = snap_desc = None
            if job.numerics == "real":
                view, desc = handle.arena.lease((job.n, job.n))
                self._note_arena_lease(handle.arena.last_lease_reused)
                np.copyto(view, job_matrix(job))
                if chaos.get("truncate_shm"):
                    handle.arena.unlink_backing(desc.name)
                if (
                    request.kind == "attempt"
                    and job.scheme in RESUMABLE_SCHEMES
                    and job.n % job.block_size == 0
                ):
                    # Bad geometry is deliberately NOT caught here: the
                    # job still ships (snapshot-less) so the scheme's own
                    # typed error crosses the boundary from the worker.
                    # Snapshot segment for forward recovery.  Not counted
                    # as an arena op: it is transport plumbing for the
                    # attempt's lease, not a second attempt.  The epoch
                    # words are zeroed because the warm free-list reuses
                    # segments byte-for-byte — a stale snapshot from a
                    # previous job must never validate.
                    layout = SnapshotLayout(job.n, job.block_size)
                    snap_view, snap_desc = handle.arena.lease(layout.shape)
                    zero_epochs(snap_view)
            item = {
                "job": job,
                "preset": request.preset,
                "kind": request.kind,
                "retry": request.retry,
                "input": desc,
                "snapshot": snap_desc,
            }
            for key in ("crash", "wedge", "crash_after"):
                if key in chaos:
                    item[key] = chaos[key]
            items.append(item)
            views.append(view)
            descs.append(desc)
            snaps.append(snap_view)
            snap_descs.append(snap_desc)
            overlays.append(chaos)
            budget += request.timeout_s if request.timeout_s is not None else _DEFAULT_DEADLINE_S
        # Trimmed segment names ride along so the worker can drop the
        # stale mappings before it touches this batch's descriptors.
        blob = pickle.dumps({"items": items, "retired": handle.arena.drain_retired()})
        self._note_ipc(
            len(blob) + sum(d.nbytes for d in descs if d is not None), "to_worker"
        )
        batch_id = next(self._task_ids)
        sent_at = time.monotonic()
        deadline = sent_at + budget + _DEADLINE_GRACE_S
        handle.inbox.put(("batch", batch_id, blob))
        results: list[AttemptOutcome | BaseException | None] = [None] * len(requests)
        pending = set(range(len(requests)))
        exec_wall_total = 0.0
        clean = True
        try:
            while pending:
                try:
                    reply = self._await_item(handle, batch_id, deadline)
                except WorkerCrashedError as exc:
                    # The worker died (or wedged past its deadline) with
                    # these items unanswered: each gets its own error so
                    # every affected job re-enters the retry ladder; the
                    # batch's already-streamed survivors are untouched.
                    # Whatever iteration-boundary state the dead worker
                    # published is salvaged off the error so the service
                    # can attempt forward recovery before restarting.
                    for index in sorted(pending):
                        err = WorkerCrashedError(str(exc))
                        err.salvage = self._salvage_snapshot(
                            requests[index].job, snaps[index], overlays[index]
                        )
                        results[index] = err
                    pending.clear()
                    clean = False
                    break
                index = reply[2]
                if index not in pending:
                    continue  # duplicate/stale reply: drop it
                settled = self._settle_item(
                    handle,
                    requests[index],
                    reply,
                    views[index],
                    descs[index],
                    overlays[index],
                    snaps[index],
                )
                results[index], exec_wall = settled
                if exec_wall is None:
                    clean = False
                else:
                    exec_wall_total += exec_wall
                pending.discard(index)
        finally:
            for desc in itertools.chain(descs, snap_descs):
                if desc is not None:
                    handle.arena.end_lease(desc)
        if clean:
            # Pure dispatch overhead of the round-trip: wall time minus
            # the compute the worker reported, amortized per item — the
            # signal the cost-model backend chooser consumes.
            overhead = (time.monotonic() - sent_at) - exec_wall_total
            self._note_latency(overhead / len(requests))
        return results  # type: ignore[return-value]

    def _settle_item(
        self,
        handle: _WorkerHandle,
        request: AttemptRequest,
        reply: tuple,
        view: np.ndarray | None,
        desc,
        chaos: dict,
        snap_view: np.ndarray | None = None,
    ) -> tuple[AttemptOutcome | BaseException, float | None]:
        """Turn one streamed item reply into an outcome or exception value.

        Returns ``(result, exec_wall_s)``; the wall time is ``None`` for
        failed items (they contribute nothing to the latency EWMA).
        """
        status = reply[3]
        if status == "err":
            _, _, _, _, exc_type, message, inj = reply
            self._sync_injector(request.job, inj)
            if exc_type == "FileNotFoundError":
                # The worker's attach found the segment gone from /dev/shm
                # (external sweep, or the truncation chaos hook).  Drop just
                # that segment — other leases stay warm — and requeue.
                if desc is not None:
                    handle.arena.discard(desc.name)
                self._note_transport_error("missing_segment")
                return (
                    ShmTransportError(
                        f"worker {handle.worker_id} lost shm segment {desc.name if desc else '?'} "
                        f"mid-attempt ({message}); segment dropped, attempt requeued"
                    ),
                    None,
                )
            return WorkerTaskError(exc_type, message), None
        body, inj = reply[4], reply[5]
        self._sync_injector(request.job, inj)
        outcome: AttemptOutcome = pickle.loads(body)
        self._note_ipc(len(body) + (desc.nbytes if desc is not None else 0), "from_worker")
        exec_wall = outcome.extras.pop("exec_wall_s", None)
        if outcome.extras.pop("factor_in_shm", False) and view is not None:
            expected_crc = outcome.extras.pop("factor_crc", None)
            if chaos.get("corrupt_shm"):
                view[0, -1] += 1.0  # scribble between the worker's CRC stamp and our read
            if expected_crc is not None and zlib.crc32(view) != expected_crc:
                self._note_transport_error("corrupt_factor")
                err = ShmIntegrityError(
                    f"worker {handle.worker_id}'s factor failed its CRC check crossing "
                    "shared memory; result discarded, attempt requeued"
                )
                # The factor bytes are untrusted, but the attempt's own
                # iteration-boundary snapshots are independently CRC'd —
                # salvage the freshest so recovery can resume forward.
                err.salvage = self._salvage_snapshot(request.job, snap_view, chaos)
                return err, None
            outcome.factor = np.array(view)  # detach from the arena before reuse
        else:
            outcome.extras.pop("factor_crc", None)
        return outcome, exec_wall

    def _salvage_snapshot(self, job, snap_view: np.ndarray | None, chaos: dict):
        """Read the freshest decodable snapshot off a failed item's segment.

        Returns a :class:`~repro.recovery.salvage.Salvage` (parent-owned
        copies; the lease may end immediately after) or ``None`` when the
        attempt never published.  The ``corrupt_snapshot`` chaos overlay
        scribbles the named matrix rows first, so their CRCs fail and the
        reader classifies them as known-location erasures.
        """
        if snap_view is None:
            return None
        layout = SnapshotLayout(job.n, job.block_size)
        for row in chaos.get("corrupt_snapshot", ()):
            for slot in range(2):
                layout.matrix_view(snap_view[slot])[row, :] += 1.0
        salvage = read_snapshot(snap_view, layout)
        if salvage is not None and (salvage.bad_matrix_rows or salvage.bad_chk_rows):
            self._note_transport_error("snapshot_rows")
        return salvage

    @staticmethod
    def _sync_injector(job, state: dict | None) -> None:
        """Apply the worker's post-run injector delta to the parent's copy.

        The worker ran against a pickled snapshot, so fired plans and
        fired-fault records must be mirrored here for the parent-side
        ``job.injector`` to match what the in-process backends leave
        behind — a fault that fired in the worker stays one-shot across
        retries ("a restarted run must not re-inject").
        """
        injector = job.injector
        if injector is None or state is None:
            return
        for idx, iteration, old_value in state["records"]:
            injector.fired.append(
                FiredFault(plan=injector.plans[idx], iteration=iteration, old_value=old_value)
            )
        for idx in state["fired"]:
            injector.plans[idx].fired = True

    def _await_item(self, handle: _WorkerHandle, batch_id: int, deadline: float):
        """Poll the worker's outbox for this batch's next streamed item reply.

        *deadline* (monotonic seconds) bounds the wait: a worker that is
        alive but silent past it — wedged in native code, say — is killed
        and respawned so the pool slot is always reclaimed, even though
        the caller's ``asyncio.wait_for`` cannot cancel this thread.  A
        raise here means the worker is gone; the caller fails the batch's
        still-pending items and keeps the settled ones.
        """
        process, outbox = handle.process, handle.outbox
        while True:
            if time.monotonic() > deadline:
                self._respawn(handle, reason="wedged")
                raise WorkerCrashedError(
                    f"pool worker {handle.worker_id} missed its batch deadline; "
                    "killed and respawned, unanswered attempts requeued"
                )
            try:
                reply = outbox.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if not process.is_alive():
                    exitcode = process.exitcode
                    self._respawn(handle, reason="crash")
                    raise WorkerCrashedError(
                        f"pool worker {handle.worker_id} died mid-batch "
                        f"(exitcode {exitcode}); unanswered attempts requeued"
                    ) from None
                continue
            if reply[0] == "item" and reply[1] == batch_id:
                return reply
            # Stale reply from a cancelled/abandoned batch: drop it.

    def _respawn(self, handle: _WorkerHandle, reason: str) -> None:
        handle.kill()
        for q in (handle.inbox, handle.outbox):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        handle.spawn()
        self._note_restart(reason)
