"""Shared utilities: validation, exceptions, text rendering, RNG helpers."""

from repro.util.exceptions import (
    DeadlockError,
    DeviceMemoryError,
    ReproError,
    RestartExhaustedError,
    SimulationError,
    SingularBlockError,
    UnrecoverableError,
    ValidationError,
)
from repro.util.validation import (
    check_block_size,
    check_dtype,
    check_positive,
    check_square,
    require,
)

__all__ = [
    "DeadlockError",
    "DeviceMemoryError",
    "ReproError",
    "RestartExhaustedError",
    "SimulationError",
    "SingularBlockError",
    "UnrecoverableError",
    "ValidationError",
    "check_block_size",
    "check_dtype",
    "check_positive",
    "check_square",
    "require",
]
