"""Deterministic random-number helpers.

All stochastic behaviour in the library (matrix generation, fault sites,
Poisson arrivals) flows through :func:`resolve_rng` so that every experiment
is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "np.random.Generator | int | None"


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Accepts an existing generator (returned as-is, so state is shared), an
    integer seed, or ``None`` for a default fixed seed — defaulting to a
    *fixed* seed rather than entropy keeps runs reproducible by default,
    which matters more than novelty for a reproduction package.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        rng = 0x5EED
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
