"""Deterministic random-number helpers.

All stochastic behaviour in the library (matrix generation, fault sites,
Poisson arrivals) flows through :func:`resolve_rng` so that every experiment
is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "np.random.Generator | int | None"


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Accepts an existing generator (returned as-is, so state is shared), an
    integer seed, or ``None`` for a default fixed seed — defaulting to a
    *fixed* seed rather than entropy keeps runs reproducible by default,
    which matters more than novelty for a reproduction package.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        rng = 0x5EED
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive_rng(root: int, *keys: int) -> np.random.Generator:
    """An independent generator keyed by ``(root, *keys)``.

    The generator depends only on the key tuple — not on how many other
    generators were derived before it or on call order — so concurrent
    consumers (e.g. service jobs executing interleaved across workers) draw
    exactly the sequence they would have drawn running serially.  This is
    the concurrency-safe complement to :func:`spawn`, whose children depend
    on the parent's spawn counter.
    """
    seq = np.random.SeedSequence(entropy=int(root), spawn_key=tuple(int(k) for k in keys))
    return np.random.default_rng(seq)
