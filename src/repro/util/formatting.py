"""Plain-text rendering of tables and line series.

The experiment harness regenerates the paper's tables and figures as text:
tables render with box-drawing-free ASCII (so they diff cleanly in CI logs)
and figures render as aligned numeric series plus an optional ASCII chart.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.util.exceptions import ValidationError


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render one or more y-series against shared x values (a text 'figure')."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name, ys in series.items():
            if len(ys) != len(x_values):
                raise ValidationError(
                    f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
                )
            row.append(round(float(ys[i]), precision))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render a crude ASCII line chart — enough to eyeball curve shapes."""
    if not series:
        raise ValidationError("no series to chart")
    markers = "*o+x#@%&"
    all_y = [y for ys in series.values() for y in ys]
    lo, hi = min(all_y), max(all_y)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    for s_idx, (name, ys) in enumerate(series.items()):
        mark = markers[s_idx % len(markers)]
        for i, y in enumerate(ys):
            col = 0 if n == 1 else round(i * (width - 1) / (n - 1))
            row = round((hi - y) / (hi - lo) * (height - 1))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {lo:.4g} .. {hi:.4g}")
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"x: {x_values[0]} .. {x_values[-1]}    {legend}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
