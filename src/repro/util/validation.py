"""Argument validation helpers.

These are deliberately cheap (O(1) except where a matrix property must be
checked) so they can be left on in production code paths.  All of them raise
:class:`repro.util.exceptions.ValidationError` with a message naming the
offending argument, which keeps the call sites one-liners.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.util.exceptions import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition*."""
    if not condition:
        raise ValidationError(message)


def check_positive(name: str, value: float | int) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def check_square(name: str, a: np.ndarray) -> int:
    """Require *a* to be a square 2-D array; return its order."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {a.shape}")
    return a.shape[0]


def check_dtype(name: str, a: np.ndarray, dtype: Any = np.float64) -> None:
    """Require *a* to have exactly *dtype* (the library is double-precision)."""
    if a.dtype != np.dtype(dtype):
        raise ValidationError(f"{name} must have dtype {np.dtype(dtype)}, got {a.dtype}")


def check_block_size(n: int, block_size: int) -> int:
    """Require *block_size* to evenly divide *n*; return the block count.

    MAGMA pads ragged trailing blocks; we require exact tiling instead to
    keep the checksum index arithmetic (row locator ``delta2/delta1``)
    straightforward.  Generators in :mod:`repro.blas.spd` produce matching
    sizes, and callers can always pad their input.
    """
    check_positive("n", n)
    check_positive("block_size", block_size)
    if n % block_size != 0:
        raise ValidationError(
            f"block_size {block_size} must evenly divide matrix order {n}"
        )
    return n // block_size
