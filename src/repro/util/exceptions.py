"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
Fault-tolerance control flow (restart requests, unrecoverable corruption)
uses dedicated exception types because the schemes in :mod:`repro.core`
genuinely use them for non-local control transfer, mirroring how the paper's
implementation aborts and re-runs a decomposition when ABFT cannot correct.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, range, ...)."""


class SingularBlockError(ReproError, ArithmeticError):
    """A diagonal block was not positive definite during POTF2.

    On the real machine this is the *fail-stop* outcome the paper warns
    about: a storage error that breaks positive definiteness terminates the
    whole factorization inside the vendor POTF2.
    """

    def __init__(self, block_index: int, pivot: int, value: float) -> None:
        super().__init__(
            f"diagonal block {block_index} lost positive definiteness at "
            f"pivot {pivot} (leading value {value!r})"
        )
        self.block_index = block_index
        self.pivot = pivot
        self.value = value


class UnrecoverableError(ReproError, RuntimeError):
    """ABFT verification found corruption it cannot correct.

    Raised when more than one error hits a single block column, when the
    located row index is inconsistent, or when taint analysis (shadow mode)
    reports propagated corruption.  Scheme drivers translate this into a
    restart of the whole decomposition, doubling the simulated run time
    exactly as in Tables VII/VIII of the paper.
    """

    def __init__(self, message: str, *, block: tuple[int, int] | None = None) -> None:
        super().__init__(message)
        self.block = block


class RestartExhaustedError(ReproError, RuntimeError):
    """The scheme restarted ``max_restarts`` times and still failed."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine detected an inconsistent schedule."""


class DeadlockError(SimulationError):
    """No runnable task remains but unfinished tasks exist."""


class DeviceMemoryError(ReproError, MemoryError):
    """A simulated device allocation exceeded the device's capacity."""


class ExecutorError(ReproError, RuntimeError):
    """Base class for execution-backend failures (:mod:`repro.exec`)."""


class WorkerCrashedError(ExecutorError):
    """A pool worker process died (crash/OOM/kill) while owning an attempt.

    The service's retry ladder treats this exactly like a failed attempt:
    the job is requeued with backoff, the pool respawns the worker, and
    nothing is lost but the attempt's wall time.
    """


class WorkerTaskError(ExecutorError):
    """An attempt raised inside a pool worker; re-raised parent-side.

    Carries the worker-side exception's class name so callers (and tests)
    can distinguish scheme-level outcomes (``RestartExhaustedError``) from
    infrastructure failures without unpickling arbitrary objects.
    """

    def __init__(self, exc_type: str, message: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type


class ShmTransportError(ExecutorError):
    """A shared-memory segment vanished or could not be attached mid-dispatch.

    Models the /dev/shm file being truncated or removed underneath the
    pool (an external tmpfs sweep, a resource-tracker race).  The executor
    marks the slot's arena stale so the next dispatch re-creates the
    segment; the attempt itself is retryable.
    """


class ShmIntegrityError(ExecutorError):
    """A factor crossed the shared-memory transport corrupted.

    The worker stamps each in-segment factor with a CRC32 of its bytes;
    the parent re-hashes after copying out.  A mismatch means the segment
    was scribbled on between the worker's write and the parent's read —
    the result is discarded and the attempt retried, never returned.
    """


class SalvageError(ReproError, RuntimeError):
    """Mid-attempt state could not be salvaged into a forward recovery.

    Raised by the erasure-recovery layer (:mod:`repro.recovery`) when a
    snapshot is unreadable, its loss pattern exceeds the checksum code's
    erasure capacity, or reconstruction fails re-verification.  The
    service answers it by falling back to the ordinary retry ladder —
    a full restart — never by returning the damaged state.
    """


class JournalError(ReproError, RuntimeError):
    """The durable job journal could not be written or replayed."""


class ClusterError(ReproError, RuntimeError):
    """A cluster wire-protocol or shard-management failure.

    Raised for malformed frames, handshake/version mismatches, oversized
    payloads and dead-shard conditions.  The contract (fuzz-tested) is
    that *any* byte stream fed to the frame decoder either yields valid
    messages or raises this — a corrupt peer can cost the router one
    connection, never the process.
    """
