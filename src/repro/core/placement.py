"""The Optimization-2 decision model: where should checksum updating run?

Two implementations:

- :func:`paper_decision_model` — the formulas of Section V-B exactly as
  printed (peak GFLOPS, ``N_Upd = 2n³/3B``, ``D_upd = n³/3KB²``), kept for
  the analytic-model tests.  Taken literally, the outer ``max`` hides the
  CPU branch under the GPU's run time whenever the CPU keeps pace, so it
  prefers the CPU on both testbeds.
- :func:`choose_updating_placement` — the decision the measured system
  actually exhibits (CPU on Tardis, GPU stream on Bulldozer64), driven by
  the two effects the paper's text attributes it to: how well the GPU
  generation overlaps extra thin kernels (Fermi's single hardware queue
  vs Kepler's Hyper-Q), and the PCIe traffic the CPU placement adds to a
  link already carrying the diagonal-tile round trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hetero.spec import MachineSpec
from repro.util.validation import check_block_size, check_positive

_DOUBLE = 8


@dataclass(frozen=True)
class PlacementEstimate:
    """Visible-overhead estimates (seconds) behind a placement choice."""

    gpu_stream_cost: float
    cpu_cost: float

    @property
    def choice(self) -> str:
        return "cpu" if self.cpu_cost < self.gpu_stream_cost else "gpu_stream"


def paper_decision_model(
    spec: MachineSpec, n: int, block_size: int, k: int = 1
) -> tuple[float, float]:
    """(T_pickGPU, T_pickCPU) exactly per Section V-B, in seconds."""
    check_positive("n", n)
    check_block_size(n, block_size)
    check_positive("k", k)
    p_gpu = spec.gpu.peak_gflops * 1e9
    p_cpu = spec.cpu.peak_gflops * 1e9
    r = spec.link.bandwidth_gbs * 1e9
    n_cho = n**3 / 3.0
    n_upd = 2.0 * n**3 / (3.0 * block_size)
    n_rec = 2.0 * n**3 / (3.0 * block_size)
    d_upd_bytes = n**3 / (3.0 * k * block_size**2) * _DOUBLE
    t_pick_gpu = (n_cho + n_upd + n_rec) / p_gpu
    t_pick_cpu = max((n_cho + n_rec) / p_gpu, n_upd / p_cpu + d_upd_bytes / r)
    return t_pick_gpu, t_pick_cpu


def estimate_visible_costs(
    spec: MachineSpec, n: int, block_size: int, k: int = 1
) -> PlacementEstimate:
    """Visible (non-hidden) overhead of each placement, in seconds.

    GPU-stream path: the thin updating kernels are bandwidth-bound; on a
    GPU with real concurrent-kernel execution (≥8 hardware queues) most of
    their time hides in the main kernels' capacity slack, on a Fermi-class
    GPU almost none does.

    CPU path: the arithmetic hides under the GPU entirely (the host is
    idle), but block row j of L crosses PCIe every iteration (n²/2
    elements in total) plus the per-batch strip staging (n³/3KB² elements),
    on a link shared with the latency-critical diagonal-tile transfers —
    count roughly half of it as visible.
    """
    check_block_size(n, block_size)
    gpu, cpu, link = spec.gpu, spec.cpu, spec.link
    n_upd = 2.0 * n**3 / (3.0 * block_size)

    # Bandwidth-bound thin-kernel rate (arithmetic intensity 0.5 flop/byte).
    thin_rate = 0.5 * 0.6 * gpu.mem_bandwidth_gbs * 1e9
    hidden_fraction = 0.75 if gpu.max_concurrent_kernels >= 8 else 0.0
    gpu_cost = n_upd / thin_rate * (1.0 - hidden_fraction)

    transfer_bytes = (n**2 / 2.0 + n**3 / (3.0 * k * block_size**2)) * _DOUBLE
    link_contention = 0.4
    cpu_cost = n_upd / (cpu.eff("chk_update") * cpu.peak_gflops * 1e9) * 0.0
    cpu_cost += transfer_bytes / (link.bandwidth_gbs * 1e9) * link_contention
    return PlacementEstimate(gpu_stream_cost=gpu_cost, cpu_cost=cpu_cost)


def choose_updating_placement(
    spec: MachineSpec, n: int, block_size: int | None = None, k: int = 1
) -> str:
    """``"cpu"`` or ``"gpu_stream"`` for this machine and problem size."""
    bs = block_size if block_size is not None else spec.default_block_size
    return estimate_visible_costs(spec, n, bs, k).choice
