"""Batched checksum recalculation: the vectorized ABFT hot path.

The paper's Optimization 1 exists because per-tile checksum recalculation
is a swarm of small BLAS-2 kernels; on a real GPU the fix is concurrent
kernel execution, and in our real-mode numerics the analogous fix is to
stop looping ``W @ tile`` over tiles in Python and issue one large GEMM
per *structured run* of the verification batch.

:class:`BatchVerifyEngine` consumes the run plan of
:func:`repro.hetero.memory.plan_tile_runs` and normalizes every run into
the fused 2-D operand ``X = [tile₁ | tile₂ | … | tile_k]`` of shape
``(B, k·B)``:

- a **row run**'s tiles are adjacent columns of the backing array, so
  ``X`` is a zero-copy view;
- a **column run** / **rectangle** is gathered with a single strided
  ``copyto`` into a preallocated workspace (one memcpy-class operation,
  not a Python loop);
- a **singleton** uses the tile view directly.

Recalculation of the whole run is then one ``W @ X`` GEMM, the tolerance
one more GEMM over ``|X|``, the comparison element-wise, and the per-tile
flag reduction a reshaped ``any``.

Bit-exactness contract
----------------------
``detect`` must route exactly the tiles the per-tile path would have
touched into the per-tile decoder, with everything else untouched.  That
holds because each batched step is element-wise identical to its
per-tile counterpart on this code's operand shapes:

- each output column of the fused GEMM ``W @ X`` depends only on ``W``
  and that column, so it carries the same bits as the per-tile
  ``W @ tile`` (no split-K reassociation at these sizes — verified
  empirically, pinned by ``tests/test_batchverify_properties.py``);
- the gather is a copy, and copies are exact;
- the tolerance ``rtol · (W @ |tile|) + atol`` is reproduced as
  ``t = W @ |X|; t *= rtol; t += atol`` — multiplication is commutative
  in IEEE-754, so the in-place form is exact;
- the comparison ``|fresh − strip| > tol`` is element-wise.

Flagged tiles (almost always none) fall back to the unchanged per-tile
decode in :mod:`repro.core.correct` / :mod:`repro.core.multierror`, so
corrections, statistics and :class:`UnrecoverableError` ordering are
byte-for-byte those of the per-tile path.
"""

from __future__ import annotations

import numpy as np

from repro.core.multierror import vandermonde_weights
from repro.hetero.memory import DeviceBuffer, TileRun, plan_tile_runs


class BatchVerifyEngine:
    """Fused checksum recalculation over a matrix/checksum buffer pair.

    Workspaces are preallocated and grown geometrically, so steady-state
    verification performs no per-batch allocation: each run gathers and
    computes into the same flat buffers, reshaped to the run's geometry.
    """

    def __init__(
        self,
        matrix: DeviceBuffer,
        chk: DeviceBuffer,
        rtol: float = 1e-9,
        atol: float = 1e-12,
    ) -> None:
        self.matrix = matrix
        self.chk = chk
        self.rtol = rtol
        self.atol = atol
        self.block_size = matrix.tile_shape[0]
        self.n_checksums = chk.tile_shape[0]
        self.weights = vandermonde_weights(self.block_size, self.n_checksums)
        self._f64: dict[str, np.ndarray] = {}
        self._bool = np.empty(0, dtype=np.bool_)
        self._prealloc()

    def _prealloc(self) -> None:
        """Size and warm the workspaces for this matrix's run geometry.

        The widest run any driver batch can produce is the trailing-panel
        rectangle of the GEMM re-encode, ``(nb - j - 1) · j ≤ nb²/4``
        tiles; columns and rows top out at ``nb``.  Touching the pages
        here keeps first-fault costs out of the measured verify path
        (geometric growth in :meth:`_ws` remains as a fallback for
        caller-supplied batches that exceed the planner's shapes).
        """
        b, r, nb = self.block_size, self.n_checksums, self.matrix.nb
        if b == 0 or nb == 0 or not self.matrix.real:
            # Simulated buffers have paper-scale geometry but no storage;
            # sizing workspaces for them would allocate gigabytes that no
            # detect/encode call will ever touch.
            return
        cap = nb * nb // 4 + nb
        for name in ("gather_x", "abs"):
            self._ws(name, cap * b * b).fill(0.0)
        for name in ("gather_s", "fresh", "tol"):
            self._ws(name, cap * r * b).fill(0.0)
        self._ws_bool(cap * r * b).fill(False)

    # ----------------------------------------------------------- workspaces

    def _ws(self, name: str, n: int) -> np.ndarray:
        buf = self._f64.get(name)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 2 * (0 if buf is None else buf.size)))
            self._f64[name] = buf
        return buf[:n]

    def _ws_bool(self, n: int) -> np.ndarray:
        if self._bool.size < n:
            self._bool = np.empty(max(n, 2 * self._bool.size), dtype=np.bool_)
        return self._bool[:n]

    # -------------------------------------------------------------- fusing

    def _fused_tiles(self, run: TileRun) -> tuple[np.ndarray, bool]:
        """The run's tiles as one ``(B, k·B)`` operand.

        Returns ``(X, owned)``: *owned* is True when ``X`` is a gathered
        workspace copy the caller may clobber, False when it is a live
        zero-copy view that must be left untouched.
        """
        b, k = self.block_size, len(run)
        if run.kind == "row" or k == 1:
            view = self.matrix.run_view(run)
            return view.reshape(b, k * b), False
        ws = self._ws("gather_x", k * b * b)
        if run.kind == "col":
            # (k, B, B) stack -> (B, k, B): tile t becomes columns [tB, tB+B).
            np.copyto(
                ws.reshape(b, k, b), self.matrix.run_view(run).transpose(1, 0, 2)
            )
        else:
            ki, kj = run.i1 - run.i0, run.j1 - run.j0
            np.copyto(
                ws.reshape(b, ki, kj, b),
                self.matrix.run_view(run).transpose(2, 0, 1, 3),
            )
        return ws.reshape(b, k * b), True

    def _fused_strips(self, run: TileRun) -> tuple[np.ndarray, bool]:
        """The run's strips as one ``(r, k·B)`` operand (same convention)."""
        r, b, k = self.n_checksums, self.block_size, len(run)
        if run.kind == "row" or k == 1:
            return self.chk.run_view(run).reshape(r, k * b), False
        ws = self._ws("gather_s", k * r * b)
        if run.kind == "col":
            np.copyto(
                ws.reshape(r, k, b), self.chk.run_view(run).transpose(1, 0, 2)
            )
        else:
            ki, kj = run.i1 - run.i0, run.j1 - run.j0
            np.copyto(
                ws.reshape(r, ki, kj, b),
                self.chk.run_view(run).transpose(2, 0, 1, 3),
            )
        return ws.reshape(r, k * b), True

    # ------------------------------------------------------------ detection

    def detect(self, keys: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Keys whose tiles fail the checksum comparison, in batch order.

        Pure detection: neither the tiles nor the strips are modified.
        The caller sends the returned keys through the per-tile decoder.
        """
        r, b = self.n_checksums, self.block_size
        flagged: list[tuple[int, int]] = []
        for run in plan_tile_runs(keys):
            k = len(run)
            tiles, owned = self._fused_tiles(run)
            strips, _ = self._fused_strips(run)
            fresh = self._ws("fresh", r * k * b).reshape(r, k * b)
            tol = self._ws("tol", r * k * b).reshape(r, k * b)
            np.matmul(self.weights, tiles, out=fresh)
            if owned:
                work = np.abs(tiles, out=tiles)  # gathered copy: clobber it
            else:
                work = self._ws("abs", tiles.size).reshape(tiles.shape)
                np.abs(tiles, out=work)
            np.matmul(self.weights, work, out=tol)
            tol *= self.rtol
            tol += self.atol
            np.subtract(fresh, strips, out=fresh)
            np.abs(fresh, out=fresh)
            bad = self._ws_bool(r * k * b).reshape(r, k * b)
            np.greater(fresh, tol, out=bad)
            if not bad.any():
                continue
            tile_bad = bad.reshape(r, k, b).any(axis=(0, 2))
            flagged.extend(key for key, hit in zip(run.keys(), tile_bad) if hit)
        return flagged

    # ------------------------------------------------------------- encoding

    def encode(self, keys: list[tuple[int, int]]) -> None:
        """Recompute and store the strips of *keys*: ``chk ← W @ tile``.

        One fused GEMM per run; the result is scattered back through the
        strided strip views (plain copies, so the stored bits equal the
        per-tile encode's).
        """
        r, b = self.n_checksums, self.block_size
        for run in plan_tile_runs(keys):
            k = len(run)
            tiles, _ = self._fused_tiles(run)
            fresh = self._ws("fresh", r * k * b).reshape(r, k * b)
            np.matmul(self.weights, tiles, out=fresh)
            out = self.chk.run_view(run)
            if run.kind == "row" or k == 1:
                out[...] = fresh.reshape(out.shape)
            elif run.kind == "col":
                out[...] = fresh.reshape(r, k, b).transpose(1, 0, 2)
            else:
                ki, kj = run.i1 - run.i0, run.j1 - run.j0
                out[...] = fresh.reshape(r, ki, kj, b).transpose(1, 2, 0, 3)
        return None
