"""Configuration for the fault-tolerant factorization drivers."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.placement import choose_updating_placement
from repro.core.policy import DEFAULT_VERIFY_INTERVAL
from repro.core.update import PLACEMENTS
from repro.hetero.spec import MachineSpec
from repro.util.exceptions import ValidationError
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class AbftConfig:
    """Knobs shared by the three scheme drivers.

    Parameters
    ----------
    verify_interval:
        K of Optimization 3 — deferrable inputs are verified every K
        iterations (Enhanced scheme only; Online/Offline ignore it).
    recalc_streams:
        CUDA streams for checksum (re)calculation kernels.  1 disables
        Optimization 1; ``None`` means "the GPU's designed concurrent-kernel
        count" (the paper's choice: "we just create N CUDA Streams").
    updating_placement:
        One of ``gpu_main`` (unoptimized: updates serialize in the main
        stream), ``gpu_stream``, ``cpu``, or ``auto`` (the Optimization-2
        decision model picks per machine).
    rtol / atol:
        Detection thresholds (see :class:`repro.core.correct.Verifier`).
    n_checksums:
        Weighted checksums per tile.  2 is the paper's scheme (corrects one
        error per tile column); larger values engage the generalized
        Vandermonde code of :mod:`repro.core.multierror`, correcting
        ``n_checksums // 2`` unknown-location errors per column at
        proportionally higher recalculation and storage cost.
    max_restarts:
        How many times an unrecoverable run may be re-executed before
        giving up.  One restart suffices for single-fault experiments.
    final_sweep:
        Verify the whole factor after the last iteration.  Offline-ABFT is
        *defined* by this sweep; for Enhanced it closes the window between
        each block's last update and the end of the run.
    batched_verify:
        Real-mode detection via the stacked batch engine
        (:mod:`repro.core.batchverify`); False restores the per-tile
        Python loop.  Bit-identical outcomes either way — the knob exists
        for A/B benchmarking (``python -m repro bench``).
    dag_workers:
        Worker threads for the ``dag`` scheme's tile-task runtime
        (:mod:`repro.runtime`).  1 executes the graph serially in program
        order — the bit-identity reference; larger values overlap tile
        kernels on host threads (BLAS releases the GIL).  The other
        schemes ignore it.
    lookahead:
        How many iterations the ``dag`` runtime may run ahead of the
        oldest incomplete one.  1 (default) lets panel ``j+1`` factor
        while iteration ``j``'s trailing update drains — the paper's
        Opt-3 overlap on real threads; 0 is bulk-synchronous.
    """

    verify_interval: int = DEFAULT_VERIFY_INTERVAL
    recalc_streams: int | None = None
    updating_placement: str = "auto"
    rtol: float = 1e-9
    atol: float = 1e-12
    n_checksums: int = 2
    max_restarts: int = 1
    final_sweep: bool = True
    batched_verify: bool = True
    dag_workers: int = 1
    lookahead: int = 1

    def __post_init__(self) -> None:
        check_positive("verify_interval", self.verify_interval)
        check_positive("dag_workers", self.dag_workers)
        require(self.lookahead >= 0, "lookahead must be >= 0")
        require(self.n_checksums >= 2, "need at least two checksums per tile")
        if self.recalc_streams is not None:
            check_positive("recalc_streams", self.recalc_streams)
        require(
            self.updating_placement in (*PLACEMENTS, "auto"),
            f"bad updating_placement {self.updating_placement!r}",
        )
        check_positive("rtol", self.rtol)
        require(self.max_restarts >= 0, "max_restarts must be >= 0")

    # Resolution against a concrete machine -----------------------------------

    def resolved_streams(self, spec: MachineSpec) -> int:
        """The stream count to actually create."""
        if self.recalc_streams is not None:
            return self.recalc_streams
        # The paper creates N streams where N is the GPU's designed
        # concurrency; 16 is the CUDA-era constant for both generations.
        return 16

    def resolved_placement(self, spec: MachineSpec, n: int, block_size: int) -> str:
        if self.updating_placement != "auto":
            return self.updating_placement
        return choose_updating_placement(spec, n, block_size, self.verify_interval)

    @staticmethod
    def recommended_rtol(condition: float) -> float:
        """Detection threshold for a matrix of the given condition number.

        The maintained checksums and the data follow different rounding
        paths; their drift grows roughly linearly with the condition
        number (measured: ≈20·ε·cond across 10²–10¹²).  The returned
        ``max(1e-9, 100·ε·cond)`` keeps a 5× guard band above the drift —
        at the price that faults smaller than it become undetectable, the
        classical ABFT rounding-threshold trade-off.
        """
        if not condition >= 1.0:
            raise ValidationError("condition number must be >= 1")
        return max(1e-9, 100.0 * float(np.finfo(np.float64).eps) * condition)

    def unoptimized(self) -> "AbftConfig":
        """All three optimizations off (the 'before' of Figures 8-13)."""
        return replace(
            self,
            verify_interval=DEFAULT_VERIFY_INTERVAL,
            recalc_streams=1,
            updating_placement="gpu_main",
        )
