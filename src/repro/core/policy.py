"""Verification-interval policy (Optimization 3).

Verifying every input every iteration over-protects systems with low fault
rates.  The policy verifies the *skippable* inputs — GEMM's trailing-panel
and LD operands, and TRSM's panel — only every K iterations, while SYRK and
POTF2 inputs stay verified every iteration: an uncorrected error entering
SYRK lands in the diagonal tile as a row+column cross (two errors per
column → uncorrectable) and can break positive definiteness inside POTF2,
the fail-stop scenario of Section III.  GEMM/TRSM inputs are safe to defer
because their errors propagate as single-error-per-column patterns that a
later verification still corrects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.model import PoissonFaultModel, recommended_interval
from repro.util.validation import check_positive

#: Default verification interval K (Optimization 3 disabled: every input of
#: every operation is verified each iteration, Table I's Enhanced column).
DEFAULT_VERIFY_INTERVAL = 1

#: Ceiling for K when derived from a fault-rate model
#: (:meth:`VerificationPolicy.for_fault_rate`).  Past this the deferred
#: window grows without meaningfully reducing the recalculation volume.
MAX_VERIFY_INTERVAL = 16

#: Operations whose *inputs* Optimization 3 may verify only every K
#: iterations: an error entering GEMM or TRSM propagates into their
#: strictly-lower-triangle output tiles as a single error per column, which
#: the two-checksum code still locates and corrects at the next due
#: verification (Section V, Opt 3).  The protocol analyzer
#: (:mod:`repro.analysis.protocol`) uses the same set to decide whether a
#: deferred verification is legal.
DEFERRABLE_INPUT_KINDS = frozenset({"gemm", "trsm"})

#: Operations whose inputs must be verified *every* iteration: an error
#: entering SYRK lands in the diagonal tile as a row+column cross (two
#: errors per column — beyond the code), and a corrupted POTF2 input can
#: break positive definiteness and fail-stop (Section III / Table I).
ALWAYS_VERIFIED_KINDS = frozenset({"syrk", "potf2"})


@dataclass(frozen=True)
class VerificationPolicy:
    """Verify skippable inputs every *interval* iterations (K of the paper)."""

    interval: int = DEFAULT_VERIFY_INTERVAL

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)

    def due(self, iteration: int) -> bool:
        """Whether the deferrable verifications run at *iteration*."""
        return iteration % self.interval == 0

    @classmethod
    def for_fault_rate(
        cls,
        faults_per_gb_s: float,
        footprint_gb: float,
        iteration_time_s: float,
        max_k: int = MAX_VERIFY_INTERVAL,
    ) -> "VerificationPolicy":
        """Choose K from the system's fault rate (the trade-off the paper
        describes qualitatively; the bound comes from
        :func:`repro.faults.model.recommended_interval`)."""
        model = PoissonFaultModel(faults_per_gb_s, footprint_gb)
        return cls(interval=recommended_interval(model, iteration_time_s, max_k=max_k))
