"""Verification-interval policy (Optimization 3).

Verifying every input every iteration over-protects systems with low fault
rates.  The policy verifies the *skippable* inputs — GEMM's trailing-panel
and LD operands, and TRSM's panel — only every K iterations, while SYRK and
POTF2 inputs stay verified every iteration: an uncorrected error entering
SYRK lands in the diagonal tile as a row+column cross (two errors per
column → uncorrectable) and can break positive definiteness inside POTF2,
the fail-stop scenario of Section III.  GEMM/TRSM inputs are safe to defer
because their errors propagate as single-error-per-column patterns that a
later verification still corrects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.model import PoissonFaultModel, recommended_interval
from repro.util.validation import check_positive


@dataclass(frozen=True)
class VerificationPolicy:
    """Verify skippable inputs every *interval* iterations (K of the paper)."""

    interval: int = 1

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)

    def due(self, iteration: int) -> bool:
        """Whether the deferrable verifications run at *iteration*."""
        return iteration % self.interval == 0

    @classmethod
    def for_fault_rate(
        cls,
        faults_per_gb_s: float,
        footprint_gb: float,
        iteration_time_s: float,
        max_k: int = 16,
    ) -> "VerificationPolicy":
        """Choose K from the system's fault rate (the trade-off the paper
        describes qualitatively; the bound comes from
        :func:`repro.faults.model.recommended_interval`)."""
        model = PoissonFaultModel(faults_per_gb_s, footprint_gb)
        return cls(interval=recommended_interval(model, iteration_time_s, max_k=max_k))
