"""Offline-ABFT Cholesky (Huang & Abraham, adapted to the hybrid driver).

Checksums are encoded once, maintained through every operation, and
verified **only after the whole factorization finishes**.  A non-propagating
error (none exist in Cholesky's dataflow for long) could be corrected then;
in practice any mid-run computing or storage error has propagated across
many tiles by the end, the final sweep finds uncorrectable corruption, and
the decomposition re-runs — the 2× times of Tables VII/VIII.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FtPotrfResult, SchemeRun, deps_of, run_with_recovery
from repro.core.config import AbftConfig
from repro.desim.task import Task
from repro.faults.injector import FaultInjector, Hook
from repro.hetero.machine import Machine
from repro.magma.ops import gemm_op, potf2_op, syrk_op, trsm_op


def _offline_loop(run: SchemeRun) -> None:
    ctx, matrix, upd = run.ctx, run.matrix, run.updater
    main = run.main
    run.encode()
    prev_trsm: Task | None = None
    for j in range(run.nb):
        upd.begin_iteration(j, deps=deps_of(prev_trsm))
        syrk_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_SYRK, j)
        upd.update_syrk(j, deps=deps_of(prev_trsm))
        ev_diag = ctx.record_event(main)
        d2h = ctx.transfer_d2h(
            run.tile_bytes,
            name=f"d2h_diag[{j}]",
            deps=[ev_diag.marker],
            iteration=j,
            tile_reads=[(j, j)],
        )
        gemm_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_GEMM, j)
        upd.update_gemm(j, deps=deps_of(prev_trsm))
        potf2 = potf2_op(ctx, matrix, j, deps=[d2h])
        run.fire(Hook.AFTER_POTF2, j)
        h2d = ctx.transfer_h2d(
            run.tile_bytes,
            name=f"h2d_diag[{j}]",
            deps=[potf2],
            iteration=j,
            tile_writes=[(j, j)],
        )
        upd.update_potf2(j, deps=[potf2 if upd.placement == "cpu" else h2d])
        run.chain_main(h2d)
        trsm = trsm_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_TRSM, j)
        upd.update_trsm(j)
        if trsm is not None:
            prev_trsm = trsm
        run.fire(Hook.STORAGE_WINDOW, j)
    # The defining step: one verification sweep over the finished factor.
    run.verifier.verify_batch(
        run.verifier.lower_keys(), "final", after=deps_of(upd.last_task, main.last)
    )


def offline_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    config: AbftConfig | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
) -> FtPotrfResult:
    """Factor with Offline-ABFT protection (verify-at-the-end)."""
    return run_with_recovery(
        "offline", _offline_loop, machine, a, n, block_size, config, injector, numerics
    )
