"""Row checksums: the variant the paper mentions and (wisely) rejects.

Section IV-A: "two row checksums or two column checksums works the best
for Cholesky ... We choose two column checksums ... (It is similar for two
row checksums)."  *Similar* hides a real asymmetry, which this module makes
measurable.

A row-checksum strip is ``R(A) = A · w`` (B×2, one weighted sum per row).
Updating it through the four operations:

=========  =================================================================
GEMM       ``R(C − A·Bᵀ) = R(C) − A·(Bᵀw)`` — needs ``Bᵀw``, a weighted
           column-sum of the *data* tile B, which row checksums do not
           carry.  One extra GEMV per operand tile per update.
SYRK       same, with B = A.
TRSM       ``R(B·L^{-T}) = B·(L^{-T}w)`` — the transformed weight vector
           ``u = L^{-T}w`` is one small solve, but applying it needs the
           *data* tile B again: a full O(B²) GEMV per tile, i.e. the
           update degenerates into a recomputation.
POTF2      ``R(L)`` likewise requires data access (L·w over the fresh L).
=========  =================================================================

Column checksums commute with all four (they act from the *left* while the
algorithm multiplies from the *right*), so their updates reuse previously
maintained strips at O(strip) cost.  Row checksums lose that property for
TRSM/POTF2 — their "update" touches every data element, doubling as a
recalculation.  :func:`update_flops_comparison` quantifies the gap; the
:class:`RowChecksumCodec` implements detection/correction (one error per
block **row**) so the variant is still usable where writes are row-sparse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blas import flops as fl
from repro.blas.dense import trsm_right_lt
from repro.core.multierror import vandermonde_weights
from repro.util.exceptions import UnrecoverableError
from repro.util.formatting import render_table
from repro.util.validation import check_block_size, require

_LOCATOR_SLACK = 0.05


def encode_row_strip(tile: np.ndarray, n_checksums: int = 2) -> np.ndarray:
    """The B×r row-checksum strip ``A · Wᵀ``."""
    return tile @ vandermonde_weights(tile.shape[1], n_checksums).T


class RowChecksumCodec:
    """Detect/locate/correct with two weighted *row* checksums.

    Mirrors the column codec with rows and columns exchanged: locates one
    error per block row (column index = δ₂/δ₁) and reconstructs from the
    stored checksum and the exact sum of the row's other elements.
    """

    def __init__(self, block_size: int, rtol: float = 1e-9, atol: float = 1e-12) -> None:
        self.block_size = block_size
        self.rtol = rtol
        self.atol = atol
        self.weights = vandermonde_weights(block_size, 2)

    def encode(self, tile: np.ndarray) -> np.ndarray:
        return tile @ self.weights.T

    def verify_and_correct(self, tile: np.ndarray, strip: np.ndarray) -> int:
        """Correct ≤1 error per block row, in place; returns corrections."""
        require(strip.shape == (tile.shape[0], 2), "strip must be B×2")
        fresh = self.encode(tile)
        tol = np.abs(tile) @ self.weights.T * self.rtol + self.atol
        delta = fresh - strip
        bad_rows = np.nonzero((np.abs(delta) > tol).any(axis=1))[0]
        fixed = 0
        for row in bad_rows:
            d1, d2 = delta[row, 0], delta[row, 1]
            if abs(d1) <= tol[row, 0]:
                strip[row, 1] = fresh[row, 1]  # checksum column 2 corrupted
                continue
            if abs(d2) <= tol[row, 1]:
                strip[row, 0] = fresh[row, 0]
                continue
            ratio = d2 / d1
            col = round(ratio)
            if abs(ratio - col) > _LOCATOR_SLACK or not 1 <= col <= self.block_size:
                raise UnrecoverableError(
                    f"row {row}: locator {ratio:.3f} invalid — more than one "
                    "error in this row"
                )
            others = np.delete(tile[row, :], col - 1)
            tile[row, col - 1] = strip[row, 0] - others.sum()
            fixed += 1
        if bad_rows.size:
            fresh2 = self.encode(tile)
            tol2 = np.abs(tile) @ self.weights.T * self.rtol + self.atol
            if (np.abs(fresh2 - strip) > tol2).any():
                raise UnrecoverableError("row-checksum correction failed")
        return fixed


# ---------------------------------------------------------------------------
# Update rules (numerics) — note which arguments are data tiles
# ---------------------------------------------------------------------------


def update_row_strip_gemm(
    strip_c: np.ndarray, a_data: np.ndarray, b_data: np.ndarray, weights: np.ndarray
) -> None:
    """``R(C − A·Bᵀ) = R(C) − A·(Bᵀ·Wᵀ)`` in place.

    ``Bᵀ·Wᵀ`` is an extra GEMV over the *data* of B — the cost column
    checksums avoid by carrying ``W·A`` for the left operand instead.
    """
    strip_c -= a_data @ (b_data.T @ weights.T)


def update_row_strip_trsm(
    strip_b: np.ndarray, b_data_after: np.ndarray, ell: np.ndarray, weights: np.ndarray
) -> None:
    """``R(B·L^{-T}) = B' · Wᵀ`` — a full recomputation from the solved data.

    The transformed weights ``u = L^{-T}·w`` exist (one triangular solve),
    but applying them still reads every element of the solved tile, so the
    cheapest correct "update" is re-encoding.  This is the asymmetry that
    disqualifies row checksums for Cholesky's TRSM-heavy right half.
    """
    del ell  # the solve is already reflected in b_data_after
    strip_b[:] = b_data_after @ weights.T


def transformed_weights(ell: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``u = L^{-T} wᵀ`` — the (cheap) half of the TRSM rule.

    One small back-substitution; with it, ``R(B·L^{-T}) = B·u`` — but note
    the remaining factor is the *data* tile B, which is the expensive part.
    """
    return np.linalg.solve(ell.T, weights.T)


# ---------------------------------------------------------------------------
# Cost comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VariantCost:
    """Checksum-maintenance cost for one full factorization.

    ``*_flops`` count arithmetic; ``*_data_bytes`` count *data-tile* bytes
    the maintenance must stream beyond the strips themselves.  The flop
    gap is modest (the GEMM-rule algebra transposes cleanly); the traffic
    gap is the disqualifier — row-checksum TRSM/POTF2 "updates" re-read
    whole tiles, i.e. they cost as much as recalculations, on the same
    bandwidth the recalculations already saturate.
    """

    column_flops: int
    row_flops: int
    column_data_bytes: int
    row_data_bytes: int

    @property
    def ratio(self) -> float:
        return self.row_flops / self.column_flops

    @property
    def traffic_ratio(self) -> float:
        return self.row_data_bytes / max(self.column_data_bytes, 1)


def update_flops_comparison(n: int, block_size: int) -> VariantCost:
    """Maintenance flops, column- vs row-checksum variant.

    Column: the Section VI accounting (strips-only updates).
    Row: GEMM/SYRK updates pay an extra data GEMV (2B² per operand tile)
    for the ``Bᵀw`` terms, and TRSM/POTF2 degenerate to re-encoding
    (2·r·B² per written tile).
    """
    nb = check_block_size(n, block_size)
    b = block_size
    tile_bytes = b * b * 8
    col = row = 0
    col_bytes = row_bytes = 0
    for j in range(nb):
        rows = nb - j - 1
        if j > 0:
            # Column variant: chk(C_i) −= chk(LD_i)·LC^T — the left factor
            # is a maintained *strip*; only the shared LC row is data, and
            # one aggregated kernel streams it once.
            col += fl.gemm_flops(2, b, j * b)  # SYRK strip
            col += rows * fl.gemm_flops(2, b, j * b)  # GEMM strips
            col_bytes += j * tile_bytes
            # Row variant: R(C_i) −= LD_i·(LC^T·w) — the left factor is the
            # *data* panel LD_i, read per output tile: O(n³/B) traffic where
            # columns pay O(n²).  (LC^T·w itself is one pass over LC.)
            row += fl.gemm_flops(b, 2, j * b) * (1 + rows)
            row += fl.gemv_flops(j * b, b) * 2  # LC^T·Wᵀ over the LC data
            row_bytes += (1 + rows) * j * tile_bytes + j * tile_bytes
        # POTF2 + TRSM: column strips update from the strips + L_jj only;
        # row strips must re-read every solved tile.
        col += fl.trsm_flops(2, b)
        col += rows * fl.trsm_flops(2, b) if rows else 0
        col_bytes += tile_bytes  # the strips' solve reads L_jj once
        row += 2 * fl.gemv_flops(b, b)  # re-encode L_jj
        row += rows * 2 * fl.gemv_flops(b, b)  # re-encode the panel tiles
        row_bytes += (1 + rows) * tile_bytes
    return VariantCost(
        column_flops=col,
        row_flops=row,
        column_data_bytes=col_bytes,
        row_data_bytes=row_bytes,
    )


def render_variant_comparison(
    points: tuple[tuple[int, int], ...] = ((5120, 256), (20480, 256), (30720, 512)),
) -> str:
    """Text table of the maintenance-cost gap at representative sizes."""
    rows = []
    for n, b in points:
        c = update_flops_comparison(n, b)
        rows.append(
            (
                n,
                b,
                f"{c.ratio:.2f}x",
                f"{c.column_data_bytes / 1e9:.2f} GB",
                f"{c.row_data_bytes / 1e9:.2f} GB",
                f"{c.traffic_ratio:.2f}x",
            )
        )
    return render_table(
        ["n", "B", "flops row/col", "col data traffic", "row data traffic",
         "traffic row/col"],
        rows,
        title="checksum-variant maintenance cost (why the paper picks columns)",
    )
