"""The weighted checksum vectors of Section IV-A.

Two column checksums per tile: ``v₁ = [1, 1, …, 1]`` detects an error and
gives its magnitude; ``v₂ = [1, 2, …, B]`` locates its row via the ratio
δ₂/δ₁.  ``m+1`` checksums could correct up to m errors per column; two is
the sweet spot for Cholesky (one error per block column), per [Wu & Chen,
FT-ScaLAPACK].
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.util.validation import check_positive


@lru_cache(maxsize=32)
def weight_matrix(block_size: int) -> np.ndarray:
    """The 2×B weight matrix ``[v₁; v₂]`` (cached, read-only)."""
    check_positive("block_size", block_size)
    w = np.empty((2, block_size), dtype=np.float64)
    w[0] = 1.0
    w[1] = np.arange(1, block_size + 1, dtype=np.float64)
    w.setflags(write=False)
    return w


def locator_weights(block_size: int) -> np.ndarray:
    """Just v₂ (row locator weights 1..B)."""
    return weight_matrix(block_size)[1]
