"""The paper's contribution: checksum-based fault tolerance for Cholesky.

Layout:

- :mod:`repro.core.weights` — the two weighted checksum vectors
  (v₁ = 1, v₂ = 1..B) of Section IV-A.
- :mod:`repro.core.checksum` — encoding a blocked matrix into its per-tile
  column-checksum matrix.
- :mod:`repro.core.correct` — checksum recalculation, error detection,
  single-error location (row = δ₂/δ₁) and correction, with the streamed
  concurrent-kernel execution of Optimization 1.
- :mod:`repro.core.update` — the checksum-updating rules for SYRK, GEMM,
  POTF2 (Algorithm 2) and TRSM, placeable in the GPU main stream, a
  dedicated GPU stream, or on the CPU (Optimization 2).
- :mod:`repro.core.policy` — the every-K verification interval
  (Optimization 3).
- :mod:`repro.core.placement` — the CPU-vs-GPU checksum-updating decision
  model of Section V-B.
- :mod:`repro.core.config` / :mod:`repro.core.base` — scheme configuration
  and the shared runtime (encode phase, recovery/restart loop, statistics).
- :mod:`repro.core.offline` / :mod:`repro.core.online` /
  :mod:`repro.core.enhanced` — the three scheme drivers.
"""

from repro.core.base import FtPotrfResult
from repro.core.checksum import encode_blocked_host, encode_strip
from repro.core.config import AbftConfig
from repro.core.correct import Verifier, VerifyStats
from repro.core.enhanced import enhanced_potrf
from repro.core.multierror import MultiErrorCodec
from repro.core.rowvariant import RowChecksumCodec
from repro.core.offline import offline_potrf
from repro.core.online import online_potrf
from repro.core.placement import choose_updating_placement, paper_decision_model
from repro.core.policy import VerificationPolicy
from repro.core.update import ChecksumUpdater
from repro.core.weights import weight_matrix

__all__ = [
    "FtPotrfResult",
    "encode_blocked_host",
    "encode_strip",
    "AbftConfig",
    "Verifier",
    "VerifyStats",
    "enhanced_potrf",
    "MultiErrorCodec",
    "RowChecksumCodec",
    "offline_potrf",
    "online_potrf",
    "choose_updating_placement",
    "paper_decision_model",
    "VerificationPolicy",
    "ChecksumUpdater",
    "weight_matrix",
]
