"""Online-ABFT Cholesky (post-update verification — the prior state of the
art this paper improves on).

After every updating operation, the checksums of the operation's **output**
tiles are recalculated and compared (the 4-step loop of Section III:
update → checksum update → recalculate → detect/correct).  Computing errors
are caught while still a single element and corrected in place.  The blind
spot: a storage error striking a tile *after* its post-update verification
is only noticed when some later operation's output (computed from the
corrupted tile) fails its own verification — by which point the corruption
pattern exceeds the two-checksum code and the run must restart.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FtPotrfResult, SchemeRun, deps_of, run_with_recovery
from repro.core.config import AbftConfig
from repro.desim.task import Task
from repro.faults.injector import FaultInjector, Hook
from repro.hetero.machine import Machine
from repro.magma.ops import gemm_op, potf2_op, syrk_op, trsm_op


def _online_loop(run: SchemeRun) -> None:
    ctx, matrix, upd, verifier = run.ctx, run.matrix, run.updater, run.verifier
    main = run.main
    nb = run.nb
    run.encode()
    prev_trsm: Task | None = None
    for j in range(run.start_iteration, nb):
        upd.begin_iteration(j, deps=deps_of(prev_trsm))
        panel = [(i, j) for i in range(j + 1, nb)]

        syrk = syrk_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_SYRK, j)
        syrk_upd = upd.update_syrk(j, deps=deps_of(prev_trsm))
        if j > 0:
            run.chain_main(
                verifier.verify_batch(
                    [(j, j)],
                    f"post_syrk[{j}]",
                    after=deps_of(syrk_upd, syrk),
                    iteration=j,
                )
            )

        ev_diag = ctx.record_event(main)
        d2h = ctx.transfer_d2h(
            run.tile_bytes,
            name=f"d2h_diag[{j}]",
            deps=[ev_diag.marker],
            iteration=j,
            tile_reads=[(j, j)],
        )

        gemm = gemm_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_GEMM, j)
        gemm_upd = upd.update_gemm(j, deps=deps_of(prev_trsm))
        if j > 0 and panel:
            run.chain_main(
                verifier.verify_batch(
                    panel,
                    f"post_gemm[{j}]",
                    after=deps_of(gemm_upd, gemm),
                    iteration=j,
                )
            )

        potf2 = potf2_op(ctx, matrix, j, deps=[d2h])
        run.fire(Hook.AFTER_POTF2, j)
        h2d = ctx.transfer_h2d(
            run.tile_bytes,
            name=f"h2d_diag[{j}]",
            deps=[potf2],
            iteration=j,
            tile_writes=[(j, j)],
        )
        potf2_upd = upd.update_potf2(
            j, deps=[potf2 if upd.placement == "cpu" else h2d]
        )
        run.chain_main(
            verifier.verify_batch(
                [(j, j)],
                f"post_potf2[{j}]",
                after=deps_of(potf2_upd, h2d),
                iteration=j,
            )
        )

        run.chain_main(h2d)
        trsm = trsm_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_TRSM, j)
        trsm_upd = upd.update_trsm(j)
        if panel:
            run.chain_main(
                verifier.verify_batch(
                    panel,
                    f"post_trsm[{j}]",
                    after=deps_of(trsm_upd, trsm),
                    iteration=j,
                )
            )
        if trsm is not None:
            prev_trsm = trsm

        # The unprotected window: a storage error landing here is not seen
        # until the corrupted tile feeds a later operation.
        run.fire(Hook.STORAGE_WINDOW, j)
        run.publish(j)


def online_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    config: AbftConfig | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
    start_iteration: int = 0,
    progress=None,
) -> FtPotrfResult:
    """Factor with Online-ABFT protection (post-update verification)."""
    return run_with_recovery(
        "online",
        _online_loop,
        machine,
        a,
        n,
        block_size,
        config,
        injector,
        numerics,
        start_iteration=start_iteration,
        progress=progress,
    )
