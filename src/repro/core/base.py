"""Shared runtime for the three ABFT scheme drivers.

:class:`SchemeRun` wires together one attempt: execution context, device
buffers, fault injector bindings, verifier, updater, streams.
:func:`run_with_recovery` wraps attempts in the restart loop — when a
scheme hits corruption it cannot correct (or a fail-stop POTF2), the run
is abandoned, its simulated time is banked, and a fresh attempt executes
with the injector disarmed, exactly the "re-do the decomposition, which
costs twice the time" behaviour of Tables VII/VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blas.flops import potrf_flops
from repro.core.checksum import issue_encoding
from repro.core.config import AbftConfig
from repro.core.correct import Verifier, VerifyStats
from repro.core.policy import VerificationPolicy
from repro.core.update import ChecksumUpdater
from repro.desim.task import Task
from repro.desim.trace import Timeline
from repro.faults.injector import FaultInjector, Hook, no_faults
from repro.hetero.machine import Machine
from repro.hetero.memory import DeviceChecksums, DeviceMatrix
from repro.util.exceptions import (
    RestartExhaustedError,
    SingularBlockError,
    UnrecoverableError,
)
from repro.util.validation import check_block_size, check_square, require


def deps_of(*tasks: Task | None) -> list[Task] | None:
    """Dependency list from optional producers (None entries dropped)."""
    out = [t for t in tasks if t is not None]
    return out or None


@dataclass
class FtPotrfResult:
    """Outcome of a fault-tolerant factorization (restarts included)."""

    scheme: str
    machine: str
    n: int
    block_size: int
    makespan: float  # total simulated seconds across all attempts
    restarts: int
    stats: VerifyStats  # of the successful attempt
    timeline: Timeline  # of the successful attempt
    matrix: DeviceMatrix
    placement: str
    config: AbftConfig
    attempt_makespans: list[float] = field(default_factory=list)
    failed_timelines: list[Timeline] = field(default_factory=list)

    @property
    def gflops(self) -> float:
        """Sustained rate counting only the useful factorization flops."""
        return potrf_flops(self.n) / self.makespan / 1e9

    @property
    def factor(self) -> np.ndarray:
        """The lower-triangular factor L (real mode only)."""
        require(self.matrix.real, "no numeric factor in shadow mode")
        return np.tril(self.matrix.blocked.data)

    #: Task kinds attributable to fault tolerance (vs. the factorization).
    FT_KINDS = (
        "encode",
        "recalc",
        "chk_update_syrk",
        "chk_update_gemm",
        "chk_update_potf2",
        "chk_update_trsm",
    )

    def overhead_breakdown(self) -> dict[str, float]:
        """Fault-tolerance busy-seconds by category, from the timeline.

        Returns aggregate (possibly overlapped) durations for encoding,
        recalculation and checksum updating, plus the factorization kinds
        for reference — the observable counterpart of Section VI's
        analytic decomposition.  Overlapped time counts fully, so the sum
        can exceed the makespan difference vs. the plain driver; compare
        the critical-path effect with :attr:`makespan` instead.
        """
        summary = self.timeline.kind_summary()
        out: dict[str, float] = {}
        for kind, (_, total) in summary.items():
            out[kind] = total
        out["ft_total"] = sum(out.get(k, 0.0) for k in self.FT_KINDS)
        out["updating_total"] = sum(
            v for k, v in out.items() if k.startswith("chk_update")
        )
        return out


class SchemeRun:
    """All per-attempt state a scheme driver needs."""

    def __init__(
        self,
        machine: Machine,
        n: int,
        block_size: int,
        config: AbftConfig,
        injector: FaultInjector,
        numerics: str,
        a: np.ndarray | None,
        start_iteration: int = 0,
        progress=None,
    ) -> None:
        self.machine = machine
        self.config = config
        self.injector = injector
        self.start_iteration = start_iteration
        self.progress = progress
        self.ctx = machine.context(numerics=numerics)
        self.matrix = self.ctx.alloc_matrix(
            n, block_size, data=a if numerics == "real" else None
        )
        self.chk = self.ctx.alloc_checksums(
            n, block_size, rows_per_tile=config.n_checksums
        )
        injector.bind("matrix", self.matrix)
        injector.bind("checksum", self.chk)
        self.main = self.ctx.stream("main")
        self.placement = config.resolved_placement(machine.spec, n, block_size)
        self.stats = VerifyStats()
        self.verifier = Verifier(
            self.ctx,
            self.matrix,
            self.chk,
            n_streams=config.resolved_streams(machine.spec),
            rtol=config.rtol,
            atol=config.atol,
            strips_on_host=self.placement == "cpu",
            stats=self.stats,
            batched=config.batched_verify,
        )
        self.updater = ChecksumUpdater(
            self.ctx, self.matrix, self.chk, self.placement, self.main
        )
        self.policy = VerificationPolicy(interval=config.verify_interval)
        self.tile_bytes = self.ctx.tile_bytes(block_size)

    # -- driver conveniences ----------------------------------------------------

    def encode(self) -> None:
        """Initial checksum encoding; the main stream starts after it.

        The checksum-updating stream (and host queue, for the CPU
        placement) is anchored after the encode barrier too — its first
        strip update must not race the encoding kernels.
        """
        done = issue_encoding(
            self.ctx,
            self.matrix,
            self.chk,
            self.verifier.streams,
            engine=self.verifier.engine,
        )
        self.main.last = done
        self.updater.anchor(done)
        self.injector.fire(Hook.BEFORE_FACTORIZATION, iteration=-1)

    def chain_main(self, task: Task | None) -> None:
        """Order subsequent main-stream work after *task*."""
        if task is None:
            return
        barrier = self.ctx.graph.new(f"main_after:{task.name}", kind="event")
        barrier.after(self.main.last, task)
        self.main.last = barrier

    def fire(self, hook: Hook, iteration: int) -> None:
        self.injector.fire(hook, iteration)

    def publish(self, iteration: int) -> None:
        """Report iteration-boundary state to the progress sink, if any.

        Called by the drivers after the storage window of iteration *j*
        closes: columns 0..j of the matrix are final L, the rest still
        hold the original A, and the strips are maintained through j —
        exactly the state a forward-recovery resume needs.  Real mode
        only (there are no bytes to snapshot in shadow mode).
        """
        if self.progress is None or not self.matrix.real:
            return
        self.progress(iteration, self.matrix.blocked.data, self.chk.array)

    @property
    def nb(self) -> int:
        return self.matrix.nb


def run_with_recovery(
    scheme: str,
    loop_body,
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    config: AbftConfig | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
    start_iteration: int = 0,
    progress=None,
) -> FtPotrfResult:
    """Execute *loop_body(run)* with the restart-on-unrecoverable protocol.

    *start_iteration* > 0 resumes a partially factored matrix: *a* must
    hold columns ``0..start_iteration-1`` already final (the state
    :meth:`SchemeRun.publish` reports), and the drivers skip straight to
    that iteration.  An in-scheme restart re-runs from the same resume
    point — the salvaged state, not the original matrix, is this call's
    "pristine" input.  *progress* (real mode) receives
    ``(iteration, matrix_data, chk_array)`` after each iteration.
    """
    cfg = config if config is not None else AbftConfig()
    inj = injector if injector is not None else no_faults()
    if numerics == "real":
        require(a is not None, "real mode requires the matrix a")
        n = check_square("a", a)
        pristine = a.copy()
    else:
        require(n is not None, "shadow mode requires n")
        pristine = None
    bs = block_size if block_size is not None else machine.default_block_size
    nb = check_block_size(n, bs)
    require(0 <= start_iteration <= nb, "start_iteration out of range")

    total = 0.0
    attempt_times: list[float] = []
    failed_timelines: list = []
    restarts = 0
    for attempt in range(cfg.max_restarts + 1):
        work = None
        if numerics == "real":
            # Factor a fresh copy each attempt; the caller's array receives
            # the final successful factor below.
            work = pristine.copy()
        run = SchemeRun(
            machine,
            n,
            bs,
            cfg,
            inj,
            numerics,
            work,
            start_iteration=start_iteration,
            progress=progress,
        )
        try:
            loop_body(run)
        except (UnrecoverableError, SingularBlockError):
            sim = run.ctx.simulate()
            total += sim.makespan
            attempt_times.append(sim.makespan)
            failed_timelines.append(sim.timeline)
            restarts += 1
            # The injected fault was a one-shot event; do not re-inject.
            inj.disarm()
            continue
        sim = run.ctx.simulate()
        total += sim.makespan
        attempt_times.append(sim.makespan)
        if numerics == "real":
            a[:] = work
        return FtPotrfResult(
            scheme=scheme,
            machine=machine.name,
            n=n,
            block_size=bs,
            makespan=total,
            restarts=restarts,
            stats=run.stats,
            timeline=sim.timeline,
            matrix=run.matrix,
            placement=run.placement,
            config=cfg,
            attempt_makespans=attempt_times,
            failed_timelines=failed_timelines,
        )
    raise RestartExhaustedError(
        f"{scheme}: still unrecoverable after {cfg.max_restarts} restart(s)"
    )
