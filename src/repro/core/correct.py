"""Checksum recalculation, error detection, location and correction.

This is the verification half of the ABFT machinery (Section IV-C):

1. recompute the two column checksums of each tile to be checked
   (BLAS-2 GEMV kernels — the expensive, critical-path operation that
   Optimization 1 accelerates with concurrent kernel execution);
2. compare against the maintained strips, column by column;
3. classify each mismatching column:

   ====================================  ===================================
   δ₁ ≠ 0, δ₂ ≠ 0, δ₂/δ₁ ≈ r ∈ [1, B]    one data error at row r: subtract
                                         δ₁ from ``tile[r-1, col]``
   δ₁ ≠ 0, δ₂ ≈ 0                        checksum row 1 itself corrupted
                                         (storage error in the checksum):
                                         refresh it from the data
   δ₁ ≈ 0, δ₂ ≠ 0                        checksum row 2 corrupted: refresh
   anything else                         uncorrectable → restart
   ====================================  ===================================

   A genuine single data error always moves *both* checksums (δ₂ = r·δ₁
   with r ≥ 1), so the classification is unambiguous up to rounding.

Shadow mode answers the same question from taint states instead of
numerics, using :meth:`repro.faults.taint.TaintState.correctable`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batchverify import BatchVerifyEngine
from repro.core.multierror import MultiErrorCodec, vandermonde_weights
from repro.desim.task import Task
from repro.hetero.context import ExecutionContext
from repro.hetero.costmodel import KernelCost
from repro.hetero.memory import DeviceChecksums, DeviceMatrix
from repro.hetero.stream import Stream
from repro.util.exceptions import UnrecoverableError
from repro.util.validation import check_positive, require

#: Tolerated deviation of the row locator δ₂/δ₁ from an integer.
_LOCATOR_SLACK = 0.05


@dataclass
class VerifyStats:
    """Counters accumulated over one factorization run."""

    batches: int = 0
    tiles_verified: int = 0
    data_corrections: int = 0
    checksum_corrections: int = 0
    columns_flagged: int = 0
    corrected_sites: list[tuple[tuple[int, int], int, int]] = field(
        default_factory=list
    )  # (tile, row, col)
    #: Host wall-clock seconds spent in real-mode checksum checking — the
    #: quantity ``python -m repro bench`` compares across verify modes.
    #: Excluded from equality so batched/per-tile stat parity can be
    #: asserted directly.
    check_wall_s: float = field(default=0.0, compare=False)


class Verifier:
    """Issues verification batches and performs detection/correction.

    Parameters
    ----------
    ctx, matrix, chk:
        The run's execution context and device buffers.
    n_streams:
        Number of CUDA streams for the recalculation kernels.  1 disables
        Optimization 1 (every kernel serialized); the paper uses the GPU's
        designed concurrent-kernel count.
    rtol / atol:
        Detection threshold: a column is flagged when
        ``|δ| > rtol · (W · |tile|) + atol`` — i.e. relative to the same
        weighted sum of magnitudes that produced the checksum, which keeps
        the threshold rounding-aware for any data scaling.
    strips_on_host:
        True when checksum updating runs on the CPU (Optimization 2's CPU
        placement): each batch then pays an extra host→device strip
        transfer, the "verification related transfer" of Section VI.
    batched:
        Route real-mode detection through the stacked
        :class:`~repro.core.batchverify.BatchVerifyEngine` (default);
        False forces the historical per-tile loop.  Results are
        bit-identical either way — only the wall time differs.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        matrix: DeviceMatrix,
        chk: DeviceChecksums,
        n_streams: int = 1,
        rtol: float = 1e-9,
        atol: float = 1e-12,
        strips_on_host: bool = False,
        stats: VerifyStats | None = None,
        batched: bool = True,
    ) -> None:
        check_positive("n_streams", n_streams)
        self.ctx = ctx
        self.matrix = matrix
        self.chk = chk
        self.rtol = rtol
        self.atol = atol
        self.strips_on_host = strips_on_host
        self.batched = batched
        self.stats = stats if stats is not None else VerifyStats()
        self.engine = BatchVerifyEngine(matrix, chk, rtol=rtol, atol=atol)
        self.streams = [ctx.stream(f"recalc{i}") for i in range(n_streams)]
        self.n_checksums = chk.rows_per_tile
        self._weights = vandermonde_weights(matrix.block_size, self.n_checksums)
        # For r > 2 checksums, detection/correction delegates to the
        # generalized Prony decoder; the r = 2 fast path below additionally
        # repairs corrupted checksum rows, which the paper's scheme needs.
        self._codec = (
            MultiErrorCodec(
                matrix.block_size, n_checksums=self.n_checksums, rtol=rtol, atol=atol
            )
            if self.n_checksums > 2
            else None
        )

    # ------------------------------------------------------------------ batch

    def verify_batch(
        self,
        keys: list[tuple[int, int]],
        label: str,
        after: list[Task] | None = None,
        iteration: int | None = None,
    ) -> Task | None:
        """Verify (and correct) the tiles in *keys* before they are used.

        Issues the recalculation kernels across the verifier's streams,
        returns a barrier task the caller must order the dependent
        operation after (it is the pre-access synchronization point of the
        Enhanced scheme).  *iteration* tags the barrier for the protocol
        analyzer: a verification guards reads of the same iteration.
        Raises :class:`UnrecoverableError` when any tile is corrupted
        beyond the two-checksum code's reach.
        """
        if not keys:
            return None
        deps = list(after or [])
        if self.strips_on_host:
            # The maintained strips live in host memory; stage them onto the
            # device for the comparison (Section VI 6(c), Enhanced variant).
            strip_bytes = 2 * self.matrix.block_size * 8 * len(keys)
            deps.append(
                self.ctx.transfer_h2d(
                    strip_bytes, name=f"strips_h2d[{label}]", deps=deps or None
                )
            )
        cost = self.ctx.cost.gemv_recalc(
            self.matrix.block_size, self.matrix.block_size, n_vectors=self.n_checksums
        )
        shares: dict[str, list[tuple[int, int]]] = {}
        for idx, key in enumerate(keys):
            s = self.streams[idx % len(self.streams)]
            shares.setdefault(s.name, []).append(key)
        tails: list[Task] = []
        for s in self.streams:
            share = shares.get(s.name, [])
            if not share:
                continue
            tails.append(
                self.ctx.launch_gpu(
                    f"recalc[{label}]@{s.name}",
                    kind="recalc",
                    cost=KernelCost(duration=cost.duration * len(share), util=cost.util),
                    stream=s,
                    deps=deps,
                    tiles=len(share),
                    tile_reads=share,
                    chk_reads=share,
                    **({} if iteration is None else {"iteration": iteration}),
                )
            )
        barrier = self.ctx.graph.barrier(
            f"verified[{label}]",
            tails,
            tile_verifies=keys,
            **({} if iteration is None else {"iteration": iteration}),
        )
        self.stats.batches += 1
        self.stats.tiles_verified += len(keys)
        if self.ctx.real:
            t0 = time.perf_counter()
            self.check_real(keys)
            self.stats.check_wall_s += time.perf_counter() - t0
        else:
            for key in keys:
                self._check_tile_shadow(key)
        return barrier

    # ------------------------------------------------------------------ real

    def check_real(self, keys: list[tuple[int, int]]) -> None:
        """Real-mode detection + correction for one batch of keys.

        Batched mode stacks the whole batch through the engine and sends
        only the flagged tiles (usually none) to the per-tile decoder;
        flagged keys come back in batch order, so corrections, statistics
        and the first-failure :class:`UnrecoverableError` are identical to
        the per-tile path's.
        """
        if self.batched and len(keys) > 1:
            # Singleton batches skip the engine: stacking one tile buys
            # nothing and the per-tile check is the same comparison.
            for key in self.engine.detect(keys):
                self._check_tile_real(key)
        else:
            for key in keys:
                self._check_tile_real(key)

    def _check_tile_real(self, key: tuple[int, int]) -> None:
        check_tile_strip(
            key,
            self.matrix.tile_view(key),
            self.chk.tile_view(key),
            self._weights,
            rtol=self.rtol,
            atol=self.atol,
            stats=self.stats,
            codec=self._codec,
        )

    # ------------------------------------------------------------------ shadow

    def _check_tile_shadow(self, key: tuple[int, int]) -> None:
        data_taint = self.matrix.taint_of(key)
        chk_taint = self.chk.taint_of(key)
        if data_taint.is_clean() and chk_taint.is_clean():
            return
        if data_taint.is_clean():
            # Data verifies clean against recomputation; refresh the strip.
            chk_taint.clear()
            self.stats.checksum_corrections += 1
            return
        if not chk_taint.is_clean():
            raise UnrecoverableError(
                f"tile {key}: both data and checksum corrupted", block=key
            )
        capacity = max(1, self.n_checksums // 2)
        if data_taint.correctable(capacity):
            self.stats.data_corrections += len(data_taint.points) or 1
            data_taint.clear()
            return
        raise UnrecoverableError(
            f"tile {key}: propagated corruption exceeds the "
            f"{self.n_checksums}-checksum code's per-column capacity "
            f"({capacity})",
            block=key,
        )

    # ------------------------------------------------------------------ misc

    def lower_keys(self) -> list[tuple[int, int]]:
        """All lower-triangle tile keys (the offline final sweep)."""
        nb = self.matrix.nb
        return [(i, j) for j in range(nb) for i in range(j, nb)]


def check_tile_strip(
    key: tuple[int, int],
    tile: np.ndarray,
    strip: np.ndarray,
    weights: np.ndarray,
    *,
    rtol: float,
    atol: float,
    stats: VerifyStats,
    codec: MultiErrorCodec | None = None,
) -> None:
    """Detect/correct one tile against its strip (pure host numerics).

    The shared core of :meth:`Verifier._check_tile_real` and the tile-DAG
    runtime's verify tasks (:mod:`repro.runtime.cholesky`): both paths
    run these exact operations, so detection thresholds, correction
    values, statistics and :class:`UnrecoverableError` identity are
    bit-for-bit common property, not parallel implementations.
    """
    if codec is not None:
        try:
            corrections = codec.verify_and_correct(tile, strip)
        except UnrecoverableError as exc:
            raise UnrecoverableError(str(exc), block=key) from exc
        for corr in corrections:
            stats.data_corrections += len(corr.rows)
            stats.columns_flagged += 1
            for row in corr.rows:
                stats.corrected_sites.append((key, row, corr.column))
        return
    fresh = weights @ tile
    tol = rtol * (weights @ np.abs(tile)) + atol
    delta = fresh - strip
    bad = np.abs(delta) > tol
    if not bad.any():
        return
    cols = np.nonzero(bad.any(axis=0))[0]
    stats.columns_flagged += len(cols)
    for col in cols:
        _fix_column(key, tile, strip, fresh, tol, int(col), stats)
    # Confirm: the tile must now satisfy both checksums.  The tolerance
    # is recomputed from the *corrected* tile: a flip that produced an
    # astronomically large value inflates the pre-correction tolerance,
    # and subtracting δ₁ back out loses the true value to cancellation —
    # the fresh tolerance catches that and escalates to a restart.
    fresh2 = weights @ tile
    tol2 = rtol * (weights @ np.abs(tile)) + atol
    if (np.abs(fresh2 - strip) > tol2).any():
        raise UnrecoverableError(
            f"tile {key}: corruption persists after correction", block=key
        )


def _fix_column(
    key: tuple[int, int],
    tile: np.ndarray,
    strip: np.ndarray,
    fresh: np.ndarray,
    tol: np.ndarray,
    col: int,
    stats: VerifyStats,
) -> None:
    b = tile.shape[0]
    d1 = fresh[0, col] - strip[0, col]
    d2 = fresh[1, col] - strip[1, col]
    bad1 = abs(d1) > tol[0, col]
    bad2 = abs(d2) > tol[1, col]
    if bad1 and bad2:
        ratio = d2 / d1
        row = round(ratio)
        if abs(ratio - row) > _LOCATOR_SLACK or not 1 <= row <= b:
            raise UnrecoverableError(
                f"tile {key} column {col}: locator {ratio:.3f} is not a "
                "valid row — more than one error in this column",
                block=key,
            )
        # Reconstruct rather than subtract δ₁: the stored checksum minus
        # the exact sum of the *other* (clean) column elements recovers
        # the true value with no cancellation even when the corruption
        # is astronomically larger than the data (e.g. a top-exponent
        # bit flip) — subtracting δ₁ would lose the value to rounding.
        others = np.delete(tile[:, col], row - 1)
        tile[row - 1, col] = strip[0, col] - others.sum()
        stats.data_corrections += 1
        stats.corrected_sites.append((key, row - 1, col))
    elif bad1:
        # δ₂ consistent but δ₁ off: checksum row 1 itself was hit.
        strip[0, col] = fresh[0, col]
        stats.checksum_corrections += 1
    else:
        strip[1, col] = fresh[1, col]
        stats.checksum_corrections += 1


def require_consistent(verifier: Verifier, keys: list[tuple[int, int]]) -> None:
    """Assert-style full verification with no correction budget (tests)."""
    require(verifier.ctx.real, "require_consistent needs real numerics")
    for key in keys:  # noqa: RPL006 - diagnostic helper, not the hot path
        tile = verifier.matrix.tile_view(key)
        strip = verifier.chk.tile_view(key)
        fresh = verifier._weights @ tile
        tol = verifier.rtol * (verifier._weights @ np.abs(tile)) + verifier.atol
        if (np.abs(fresh - strip) > tol).any():
            raise UnrecoverableError(f"tile {key} inconsistent", block=key)
