"""Checksum updating: keeping the strips consistent through every operation.

The update rules (Section IV-B) mirror each operation on the 2×B strips.
Writing chk(X) for the strip of tile X and W for the weight matrix:

=========  ==============================================================
SYRK       ``chk(A'_jj) = chk(A_jj) − chk(L_j,0:j) · L_j,0:j^T``
GEMM       ``chk(A'_ij) = chk(A_ij) − chk(L_i,0:j) · L_j,0:j^T``  (i > j)
POTF2      ``chk(L_jj) = chk(A'_jj) · L_jj^{-T}``   (Algorithm 2 ≡ a
           2-row triangular solve, since W·A' = (W·L)·L^T)
TRSM       ``chk(L_ij) = chk(A'_ij) · L_jj^{-T}``   (i > j)
=========  ==============================================================

Updating is off the critical path, so Optimization 2 lets it run in three
placements:

``gpu_main``
    chained into the factorization's main stream — the unoptimized
    baseline of Figures 10/11 ("before");
``gpu_stream``
    a dedicated CUDA stream, overlapping with the BLAS-3 kernels
    (chosen for Bulldozer64's Kepler GPU);
``cpu``
    the otherwise-idle host, at the price of shipping block row j of L
    down each iteration and the strips up at verification time
    (chosen for Tardis).
"""

from __future__ import annotations

import numpy as np

from repro.blas import flops as fl
from repro.blas.dense import trsm_right_lt
from repro.desim.task import Task
from repro.faults.taint import TaintState
from repro.hetero.context import ExecutionContext
from repro.hetero.memory import DeviceChecksums, DeviceMatrix
from repro.hetero.stream import Stream
from repro.util.validation import require

PLACEMENTS = ("gpu_main", "gpu_stream", "cpu")


class ChecksumUpdater:
    """Issues checksum-updating work in the configured placement."""

    def __init__(
        self,
        ctx: ExecutionContext,
        matrix: DeviceMatrix,
        chk: DeviceChecksums,
        placement: str,
        main_stream: Stream,
    ) -> None:
        require(placement in PLACEMENTS, f"bad placement {placement!r}")
        self.ctx = ctx
        self.matrix = matrix
        self.chk = chk
        self.placement = placement
        self.main_stream = main_stream
        self._stream = (
            main_stream if placement == "gpu_main" else ctx.stream("chkupd")
        )
        self.last_task: Task | None = None
        self._lrow: list[Task] = []  # this iteration's L-row staging (cpu)
        self._bulk_deps: list[Task] | None = None  # finalizers of row cols 0..j-2
        # Preallocated product workspace for the batched GEMM strip update
        # (largest panel: nb-1 strips of r×B each); real mode only.
        self._gemm_ws = (
            np.empty(((matrix.nb - 1) * chk.rows_per_tile, matrix.block_size))
            if ctx.real and matrix.nb > 1
            else None
        )

    # ------------------------------------------------------------------ issue

    def anchor(self, task: Task | None) -> None:
        """Order all subsequent updating work after *task* (encode barrier)."""
        if task is None:
            return
        if self._stream.last is None:
            self._stream.last = task
        if self.placement == "cpu" and self.ctx.host.last is None:
            self.ctx.host.last = task

    def _issue(
        self,
        name: str,
        kind: str,
        flop_count: int,
        fn,
        deps: list[Task] | None,
        **meta,
    ) -> Task:
        if self.placement == "cpu":
            # Host-side updating reads the *host* copies of L (staged by
            # lrow_d2h / the POTF2 output); advertising device-tile reads
            # here would fabricate hazards against the GPU kernels.
            meta.pop("tile_reads", None)
            task = self.ctx.launch_cpu(
                name,
                kind=kind,
                cost=self.ctx.cost.cpu_chk_update(flop_count),
                fn=fn,
                deps=deps,
                **meta,
            )
        else:
            task = self.ctx.launch_gpu(
                name,
                kind=kind,
                cost=self.ctx.cost.chk_update_gpu(flop_count, kind),
                stream=self._stream,
                fn=fn,
                deps=deps,
                **meta,
            )
        self.last_task = task
        return task

    def begin_iteration(self, j: int, deps: list[Task] | None = None) -> Task | None:
        """Per-iteration staging for the CPU placement.

        Ships block row j of L to the host (the ``n²/2`` "checksum updating
        related transfer" of Section VI); no-op for GPU placements or j=0.
        *deps* are the finalizers of the row's newest column j-1 (the
        previous iteration's TRSM).

        The row goes down in two pieces so the bulk stays off the critical
        path: columns 0..j-2 are final since iteration j-2 and ship as soon
        as that TRSM completes (hiding under iteration j-1's GEMM), while
        only the single tile (j, j-1) must wait for TRSM j-1.  Total volume
        is unchanged (``j`` tiles per iteration → n²/2 overall).
        """
        if self.placement != "cpu" or j == 0:
            return None
        b = self.matrix.block_size
        pieces: list[Task] = []
        if j > 1:
            pieces.append(
                self.ctx.transfer_d2h(
                    (j - 1) * b * b * 8,
                    name=f"lrow_d2h[{j}]",
                    deps=self._bulk_deps,
                    iteration=j,
                    tile_reads=[(j, k) for k in range(j - 1)],
                )
            )
        pieces.append(
            self.ctx.transfer_d2h(
                b * b * 8,
                name=f"lcol_d2h[{j}]",
                deps=deps,
                iteration=j,
                tile_reads=[(j, j - 1)],
            )
        )
        self._bulk_deps = list(deps) if deps else None
        # Tracked separately from last_task: the host strip updates that
        # consume this row depend on it, but verification batches ordered
        # after "all updating so far" need the last *strip write*, which
        # these transfers are not.
        self._lrow = pieces
        return pieces[-1]

    # ------------------------------------------------------------------ rules

    def update_syrk(self, j: int, deps: list[Task] | None = None) -> Task | None:
        """``chk(A'_jj) −= chk(L_j,0:j) · L_j,0:j^T``; no-op at j=0."""
        if j == 0:
            return None
        b = self.matrix.block_size
        if self.placement == "cpu" and self._lrow:
            deps = list(deps or []) + self._lrow

        def numerics() -> None:
            self.chk.strip(j, j)[:] -= self.chk.strip_row(
                j, 0, j
            ) @ self.matrix.blocked.block_row(j, 0, j).T

        task = self._issue(
            f"chkupd_syrk[{j}]",
            "chk_update_syrk",
            fl.gemm_flops(self.chk.rows_per_tile, b, j * b),
            numerics,
            deps,
            iteration=j,
            tile_reads=[(j, k) for k in range(j)],
            chk_reads=[(j, k) for k in range(j)] + [(j, j)],
            chk_writes=[(j, j)],
        )
        self._propagate_from_row(j, out_key=(j, j), strip_sources=[(j, k) for k in range(j)])
        return task

    def update_gemm(self, j: int, deps: list[Task] | None = None) -> Task | None:
        """Panel strips: ``chk(A'_ij) −= chk(L_i,0:j) · L_j,0:j^T`` ∀ i>j.

        Issued as one aggregated kernel (the strips are updated together,
        Section IV-A); numerics and taint are per tile.
        """
        nb, b = self.matrix.nb, self.matrix.block_size
        rows = nb - j - 1
        if j == 0 or rows == 0:
            return None
        if self.placement == "cpu" and self._lrow:
            deps = list(deps or []) + self._lrow

        def numerics() -> None:
            # All panel strips in one stacked GEMM: block row i's strip is
            # the r-row band of the fused operands, so the product equals
            # the per-strip ``strip_row(i, 0, j) @ lrow_t`` bit for bit.
            lrow_t = self.matrix.blocked.block_row(j, 0, j).T
            src = self.chk.strip_panel(j + 1, nb, 0, j)
            out = self._gemm_ws[: src.shape[0]]
            np.matmul(src, lrow_t, out=out)
            self.chk.strip_panel(j + 1, nb, j, j + 1)[:] -= out

        task = self._issue(
            f"chkupd_gemm[{j}]",
            "chk_update_gemm",
            rows * fl.gemm_flops(self.chk.rows_per_tile, b, j * b),
            numerics,
            deps,
            iteration=j,
            tile_reads=[(j, k) for k in range(j)],
            chk_reads=(
                [(i, k) for i in range(j + 1, nb) for k in range(j)]
                + [(i, j) for i in range(j + 1, nb)]
            ),
            chk_writes=[(i, j) for i in range(j + 1, nb)],
        )
        for i in range(j + 1, nb):
            self._propagate_from_row(
                j, out_key=(i, j), strip_sources=[(i, k) for k in range(j)]
            )
        return task

    def update_potf2(self, j: int, deps: list[Task] | None = None) -> Task:
        """Algorithm 2: ``chk(L_jj) = chk(A'_jj) · L_jj^{-T}`` (2-row solve)."""
        b = self.matrix.block_size

        def numerics() -> None:
            trsm_right_lt(self.chk.strip(j, j), self.matrix.block(j, j))

        task = self._issue(
            f"chkupd_potf2[{j}]",
            "chk_update_potf2",
            fl.trsm_flops(self.chk.rows_per_tile, b),
            numerics,
            deps,
            iteration=j,
            tile_reads=[(j, j)],
            chk_reads=[(j, j)],
            chk_writes=[(j, j)],
        )
        self._propagate_trsm_like((j, j), j)
        return task

    def update_trsm(self, j: int, deps: list[Task] | None = None) -> Task | None:
        """Panel strips through the solve: ``chk(L_ij) = chk(A'_ij)·L_jj^{-T}``."""
        nb, b = self.matrix.nb, self.matrix.block_size
        rows = nb - j - 1
        if rows == 0:
            return None

        def numerics() -> None:
            # One solve over the stacked panel: forward substitution is
            # row-independent, so the stacked solve computes the same
            # quantities as the per-strip loop (BLAS may pick a different
            # kernel for the taller operand — ulps below any tolerance —
            # and the call is unconditional, so both verification modes
            # see identical strips).
            trsm_right_lt(
                self.chk.strip_panel(j + 1, nb, j, j + 1), self.matrix.block(j, j)
            )

        task = self._issue(
            f"chkupd_trsm[{j}]",
            "chk_update_trsm",
            rows * fl.trsm_flops(self.chk.rows_per_tile, b),
            numerics,
            deps,
            iteration=j,
            tile_reads=[(j, j)],
            chk_reads=[(i, j) for i in range(j + 1, nb)],
            chk_writes=[(i, j) for i in range(j + 1, nb)],
        )
        for i in range(j + 1, nb):
            self._propagate_trsm_like((i, j), j)
        return task

    # ------------------------------------------------------------------ taint

    def _propagate_from_row(
        self,
        j: int,
        out_key: tuple[int, int],
        strip_sources: list[tuple[int, int]],
    ) -> None:
        """SYRK/GEMM strip update taint: corrupted L row j data or corrupted
        source strips make the output strip untrustworthy."""
        out = self.chk.taint_of(out_key)
        for k in range(j):
            if not self.matrix.taint_of((j, k)).is_clean():
                out.merge(TaintState(full=True))
                return
        for src in strip_sources:
            if not self.chk.taint_of(src).is_clean():
                out.merge(TaintState(full=True))
                return

    def _propagate_trsm_like(self, key: tuple[int, int], j: int) -> None:
        """POTF2/TRSM strip update taint: a corrupted L_jj poisons the solve."""
        if not self.matrix.taint_of((j, j)).is_clean():
            self.chk.taint_of(key).merge(TaintState(full=True))


def updating_flops_total(n: int, block_size: int, n_checksums: int = 2) -> int:
    """Total checksum-updating flops for a full factorization.

    Leading order ``(r/2)·2n³/(3B)`` with r checksum rows per tile — the
    paper's ``N_Upd = 2n³/(3B)`` at r = 2 (Section V-B).
    """
    nb = n // block_size
    b = block_size
    r = n_checksums
    total = 0
    for j in range(nb):
        if j > 0:
            total += fl.gemm_flops(r, b, j * b)  # SYRK strip
            rows = nb - j - 1
            if rows:
                total += rows * fl.gemm_flops(r, b, j * b)  # GEMM strips
        total += fl.trsm_flops(r, b)  # POTF2 strip
        if j + 1 < nb:
            total += (nb - j - 1) * fl.trsm_flops(r, b)  # TRSM strips
    return total
