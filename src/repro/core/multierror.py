"""Generalized weighted checksums: the paper's "m+1 checksums" extension.

Section IV-A notes that "generally, m+1 column/row checksums could locate
and correct up to m errors per column/row" before settling on m=1.  This
module implements the general code and makes its real information-theoretic
limits explicit:

- with m+1 checksums, up to **m errors at known rows** (erasures — e.g.
  a row flagged corrupt by a neighbouring tile's diagnosis) are corrected
  by solving a Vandermonde system;
- up to **⌊(m+1)/2⌋ errors at unknown rows** are located and corrected by
  Prony/Reed-Solomon-style syndrome decoding (2t syndromes are needed for
  t unknown locations — the paper's m=1 case, one error from two
  checksums, is exactly t=1, 2t=2);
- anything beyond is *detected* (the syndromes are not explainable) and
  escalates to a restart rather than a guess.

**Encoding.**  Weight vectors are Vandermonde rows ``v_t = [1ᵗ, 2ᵗ, …, Bᵗ]``
for t = 0..m; for m=1 this reduces exactly to the paper's v₁ = 1,
v₂ = 1..B.  For a column holding errors e_i at (1-based) rows r_i the
syndromes are the power sums ``S_t = Σ e_i · r_iᵗ``.

**Decoding.**  The unknown-location decoder finds the locator polynomial
whose coefficients solve a Hankel system in the syndromes, takes its roots
as candidate rows, solves for magnitudes, and — because this is floating
point, not GF(2^w) — *verifies* the candidate against every syndrome
before touching the data.

The update rules of the two-checksum scheme apply to any strip height
(all four operations act by right-multiplication/subtraction), so this
codec slots under the same drivers; ``benchmarks/test_ablation_checksums.py``
measures how overhead grows with the checksum count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.util.exceptions import UnrecoverableError
from repro.util.validation import check_positive, require


@lru_cache(maxsize=64)
def vandermonde_weights(block_size: int, n_checksums: int) -> np.ndarray:
    """The (m+1)×B weight matrix ``V[t, j] = (j+1)^t`` (cached, read-only)."""
    check_positive("block_size", block_size)
    require(n_checksums >= 2, "need at least two checksums to locate errors")
    require(
        n_checksums <= block_size,
        "more checksums than rows makes no sense",
    )
    cols = np.arange(1, block_size + 1, dtype=np.float64)
    v = cols[None, :] ** np.arange(n_checksums, dtype=np.float64)[:, None]
    v.setflags(write=False)
    return v


def encode_strip(tile: np.ndarray, n_checksums: int = 2) -> np.ndarray:
    """The (m+1)×B column-checksum strip of one tile (pure numerics).

    The canonical single-tile encode — ``repro.core.checksum`` re-exports
    it, and the batched engine (:mod:`repro.core.batchverify`) reproduces
    it bit-for-bit over stacked runs.
    """
    return vandermonde_weights(tile.shape[0], n_checksums) @ tile


#: Historical codec-facing name for :func:`encode_strip`.
encode = encode_strip


@dataclass(frozen=True)
class ColumnCorrection:
    """One decoded column: error rows (0-based) and magnitudes."""

    column: int
    rows: tuple[int, ...]
    magnitudes: tuple[float, ...]


class MultiErrorCodec:
    """Encode / verify / correct with ``n_checksums`` weighted checksums."""

    def __init__(
        self,
        block_size: int,
        n_checksums: int = 2,
        rtol: float = 1e-9,
        atol: float = 1e-12,
    ) -> None:
        self.block_size = block_size
        self.n_checksums = n_checksums
        self.rtol = rtol
        self.atol = atol
        self.weights = vandermonde_weights(block_size, n_checksums)

    @property
    def correctable_unknown(self) -> int:
        """Errors per column correctable without location hints: ⌊(m+1)/2⌋."""
        return self.n_checksums // 2

    @property
    def correctable_erasures(self) -> int:
        """Errors per column correctable at known rows: m (= checksums − 1).

        This is the reading under which the paper's "m+1 checksums correct
        m errors" is exact.
        """
        return self.n_checksums - 1

    def mixed_capacity(self, k_erasures: int) -> int:
        """Unknown errors correctable per column alongside *k* erasure rows.

        Each known erasure consumes one checksum; each unknown error needs
        two (locate + magnitude): k + 2t ≤ m+1.
        """
        require(k_erasures >= 0, "negative erasure count")
        return max(0, (self.n_checksums - k_erasures) // 2)

    # -- encoding ------------------------------------------------------------

    def encode(self, tile: np.ndarray) -> np.ndarray:
        require(tile.shape[0] == self.block_size, "tile height mismatch")
        return self.weights @ tile

    def _tolerance(self, tile: np.ndarray) -> np.ndarray:
        return self.rtol * (self.weights @ np.abs(tile)) + self.atol

    # -- unknown-location correction -------------------------------------------

    def verify_and_correct(
        self, tile: np.ndarray, strip: np.ndarray
    ) -> list[ColumnCorrection]:
        """Detect, locate and correct errors per column, in place.

        Corrects up to :attr:`correctable_unknown` errors per column;
        raises :class:`UnrecoverableError` when a column's syndromes cannot
        be explained (detection up to ``n_checksums − 1`` errors).
        """
        require(
            strip.shape == (self.n_checksums, tile.shape[1]),
            "strip shape mismatch",
        )
        fresh = self.encode(tile)
        tol = self._tolerance(tile)
        syndromes = fresh - strip
        corrections: list[ColumnCorrection] = []
        bad_cols = np.nonzero((np.abs(syndromes) > tol).any(axis=0))[0]
        for col in bad_cols:
            corr = self._decode_column(syndromes[:, col], tol[:, col], int(col))
            self._apply(tile, strip, corr)
            corrections.append(corr)
        if bad_cols.size:
            self._recheck(tile, strip, self._syndrome_slack(syndromes))
        return corrections

    def _apply(
        self, tile: np.ndarray, strip: np.ndarray, corr: ColumnCorrection
    ) -> None:
        """Reconstruct each located element from the S₀ checksum and the
        exact sum of the column's other elements (no cancellation even for
        astronomically large corruption — see ``repro.core.correct``)."""
        col = corr.column
        if len(corr.rows) == 1:
            (row,) = corr.rows
            others = np.delete(tile[:, col], row)
            tile[row, col] = strip[0, col] - others.sum()
        else:
            for row, mag in zip(corr.rows, corr.magnitudes):
                tile[row, col] -= mag

    def _recheck(
        self, tile: np.ndarray, strip: np.ndarray, slack: np.ndarray | None = None
    ) -> None:
        """Post-correction consistency gate.

        *slack* (per column) widens the tolerance by a few ulps of the
        syndrome magnitude the correction just removed: subtracting an
        O(S) error leaves O(ε·S) float residue, which must not read as
        "correction failed" when the data itself is O(1).  A genuine
        miscorrection leaves O(S) residue — far above the slack.
        """
        fresh2 = self.encode(tile)
        tol2 = self._tolerance(tile)
        if slack is not None:
            tol2 = tol2 + slack[None, :]
        if (np.abs(fresh2 - strip) > tol2).any():
            raise UnrecoverableError(
                "multi-error correction did not restore consistency"
            )

    @staticmethod
    def _syndrome_slack(syndromes: np.ndarray) -> np.ndarray:
        """Per-column recheck slack: ~64 ulps of the corrected magnitude."""
        return 64.0 * np.finfo(np.float64).eps * np.abs(syndromes).max(axis=0)

    # -- erasure correction ------------------------------------------------------

    def correct_erasures(
        self,
        tile: np.ndarray,
        strip: np.ndarray,
        rows: list[int],
        extra_slack: np.ndarray | None = None,
    ) -> int:
        """Correct errors at *known* rows (0-based), every column, in place.

        Solves the ``len(rows)``-unknown Vandermonde system per column from
        the syndromes; up to :attr:`correctable_erasures` rows.  Returns
        the number of elements changed beyond tolerance.  *extra_slack*
        (per column) widens the post-solve recheck — the mixed decode
        passes the original syndromes' ulp budget through, since its
        unknown-error subtraction happened before this call.
        """
        k = len(rows)
        require(0 < k <= self.correctable_erasures, "too many erasure rows")
        require(len(set(rows)) == k, "duplicate erasure rows")
        locs = np.asarray(rows, dtype=np.float64) + 1.0
        vand = locs[None, :] ** np.arange(self.n_checksums)[:, None]
        syndromes = self.encode(tile) - strip
        # least-squares: m+1 equations, k ≤ m unknowns per column
        mags, *_ = np.linalg.lstsq(vand, syndromes, rcond=None)
        tol = self._tolerance(tile)
        changed = int((np.abs(mags) > tol[0][None, :]).sum())
        for i, row in enumerate(rows):
            tile[row, :] -= mags[i]
        # One step of iterative refinement: the first solve's rounding
        # scales with the syndrome magnitude (an astronomically large
        # corruption leaves O(ε·S) residue spread over the reconstructed
        # rows), so re-solve against the now-tiny residual syndromes.
        resid = self.encode(tile) - strip
        polish, *_ = np.linalg.lstsq(vand, resid, rcond=None)
        for i, row in enumerate(rows):
            tile[row, :] -= polish[i]
        slack = self._syndrome_slack(syndromes)
        if extra_slack is not None:
            slack = np.maximum(slack, extra_slack)
        self._recheck(tile, strip, slack)
        return changed

    # -- errors-and-erasures decoding -----------------------------------------------

    def correct_mixed(
        self, tile: np.ndarray, strip: np.ndarray, rows: list[int]
    ) -> tuple[int, list[ColumnCorrection]]:
        """Correct *known*-row erasures plus unknown-row errors, in place.

        The classic errors-and-erasures split of the m+1 checksums: the
        erasure locator ``Γ(x) = Π(x − x_i)`` over the *k* known rows
        annihilates their (arbitrary) contributions from the syndromes,
        leaving ``m+1−k`` *modified* syndromes ``T_u = Σ_c g_c·S_{u+c}``
        that are pure power sums of the unknown errors with pseudo-
        magnitudes ``μ = e·Γ(y)``.  Prony decoding on T locates up to
        ``⌊(m+1−k)/2⌋`` unknown errors; the erased rows are then solved as
        usual.  Total capacity per column: ``k + 2t ≤ m+1``.

        Returns ``(erased elements changed, unknown-error corrections)``;
        raises :class:`UnrecoverableError` when a column's modified
        syndromes are not explainable within capacity.
        """
        k = len(rows)
        require(len(set(rows)) == k, "duplicate erasure rows")
        require(
            strip.shape == (self.n_checksums, tile.shape[1]),
            "strip shape mismatch",
        )
        if k > self.correctable_erasures:
            # A decode outcome, not caller misuse: the loss pattern simply
            # exceeds what m+1 checksums can reconstruct.
            raise UnrecoverableError(
                f"{k} erased rows exceed the {self.correctable_erasures}-erasure "
                f"capacity of {self.n_checksums} checksums"
            )
        if k == 0:
            return 0, self.verify_and_correct(tile, strip)
        # Γ(x) coefficients, ascending: Γ(x) = Σ_c g[c]·x^c.
        locator = np.array([1.0])
        for row in rows:
            locator = np.convolve(locator, [-(row + 1.0), 1.0])
        n_mod = self.n_checksums - k
        t_max = n_mod // 2
        syndromes = self.encode(tile) - strip
        tol = self._tolerance(tile)
        t_mod = np.zeros((n_mod, tile.shape[1]))
        tol_mod = np.zeros((n_mod, tile.shape[1]))
        for u in range(n_mod):
            for c, g_c in enumerate(locator):
                t_mod[u] += g_c * syndromes[u + c]
                tol_mod[u] += abs(g_c) * tol[u + c]
        corrections: list[ColumnCorrection] = []
        bad_cols = np.nonzero((np.abs(t_mod) > tol_mod).any(axis=0))[0]
        for col in bad_cols:
            corr = self._decode_mixed_column(
                t_mod[:, col], tol_mod[:, col], locator, rows, int(col), t_max
            )
            for row, mag in zip(corr.rows, corr.magnitudes):
                tile[row, col] -= mag
            corrections.append(corr)
        changed = self.correct_erasures(
            tile, strip, list(rows), extra_slack=self._syndrome_slack(syndromes)
        )
        # Per-column polish: the Prony magnitudes carry O(ε·S) rounding
        # that the whole-row erasure solve cannot absorb — the located
        # rows sit outside its span.  One combined solve over
        # erased ∪ located rows (k + t ≤ m unknowns, m+1 equations)
        # against the residual syndromes removes it.
        if corrections:
            powers = np.arange(self.n_checksums, dtype=np.float64)[:, None]
            resid = self.encode(tile) - strip
            for corr in corrections:
                combined = sorted(set(rows) | set(corr.rows))
                locs = np.asarray(combined, dtype=np.float64) + 1.0
                vand = locs[None, :] ** powers
                delta, *_ = np.linalg.lstsq(vand, resid[:, corr.column], rcond=None)
                for i, row in enumerate(combined):
                    tile[row, corr.column] -= delta[i]
        return changed, corrections

    def _decode_mixed_column(
        self,
        t_mod: np.ndarray,
        tol: np.ndarray,
        locator: np.ndarray,
        erased: list[int],
        col: int,
        t_max: int,
    ) -> ColumnCorrection:
        """Prony decoding on the modified syndromes; smallest count wins."""
        erased_set = set(erased)
        powers = np.arange(t_mod.shape[0], dtype=np.float64)
        for k in range(1, t_max + 1):
            got = self._try_k_errors(t_mod, k)
            if got is None:
                continue
            found_rows, pseudo = got
            if any(int(r) in erased_set for r in found_rows):
                continue  # an "unknown" error at an erased row is aliasing
            explained = np.zeros_like(t_mod)
            for r, e in zip(found_rows, pseudo):
                explained += e * (r + 1.0) ** powers
            slack = np.maximum(tol, 1e-8 * np.abs(t_mod) + self.atol)
            if not (np.abs(t_mod - explained) <= slack).all():
                continue
            gamma = np.polyval(locator[::-1], found_rows + 1.0)
            mags = pseudo / gamma
            return ColumnCorrection(
                column=col,
                rows=tuple(int(r) for r in found_rows),
                magnitudes=tuple(float(e) for e in mags),
            )
        raise UnrecoverableError(
            f"column {col}: modified syndromes not explainable by "
            f"<= {t_max} unknown errors beyond {len(erased)} erasures"
        )

    # -- syndrome decoding ----------------------------------------------------------

    def _decode_column(
        self, s: np.ndarray, tol: np.ndarray, col: int
    ) -> ColumnCorrection:
        """Prony decoding; smallest error count wins."""
        for k in range(1, self.correctable_unknown + 1):
            got = self._try_k_errors(s, k)
            if got is None:
                continue
            rows, mags = got
            explained = np.zeros_like(s)
            powers = np.arange(self.n_checksums, dtype=np.float64)
            for r, e in zip(rows, mags):
                explained += e * (r + 1.0) ** powers
            slack = np.maximum(tol, 1e-8 * np.abs(s) + self.atol)
            if (np.abs(s - explained) <= slack).all():
                return ColumnCorrection(
                    column=col,
                    rows=tuple(int(r) for r in rows),
                    magnitudes=tuple(float(e) for e in mags),
                )
        raise UnrecoverableError(
            f"column {col}: syndromes not explainable by "
            f"<= {self.correctable_unknown} errors"
        )

    def _try_k_errors(
        self, s: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Candidate k-error explanation from 2k syndromes, or None."""
        if 2 * k > s.shape[0]:
            return None
        hankel = np.empty((k, k))
        rhs = np.empty(k)
        for i in range(k):
            hankel[i] = s[i : i + k]
            rhs[i] = -s[i + k]
        try:
            coeffs = np.linalg.solve(hankel, rhs)
        except np.linalg.LinAlgError:
            return None
        poly = np.concatenate(([1.0], coeffs[::-1]))
        roots = np.roots(poly)
        real_scale = max(1.0, float(np.abs(roots.real).max(initial=1.0)))
        if np.abs(roots.imag).max(initial=0.0) > 1e-6 * real_scale:
            return None
        locs = np.round(roots.real).astype(int)
        if len(set(locs.tolist())) != k:
            return None
        if not ((1 <= locs) & (locs <= self.block_size)).all():
            return None
        if np.abs(roots.real - locs).max() > 0.05:
            return None
        vand = locs[None, :].astype(np.float64) ** np.arange(k)[:, None]
        try:
            mags = np.linalg.solve(vand, s[:k])
        except np.linalg.LinAlgError:
            return None
        return locs - 1, mags


def recalc_flops(block_size: int, n_checksums: int) -> int:
    """Flops to recompute an (m+1)-row strip of one tile: 2(m+1)B²."""
    return 2 * n_checksums * block_size * block_size
