"""Checksum encoding: building the initial checksum matrix.

Each lower-triangle tile (i, j) of the input is encoded into a 2×B strip
``W · A_ij`` stored in the device checksum matrix (Section IV-A).  Encoding
is the one-time O(n²) cost analyzed as ``O_encode = 2n²`` flops in Section
VI; it runs as a batch of GEMV kernels, distributed over the recalculation
streams so Optimization 1 helps here too.
"""

from __future__ import annotations

import numpy as np

from repro.blas.blocked import BlockedMatrix
from repro.core.batchverify import BatchVerifyEngine
from repro.core.multierror import encode_strip as encode_strip  # re-export
from repro.core.multierror import vandermonde_weights
from repro.desim.task import Task
from repro.hetero.context import ExecutionContext
from repro.hetero.memory import DeviceChecksums, DeviceMatrix
from repro.hetero.stream import Stream


def encode_blocked_host(
    blocked: BlockedMatrix, lower_only: bool = True, n_checksums: int = 2
) -> np.ndarray:
    """Encode a host matrix into a fresh (r·nb)×n checksum array.

    Reference implementation used by tests and by ground-truth comparisons;
    the simulated encode below produces the same values tile by tile.
    """
    nb, b, r = blocked.nb, blocked.block_size, n_checksums
    w = vandermonde_weights(b, r)
    out = np.zeros((r * nb, blocked.n), dtype=np.float64)
    for i in range(nb):  # noqa: RPL006 - host reference implementation
        j_hi = (i + 1) if lower_only else nb
        for j in range(j_hi):  # noqa: RPL006 - host reference implementation
            out[r * i : r * (i + 1), j * b : (j + 1) * b] = w @ blocked.block(i, j)
    return out


def issue_encoding(
    ctx: ExecutionContext,
    matrix: DeviceMatrix,
    chk: DeviceChecksums,
    streams: list[Stream],
    after: list[Task] | None = None,
    engine: BatchVerifyEngine | None = None,
) -> Task:
    """Encode every lower-triangle tile on the device.

    One fused-GEMV kernel per tile, round-robined across *streams*
    (Optimization 1 applies).  Returns a barrier task that completes when
    the whole checksum matrix is ready; the factorization's first kernel
    should depend on it.

    Real-mode numerics go through *engine* (one stacked matmul per block
    row — bit-identical to the per-tile encode); a fresh engine is built
    when the caller has none to share.
    """
    b = matrix.block_size
    keys = [(i, j) for i in range(matrix.nb) for j in range(i + 1)]
    cost = ctx.cost.gemv_recalc(b, b, n_vectors=chk.rows_per_tile)
    # Coalesce each stream's share into one task: GPS-equivalent to a chain
    # of per-tile kernels on that stream, at a fraction of the event count.
    per_stream: dict[str, list[tuple[int, int]]] = {}
    for idx, key in enumerate(keys):
        s = streams[idx % len(streams)]
        per_stream.setdefault(s.name, []).append(key)
    tails: list[Task] = []
    for s in streams:
        share = per_stream.get(s.name, [])
        if not share:
            continue
        task = ctx.launch_gpu(
            f"encode@{s.name}",
            kind="encode",
            cost=type(cost)(duration=cost.duration * len(share), util=cost.util),
            stream=s,
            deps=list(after or []),
            tiles=len(share),
            iteration=-1,
            tile_reads=share,
            chk_writes=share,
        )
        tails.append(task)
    if ctx.real:
        if engine is None:
            engine = BatchVerifyEngine(matrix, chk)
        engine.encode(keys)
    # The barrier doubles as a verification event: at encode time every tile
    # is by definition consistent with its freshly built strip.
    return ctx.graph.barrier(
        "encode_done", tails, iteration=-1, tile_verifies=keys
    )
