"""Enhanced Online-ABFT Cholesky — the paper's contribution.

Tiles are verified immediately **before** each operation reads them
(the 4-step loop of Section III: recalculate inputs → detect/correct →
update → checksum update), so both computing errors from the previous
operation *and* storage errors accumulated while the tile sat in memory
are corrected before they can propagate.

Per iteration j (Table I's verification sets):

- **SYRK** inputs: the diagonal tile (j,j) and the whole finished block
  row L[j, 0:j] — verified *every* iteration, because an error entering
  SYRK lands in the diagonal as a row+column cross (uncorrectable) and can
  fail-stop inside POTF2;
- **GEMM** inputs: the trailing panel A[j+1:, j] and the LD blocks
  L[j+1:, 0:j] — the O(n²)-tile set that makes Enhanced more expensive
  than Online, and exactly the set Optimization 3 verifies only every K
  iterations (errors there stay one-per-column correctable);
- **POTF2** input: the diagonal tile again (catches SYRK computing errors);
- **TRSM** inputs: L[j,j] always, the panel every K iterations.

A final sweep verifies the finished factor, closing the window after each
tile's last update (Offline's sweep, reused; costs O(n²)).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FtPotrfResult, SchemeRun, deps_of, run_with_recovery
from repro.core.config import AbftConfig
from repro.desim.task import Task
from repro.faults.injector import FaultInjector, Hook
from repro.hetero.machine import Machine
from repro.magma.ops import gemm_op, potf2_op, syrk_op, trsm_op


def _enhanced_loop(run: SchemeRun) -> None:
    ctx, matrix, upd, verifier = run.ctx, run.matrix, run.updater, run.verifier
    main = run.main
    nb = run.nb
    run.encode()
    prev_trsm: Task | None = None  # finalized block row j-1 (last tile writer)
    for j in range(run.start_iteration, nb):
        due = run.policy.due(j)
        upd.begin_iteration(j, deps=deps_of(prev_trsm))
        panel = [(i, j) for i in range(j + 1, nb)]

        # -- SYRK: verify its inputs (never deferred), then update ---------
        syrk_keys = [(j, j)] + [(j, k) for k in range(j)]
        run.chain_main(
            verifier.verify_batch(
                syrk_keys,
                f"pre_syrk[{j}]",
                after=deps_of(upd.last_task, prev_trsm),
                iteration=j,
            )
        )
        syrk = syrk_op(ctx, matrix, j, main)
        run.fire(Hook.AFTER_SYRK, j)
        upd.update_syrk(j, deps=deps_of(prev_trsm))

        # -- POTF2's input: verify the updated diagonal tile right after
        # SYRK (never deferred), *before* the GEMM is issued — the verified
        # tile then ships to the host and POTF2 overlaps the GEMM exactly
        # as in the unprotected driver.
        run.chain_main(
            verifier.verify_batch(
                [(j, j)],
                f"pre_potf2[{j}]",
                after=deps_of(upd.last_task, syrk),
                iteration=j,
            )
        )
        ev_diag = ctx.record_event(main)
        d2h = ctx.transfer_d2h(
            run.tile_bytes,
            name=f"d2h_diag[{j}]",
            deps=[ev_diag.marker],
            iteration=j,
            tile_reads=[(j, j)],
        )

        # -- GEMM: verify LD and the trailing panel every K iterations -----
        gemm = None
        if j > 0 and panel:
            if due:
                gemm_keys = [
                    (i, k) for i in range(j + 1, nb) for k in range(j)
                ] + panel
                run.chain_main(
                    verifier.verify_batch(
                        gemm_keys,
                        f"pre_gemm[{j}]",
                        after=deps_of(upd.last_task, prev_trsm),
                        iteration=j,
                    )
                )
            gemm = gemm_op(ctx, matrix, j, main)
            run.fire(Hook.AFTER_GEMM, j)
            upd.update_gemm(j, deps=deps_of(prev_trsm))

        potf2 = potf2_op(ctx, matrix, j, deps=[d2h])
        run.fire(Hook.AFTER_POTF2, j)
        h2d = ctx.transfer_h2d(
            run.tile_bytes,
            name=f"h2d_diag[{j}]",
            deps=[potf2],
            iteration=j,
            tile_writes=[(j, j)],
        )
        potf2_upd = upd.update_potf2(
            j, deps=[potf2 if upd.placement == "cpu" else h2d]
        )

        # -- TRSM: verify L[j,j] always, the panel every K iterations -------
        if panel:
            trsm_keys = [(j, j)] + (panel if due else [])
            run.chain_main(
                verifier.verify_batch(
                    trsm_keys,
                    f"pre_trsm[{j}]",
                    # GEMM wrote the panel, so its dep is only needed when
                    # the panel is in this batch (a due iteration).
                    after=deps_of(potf2_upd, h2d, gemm if due else None),
                    iteration=j,
                )
            )
            run.chain_main(h2d)
            trsm = trsm_op(ctx, matrix, j, main)
            run.fire(Hook.AFTER_TRSM, j)
            upd.update_trsm(j)
            prev_trsm = trsm
        else:
            run.chain_main(h2d)

        run.fire(Hook.STORAGE_WINDOW, j)
        run.publish(j)

    if run.config.final_sweep:
        run.verifier.verify_batch(
            run.verifier.lower_keys(),
            "final",
            after=deps_of(upd.last_task, main.last),
        )


def enhanced_potrf(
    machine: Machine,
    a: np.ndarray | None = None,
    n: int | None = None,
    block_size: int | None = None,
    config: AbftConfig | None = None,
    injector: FaultInjector | None = None,
    numerics: str = "real",
    start_iteration: int = 0,
    progress=None,
) -> FtPotrfResult:
    """Factor with Enhanced Online-ABFT (pre-access verification)."""
    return run_with_recovery(
        "enhanced",
        _enhanced_loop,
        machine,
        a,
        n,
        block_size,
        config,
        injector,
        numerics,
        start_iteration=start_iteration,
        progress=progress,
    )
