"""Fault-handling policy: execution, retry backoff, and checkpoint fallback.

The service's per-job resilience ladder, mirroring how the paper layers
recovery on top of detection:

1. the scheme driver itself corrects what the two-checksum code can and
   restarts (``max_restarts``) on unrecoverable corruption — jobs that land
   here still *complete normally*, with ``corrected_errors``/``restarts``
   counted;
2. if the driver gives up (:class:`~repro.util.exceptions.
   RestartExhaustedError`) or the attempt times out, the service retries
   the job with exponential backoff up to ``max_retries``;
3. the last rung swaps the scheme for the composed-resilience baseline,
   :func:`repro.baselines.checkpoint.checkpoint_potrf`, whose rollback
   recovery is bounded by the checkpoint interval;
4. only then is the job failed.

Faults stay one-shot events throughout: a job's injector is disarmed
before any retry or fallback, so recovery runs replay fault-free exactly
like the restart protocol of Tables VII/VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.checkpoint import checkpoint_potrf
from repro.blas.spd import random_spd
from repro.core import AbftConfig, enhanced_potrf, offline_potrf, online_potrf
from repro.core.correct import VerifyStats
from repro.desim.trace import Timeline
from repro.hetero.machine import Machine
from repro.magma.host import factorization_residual
from repro.runtime.scheme import dag_potrf
from repro.service.job import Job
from repro.util.rng import derive_rng
from repro.util.validation import check_positive, require

_SCHEMES = {
    "offline": offline_potrf,
    "online": online_potrf,
    "enhanced": enhanced_potrf,
    "dag": dag_potrf,
}

#: Schemes whose serial drivers support iteration-boundary snapshot /
#: resume (``start_iteration``/``progress`` on their ``*_potrf``).  The
#: erasure-recovery layer only attempts forward recovery for these;
#: ``offline`` and ``dag`` escalate to the ordinary restart rungs.
RESUMABLE_SCHEMES = frozenset({"online", "enhanced"})

#: spawn-key namespace for the per-job matrix generator (fault plans use 0)
MATRIX_RNG_KEY = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule plus the fallback switch."""

    max_retries: int = 2
    base_backoff_s: float = 0.02
    backoff_factor: float = 2.0
    max_backoff_s: float = 0.5
    fallback_to_checkpoint: bool = True
    checkpoint_interval: int = 2

    def __post_init__(self) -> None:
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.base_backoff_s >= 0, "base_backoff_s must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        check_positive("checkpoint_interval", self.checkpoint_interval)

    def backoff_s(self, retry_index: int) -> float | None:
        """Delay before retry number *retry_index* (1-based); ``None`` = stop."""
        check_positive("retry_index", retry_index)
        if retry_index > self.max_retries:
            return None
        delay = self.base_backoff_s * self.backoff_factor ** (retry_index - 1)
        return min(delay, self.max_backoff_s)


@dataclass
class AttemptOutcome:
    """What one (successful) execution attempt produced.

    Every field the service's determinism contract covers is here:
    ``factor``, ``corrected_sites`` and ``stats`` must be bit-identical
    whichever execution backend (:mod:`repro.exec`) ran the attempt.  The
    process backend strips ``factor`` before pickling the outcome back —
    the bytes travel through the shared-memory segment instead — and the
    parent reattaches it, so callers never see the difference.
    """

    sim_makespan: float
    corrected_errors: int
    restarts: int
    residual: float | None
    timeline: Timeline
    fallback_used: bool = False
    extras: dict = field(default_factory=dict)
    corrected_sites: list = field(default_factory=list)
    stats: VerifyStats | None = None
    factor: np.ndarray | None = field(default=None, repr=False)
    #: the dag runtime's executor summary (plain data; pickles across the
    #: process backend), ``None`` for the simulated schemes
    runtime: dict | None = None


def job_matrix(job: Job) -> np.ndarray:
    """The deterministic SPD input of *job* (same array on every attempt)."""
    return random_spd(job.n, rng=derive_rng(job.seed, job.job_id, MATRIX_RNG_KEY))


def _pristine_copy(a: np.ndarray, scratch: np.ndarray | None) -> np.ndarray:
    """Copy of *a* for the residual check, reusing *scratch* when it fits.

    Process-pool workers pass their warmed per-geometry workspace here so
    steady-state traffic on a repeated matrix order allocates nothing.
    """
    if scratch is not None and scratch.shape == a.shape and scratch.dtype == a.dtype:
        np.copyto(scratch, a)
        return scratch
    return a.copy()


def execute_attempt(
    job: Job,
    machine: Machine,
    a: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
    progress=None,
) -> AttemptOutcome:
    """Run *job* once under its ABFT scheme on *machine* (blocking).

    *a* optionally supplies the pre-materialized input matrix (the process
    backend passes a shared-memory view already filled with
    :func:`job_matrix` bits); when omitted, the matrix is generated here.
    Either way the input is the same pure function of ``(seed, job_id)``,
    so results are backend-independent.  On return, *a* (when given) holds
    the factored bytes — that in-place write is the output half of the
    zero-copy transport.

    *progress* (real mode, resumable schemes only) is handed to the
    driver as its iteration-boundary snapshot sink; non-resumable
    schemes ignore it, so passing one is always safe.

    Raises the scheme's own exceptions (``RestartExhaustedError`` etc.) on
    unrecoverable outcomes; the async layer turns those into retries.
    """
    potrf = _SCHEMES[job.scheme]
    config = AbftConfig(
        verify_interval=job.verify_interval, dag_workers=job.intra_workers
    )
    injector = job.injector
    extra_kwargs = {}
    if progress is not None and job.scheme in RESUMABLE_SCHEMES and job.numerics == "real":
        extra_kwargs["progress"] = progress
    if job.numerics == "real":
        if a is None:
            a = job_matrix(job)
        pristine = _pristine_copy(a, scratch)
        res = potrf(
            machine,
            a=a,
            block_size=job.block_size,
            config=config,
            injector=injector,
            **extra_kwargs,
        )
        residual = factorization_residual(pristine, res.factor)
        factor = res.factor
    else:
        res = potrf(
            machine,
            n=job.n,
            block_size=job.block_size,
            config=config,
            injector=injector,
            numerics="shadow",
        )
        residual = None
        factor = None
    return AttemptOutcome(
        sim_makespan=res.makespan,
        corrected_errors=res.stats.data_corrections + res.stats.checksum_corrections,
        restarts=res.restarts,
        residual=residual,
        timeline=res.timeline,
        corrected_sites=list(res.stats.corrected_sites),
        stats=res.stats,
        factor=factor,
        runtime=getattr(res, "runtime", None),
    )


def execute_fallback(
    job: Job,
    machine: Machine,
    policy: RetryPolicy,
    a: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> AttemptOutcome:
    """Last-rung execution under the checkpoint/rollback baseline (blocking)."""
    if job.injector is not None:
        job.injector.disarm()  # the fault already happened; replay clean
    if job.numerics == "real":
        if a is None:
            a = job_matrix(job)
        pristine = _pristine_copy(a, scratch)
        res = checkpoint_potrf(
            machine,
            a=a,
            block_size=job.block_size,
            interval=policy.checkpoint_interval,
            injector=job.injector,
        )
        residual = factorization_residual(pristine, res.factor)
    else:
        res = checkpoint_potrf(
            machine,
            n=job.n,
            block_size=job.block_size,
            interval=policy.checkpoint_interval,
            injector=job.injector,
            numerics="shadow",
        )
        residual = None
    return AttemptOutcome(
        sim_makespan=res.makespan,
        corrected_errors=res.stats.data_corrections + res.stats.checksum_corrections,
        restarts=res.rollbacks,
        residual=residual,
        timeline=res.timeline,
        fallback_used=True,
        extras={"checkpoints_taken": res.checkpoints_taken},
        corrected_sites=list(res.stats.corrected_sites),
        stats=res.stats,
        factor=res.factor if job.numerics == "real" else None,
    )
