"""Service metrics: counters, gauges, histograms, JSON + Prometheus export.

A deliberately small registry (no external client library — the container
bakes its dependencies) with the semantics monitoring stacks expect:

- :class:`Counter` — monotone totals (``_total`` names), optional labels;
- :class:`Gauge` — set/inc/dec point-in-time values, optional labels;
- :class:`Histogram` — latency/size observations with percentile queries,
  exported in the Prometheus *summary* text form (quantile series plus
  ``_sum`` / ``_count``).

Everything is synchronous and in-process, but *not* single-threaded: the
executors' ``_note_*`` helpers record attempts, IPC bytes and transport
errors from worker threads (``run_sync`` via ``asyncio.to_thread``) while
the service mutates the same metrics from the event loop.  Each metric
therefore guards its mutations with a private lock — reads stay lock-free
(CPython container snapshots are safe under the GIL, and export paths
tolerate a value that is one update stale).
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field

from repro.util.exceptions import ValidationError
from repro.util.validation import require

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(key: LabelKey, extra: dict[str, str] | None = None) -> str:
    pairs = list(key) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


@dataclass
class Counter:
    """A monotonically increasing total, optionally split by labels."""

    name: str
    help: str
    _values: dict[LabelKey, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        require(amount >= 0, f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        if labels:
            return self._values.get(_label_key(labels), 0.0)
        return sum(self._values.values())

    def to_json(self) -> float | dict[str, float]:
        if set(self._values) == {()} or not self._values:
            return self.value()
        return {_label_suffix(k) or "total": v for k, v in sorted(self._values.items())}

    def to_prometheus(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_label_suffix(key)} {value:g}")
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


@dataclass
class Gauge:
    """A point-in-time value, optionally split by labels."""

    name: str
    help: str
    _values: dict[LabelKey, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        if labels:
            return self._values.get(_label_key(labels), 0.0)
        return sum(self._values.values())

    def to_json(self) -> float | dict[str, float]:
        if set(self._values) == {()} or not self._values:
            return self.value()
        return {_label_suffix(k) or "total": v for k, v in sorted(self._values.items())}

    def to_prometheus(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_label_suffix(key)} {value:g}")
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


@dataclass
class Histogram:
    """Observations with exact percentile queries (summary-style export).

    Keeps raw observations — service runs are bounded (one float per job),
    so exact percentiles beat bucket approximations at no real cost.
    """

    name: str
    help: str
    quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)
    _observations: list[float] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def observe(self, value: float) -> None:
        with self._lock:
            self._observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self._observations)

    @property
    def sum(self) -> float:
        return math.fsum(self._observations)

    def percentile(self, q: float) -> float:
        """Exact q-quantile (nearest-rank) of the observations; 0.0 if empty."""
        require(0.0 <= q <= 1.0, f"quantile {q} outside [0, 1]")
        if not self._observations:
            return 0.0
        ordered = sorted(self._observations)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def to_json(self) -> dict[str, float]:
        out: dict[str, float] = {"count": float(self.count), "sum": self.sum}
        for q in self.quantiles:
            out[f"p{int(q * 100)}"] = self.percentile(q)
        if self._observations:
            out["max"] = max(self._observations)
        return out

    def to_prometheus(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} summary"]
        for q in self.quantiles:
            lines.append(f'{self.name}{{quantile="{q:g}"}} {self.percentile(q):g}')
        lines.append(f"{self.name}_sum {self.sum:g}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Create-or-get registry for the three metric kinds."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        # registration can race (event-loop setup vs. executor threads
        # binding lazily); create-or-get must hand every caller the same
        # instance
        self._register_lock = threading.Lock()

    def _register(self, metric):
        with self._register_lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValidationError(
                        f"metric {metric.name!r} already registered as {type(existing).__name__}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> Histogram:
        return self._register(Histogram(name, help, quantiles))

    def __iter__(self):
        return iter(self._metrics.values())

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready snapshot grouped by metric kind."""
        out: dict[str, dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self._metrics.values():
            group = {Counter: "counters", Gauge: "gauges", Histogram: "histograms"}[type(metric)]
            out[group][metric.name] = metric.to_json()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one block per metric)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].to_prometheus())
        return "\n".join(lines) + "\n"

    def counters_snapshot(self) -> dict[str, dict[str, float]]:
        """Every counter's per-label values, deep-copied.

        The chaos harness samples this mid-run and at the end and asserts
        monotonicity with :func:`counter_regressions` — a counter that
        ever decreases means some code path resets or overwrites totals.
        """
        return {
            metric.name: {_label_suffix(k) or "total": v for k, v in metric._values.items()}
            for metric in self._metrics.values()
            if isinstance(metric, Counter)
        }


def counter_regressions(
    before: dict[str, dict[str, float]], after: dict[str, dict[str, float]]
) -> list[str]:
    """Counter series that *decreased* between two snapshots (should be none).

    A label series missing from *after* counts as a regression too: a
    counter's series can only ever be created, never dropped.
    """
    regressions: list[str] = []
    for name, series in before.items():
        later = after.get(name)
        for label, value in series.items():
            later_value = None if later is None else later.get(label)
            if later_value is None or later_value < value:
                regressions.append(f"{name}{'' if label == 'total' else label}: {value:g} -> {later_value}")
    return regressions
