"""Worker pool and cost-model-driven job packing.

A :class:`Worker` wraps one simulated heterogeneous machine
(:class:`repro.hetero.machine.Machine`) with a concurrency limit — the
number of factorizations it executes at once (think MPS contexts / service
replicas on one node).  The :class:`Scheduler` packs each job onto the
worker with the *earliest predicted completion*:

    eta(worker) = backlog_seconds(worker) / concurrency
                  + CostModel.potrf_seconds(n, B, scheme) on that machine

so a faster GPU absorbs proportionally more traffic, and a backlogged
worker stops winning ties — the same cost-model-first philosophy the paper
applies to the CPU-vs-GPU checksum-updating placement (Section V-B),
lifted one level up to whole factorizations.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.hetero.machine import Machine
from repro.service.job import Job
from repro.util.validation import check_positive, require


class Worker:
    """One machine replica with an admission slot count."""

    def __init__(
        self, name: str, machine: Machine, concurrency: int = 1, preset: str | None = None
    ) -> None:
        check_positive("concurrency", concurrency)
        self.name = name
        self.machine = machine
        #: the machine's preset name — the form a worker identity takes
        #: across a process boundary (execution backends re-resolve it)
        self.preset = preset if preset is not None else machine.name
        self.concurrency = concurrency
        self.semaphore = asyncio.Semaphore(concurrency)
        #: predicted seconds of assigned-but-unfinished work
        self.backlog_s = 0.0
        self.inflight = 0
        self.completed = 0

    @classmethod
    def from_spec(cls, spec: str, index: int = 0) -> "Worker":
        """Parse ``preset`` or ``preset:concurrency`` (CLI ``--workers`` form)."""
        preset, _, conc = spec.partition(":")
        concurrency = int(conc) if conc else 1
        return cls(f"{preset}-{index}", Machine.preset(preset), concurrency, preset=preset)

    def estimate_seconds(self, job: Job) -> float:
        """Predicted solo execution seconds for *job* on this machine."""
        block = job.block_size or self.machine.default_block_size
        cost = self.machine.context(numerics="shadow").cost
        return cost.potrf_seconds(job.n, block, scheme=job.scheme)

    def eta_seconds(self, job: Job) -> float:
        """Predicted completion horizon if *job* were assigned now."""
        return self.backlog_s / self.concurrency + self.estimate_seconds(job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Worker({self.name!r}, x{self.concurrency}, backlog={self.backlog_s:.3f}s)"


@dataclass
class Assignment:
    """A placement decision the service later settles with :meth:`Scheduler.complete`."""

    worker: Worker
    estimate_s: float


class Scheduler:
    """Earliest-predicted-completion packing over a fixed worker pool."""

    def __init__(self, workers: list[Worker]) -> None:
        require(bool(workers), "scheduler needs at least one worker")
        names = [w.name for w in workers]
        require(len(names) == len(set(names)), f"duplicate worker names in {names}")
        self.workers = list(workers)

    def pick(self, job: Job) -> Assignment:
        """Choose a worker for *job* and book its predicted work."""
        best = min(self.workers, key=lambda w: (w.eta_seconds(job), w.name))
        est = best.estimate_seconds(job)
        best.backlog_s += est
        best.inflight += 1
        return Assignment(worker=best, estimate_s=est)

    def book(self, worker: Worker, job: Job) -> Assignment:
        """Book *job* onto a specific worker (batch members ride with the
        batch head's pick so the whole unit shares one round-trip)."""
        est = worker.estimate_seconds(job)
        worker.backlog_s += est
        worker.inflight += 1
        return Assignment(worker=worker, estimate_s=est)

    def complete(self, assignment: Assignment) -> None:
        """Release the booked work after the job left its worker."""
        worker = assignment.worker
        worker.backlog_s = max(0.0, worker.backlog_s - assignment.estimate_s)
        worker.inflight -= 1
        worker.completed += 1

    @property
    def total_concurrency(self) -> int:
        return sum(w.concurrency for w in self.workers)

    def effective_concurrency(
        self, executor_capacity: int | None = None, intra_workers: int = 1
    ) -> int:
        """Pool-wide dispatch slots, capped by the execution backend.

        The scheduler's worker slots say how many factorizations the
        *simulated machines* admit; the execution backend says how many
        the *host* can actually run at once (1 for inline, the pool size
        for process).  Dispatching beyond the smaller bound only parks
        jobs in executor queues where admission control cannot see them,
        so the service sizes its capacity semaphore with this minimum.

        *intra_workers* > 1 means each job runs that many runtime threads
        (the ``dag`` scheme), so one job charges that many host slots —
        the backend capacity is divided accordingly, never below one.
        """
        check_positive("intra_workers", intra_workers)
        total = self.total_concurrency
        if executor_capacity is None:
            return total
        require(executor_capacity >= 1, "executor capacity must be >= 1")
        return min(total, max(1, executor_capacity // intra_workers))
