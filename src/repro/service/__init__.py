"""Async fault-tolerant Cholesky solve service.

The serving layer on top of the core/magma/desim/faults stack: batches of
SPD factorize jobs flow through admission control
(:mod:`repro.service.queue`), get packed onto a pool of simulated
heterogeneous workers by the cost model (:mod:`repro.service.scheduler`),
and execute under a selectable ABFT scheme with the retry/backoff/
checkpoint-fallback ladder of :mod:`repro.service.policy`.  Observability
lives in :mod:`repro.service.metrics` (JSON + Prometheus text) and in
per-job desim timelines tagged with the job id, which ``python -m repro
analyze-trace`` verifies offline.

CLI entry points: ``python -m repro serve`` and ``python -m repro loadgen``.
"""

from repro.service.core import ServiceConfig, SolveService, tag_timeline
from repro.service.job import Job, JobResult, JobStatus, Priority
from repro.service.loadgen import LoadGenConfig, LoadReport, make_job, make_jobs, run_load
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.policy import RetryPolicy, execute_attempt, execute_fallback
from repro.service.queue import AdmissionDecision, JobQueue
from repro.service.scheduler import Scheduler, Worker

__all__ = [
    "AdmissionDecision",
    "Counter",
    "Gauge",
    "Histogram",
    "Job",
    "JobQueue",
    "JobResult",
    "JobStatus",
    "LoadGenConfig",
    "LoadReport",
    "MetricsRegistry",
    "Priority",
    "RetryPolicy",
    "Scheduler",
    "ServiceConfig",
    "SolveService",
    "Worker",
    "execute_attempt",
    "execute_fallback",
    "make_job",
    "make_jobs",
    "run_load",
    "tag_timeline",
]
