"""Batch coalescing policy for the service's admission path.

When the execution backend can amortize a worker round-trip over several
attempts (:meth:`repro.exec.base.Executor.run_batch_sync`), the service
coalesces *compatible* queued jobs into one dispatch unit.  The policy
here is deliberately tiny and pure — the asyncio plumbing lives in
:mod:`repro.service.core`, and the hypothesis property tests pin the two
invariants that matter directly against these functions:

- **no reordering**: a batch is always a contiguous *prefix* of what
  ``JobQueue.get()`` would have served anyway (class-then-FIFO), so
  batching never lets a later job overtake an earlier one;
- **single class**: a batch never mixes priority classes — an
  interactive arrival terminates a best-effort batch instead of riding
  in it (it gets the very next dispatch unit);
- **bounded**: a batch never exceeds ``batch_max`` jobs, and the
  collector never waits past ``linger_s`` for stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.job import Job
from repro.util.validation import require

__all__ = ["BatchCoalescer"]


@dataclass(frozen=True)
class BatchCoalescer:
    """Pure admit/plan policy for one service's batching knobs."""

    #: most jobs one dispatch unit may carry (1 = batching off).
    batch_max: int = 1
    #: longest a partially filled batch may wait for stragglers (seconds).
    linger_s: float = 0.0

    def __post_init__(self) -> None:
        require(self.batch_max >= 1, "batch_max must be >= 1")
        require(self.linger_s >= 0.0, "linger_s must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.batch_max > 1

    def admit(self, batch: list[Job], candidate: Job) -> bool:
        """May *candidate* join *batch*?  (Size cap + same priority class.)"""
        if len(batch) >= self.batch_max:
            return False
        return not batch or batch[0].priority is candidate.priority

    def plan(self, queued: list[Job]) -> list[Job]:
        """The first batch a drained queue snapshot would yield.

        *queued* must already be in service order (class-then-FIFO — the
        order ``JobQueue.get()`` pops).  The result is the longest
        admissible prefix: reordering is impossible by construction.
        """
        batch: list[Job] = []
        for job in queued:
            if not self.admit(batch, job):
                break
            batch.append(job)
        return batch
