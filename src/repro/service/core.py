"""The asyncio solve service: admission → queue → scheduler → ABFT execution.

One :class:`SolveService` owns a :class:`~repro.service.queue.JobQueue`, a
:class:`~repro.service.scheduler.Scheduler` over simulated heterogeneous
workers, a :class:`~repro.service.metrics.MetricsRegistry`, and the
fault-handling ladder of :mod:`repro.service.policy`.  Factorizations are
blocking (NumPy + the discrete-event simulator), so each attempt is handed
to a pluggable execution backend (:mod:`repro.exec` — inline, thread pool,
or multicore process pool) under an ``asyncio.wait_for`` timeout;
everything else — admission, packing, backoff, metrics — happens on the
event loop.

Determinism: a job's randomness (input matrix, fault plans) is derived
from ``(job.seed, job.job_id)`` alone (:func:`repro.util.rng.derive_rng`),
never from shared generators, so results are identical whether jobs run
serially or interleaved across the pool.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path

from typing import TYPE_CHECKING

from repro.analysis.trace_io import dump_trace
from repro.desim.trace import META_JOB, Span, Timeline
from repro.service.batching import BatchCoalescer
from repro.service.job import Job, JobResult, JobStatus, Priority
from repro.service.metrics import MetricsRegistry
from repro.service.policy import AttemptOutcome, RetryPolicy
from repro.service.queue import AdmissionDecision, JobQueue
from repro.service.scheduler import Assignment, Scheduler, Worker
from repro.util.exceptions import ReproError
from repro.util.validation import check_positive, require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.breaker import BreakerPolicy
    from repro.resilience.journal import JobJournal


@dataclass(frozen=True)
class ServiceConfig:
    """Wiring for one service instance."""

    workers: tuple[str, ...] = ("tardis:2",)
    max_queue_depth: int = 64
    class_limits: dict[Priority, int] | None = None
    job_timeout_s: float = 120.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: real-mode jobs whose end-to-end residual exceeds this are *failed*,
    #: never silently returned — the service-level "no incorrect results"
    #: contract on top of ABFT's own detection
    residual_tolerance: float = 1e-8
    #: when set, every completed job's timeline is dumped here as
    #: ``job-<id>.json`` (trace schema v2, spans tagged with the job id)
    trace_dir: str | Path | None = None
    #: execution backend for blocking attempts: ``inline`` | ``thread`` |
    #: ``process`` | ``auto`` (see :mod:`repro.exec`); ``thread`` is the
    #: historical single-process behaviour, ``auto`` places each job by
    #: cost model (:mod:`repro.exec.chooser`)
    executor: str = "thread"
    #: backend concurrency (thread-pool width / process-pool size);
    #: ``None`` sizes it to the scheduler's total worker concurrency
    exec_workers: int | None = None
    #: most queued jobs one dispatch unit may coalesce into a single
    #: executor round-trip (1 = batching off); batches never mix
    #: priority classes and never reorder the queue (see
    #: :mod:`repro.service.batching`)
    batch_max: int = 1
    #: longest a partially filled batch waits for compatible stragglers
    #: before dispatching (seconds) — the coalescing latency budget
    batch_linger_s: float = 0.0
    #: when set, every job lifecycle transition is journaled here
    #: (append-only JSONL WAL) and a restarted service can ``recover()``
    #: admitted-but-unfinished jobs from it
    journal_path: str | Path | None = None
    #: compact the journal down to its live entries whenever it exceeds
    #: this size (long-lived shards must not grow an unbounded WAL);
    #: ``None`` disables rotation
    journal_compact_bytes: int | None = None
    #: wrap the executor in a circuit-breaker failover chain
    #: (``process → thread → inline`` below the configured backend) so a
    #: repeatedly failing backend degrades instead of eating retries
    failover: bool = False
    #: breaker tuning for the failover chain (defaults apply when ``None``)
    breaker: "BreakerPolicy | None" = None
    #: keep each completed job's factor on its :class:`JobResult` — the
    #: chaos harness compares factors bit-for-bit across scenarios
    keep_factors: bool = False
    #: per-job thread width the ``dag`` scheme's tile runtime is expected
    #: to use; the capacity semaphore charges each dispatch slot this many
    #: backend slots so intra-job threads are not double-booked
    intra_workers: int = 1

    def __post_init__(self) -> None:
        check_positive("intra_workers", self.intra_workers)
        require(bool(self.workers), "need at least one worker spec")
        check_positive("max_queue_depth", self.max_queue_depth)
        check_positive("job_timeout_s", self.job_timeout_s)
        check_positive("residual_tolerance", self.residual_tolerance)
        from repro.exec.base import EXECUTOR_CHOICES

        require(
            self.executor in EXECUTOR_CHOICES,
            f"unknown executor {self.executor!r}; have {EXECUTOR_CHOICES}",
        )
        require(
            not (self.failover and self.executor == "auto"),
            "failover chains wrap one concrete backend; 'auto' already "
            "owns all three — pick one or the other",
        )
        if self.exec_workers is not None:
            check_positive("exec_workers", self.exec_workers)
        require(self.batch_max >= 1, "batch_max must be >= 1")
        require(self.batch_linger_s >= 0.0, "batch_linger_s must be >= 0")


def tag_timeline(timeline: Timeline, job_id: int) -> Timeline:
    """A copy of *timeline* with every span's meta carrying the job id."""
    spans = [
        Span(
            tid=s.tid,
            name=s.name,
            kind=s.kind,
            resource=s.resource,
            start=s.start,
            finish=s.finish,
            meta={**s.meta, META_JOB: int(job_id)},
            deps=s.deps,
        )
        for s in timeline
    ]
    return Timeline(spans)


class SolveService:
    """Accepts solve jobs and runs them fault-tolerantly across the pool."""

    def __init__(self, config: ServiceConfig, metrics: MetricsRegistry | None = None) -> None:
        from repro.exec import make_executor

        self.config = config
        self.queue = JobQueue(
            max_depth=config.max_queue_depth, class_limits=config.class_limits
        )
        self.scheduler = Scheduler(
            [Worker.from_spec(spec, i) for i, spec in enumerate(config.workers)]
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        exec_workers = (
            config.exec_workers
            if config.exec_workers is not None
            else self.scheduler.total_concurrency
        )
        if config.failover:
            from repro.resilience.breaker import failover_chain

            self.executor = failover_chain(
                config.executor,
                workers=exec_workers,
                metrics=self.metrics,
                policy=config.breaker,
            )
        else:
            self.executor = make_executor(
                config.executor, workers=exec_workers, metrics=self.metrics
            )
        self.journal: JobJournal | None = None
        if config.journal_path is not None:
            from repro.resilience.journal import JobJournal

            self.journal = JobJournal(
                config.journal_path, compact_bytes=config.journal_compact_bytes
            )
        #: pool-wide slot count; the dispatcher holds a slot per dequeued job
        #: so the queue visibly backs up (and depth-based admission control
        #: engages) once every worker is saturated — capped by the execution
        #: backend's real host-side parallelism
        self._capacity = asyncio.Semaphore(
            self.scheduler.effective_concurrency(
                self.executor.capacity, config.intra_workers
            )
        )
        self._coalescer = BatchCoalescer(config.batch_max, config.batch_linger_s)
        self.results: dict[int, JobResult] = {}
        self.completions: asyncio.Queue[JobResult] = asyncio.Queue()
        self._inflight: set[asyncio.Task] = set()
        self._dispatcher: asyncio.Task | None = None
        m = self.metrics
        self._submitted = m.counter("service_jobs_submitted_total", "jobs offered to admission")
        self._rejected = m.counter("service_jobs_rejected_total", "jobs rejected by admission")
        self._completed = m.counter("service_jobs_completed_total", "jobs completed")
        self._failed = m.counter("service_jobs_failed_total", "jobs failed after the full ladder")
        self._corrections = m.counter("service_corrected_errors_total", "ABFT corrections")
        self._restarts = m.counter("service_restarts_total", "scheme-level restarts/rollbacks")
        self._retries = m.counter("service_retries_total", "service-level retries")
        self._fallbacks = m.counter("service_fallbacks_total", "checkpoint-baseline fallbacks")
        self._recovery_forward = m.counter(
            "recovery_forward_total", "attempts recovered forward from salvaged snapshots"
        )
        self._recovery_backward = m.counter(
            "recovery_backward_total", "salvage deliberations that escalated to restart"
        )
        self._recovery_erasure_tiles = m.counter(
            "recovery_erasure_tiles_total", "tiles reconstructed from known-row erasures"
        )
        self._timeouts = m.counter("service_timeouts_total", "attempts cancelled by timeout")
        self._incorrect = m.counter(
            "service_incorrect_results_total", "completed factorizations failing the residual gate"
        )
        self._flops = m.counter("service_useful_flops_total", "useful flops of completed jobs")
        self._runtime_tasks = m.counter(
            "runtime_task_total", "tile-DAG runtime tasks executed, by kind"
        )
        self._runtime_ready_depth = m.gauge(
            "runtime_ready_queue_depth", "high-water ready-task count in the tile runtime"
        )
        self._runtime_lookahead = m.gauge(
            "runtime_lookahead_depth", "high-water iteration lookahead the runtime reached"
        )
        self._runtime_stalls = m.counter(
            "runtime_worker_stalls_total", "runtime workers replaced by the watchdog"
        )
        self._journal_records = m.counter(
            "service_journal_records_total", "job lifecycle records appended to the journal"
        )
        self._recovered = m.counter(
            "service_jobs_recovered_total", "jobs resubmitted from journal replay"
        )
        self._depth = m.gauge("service_queue_depth", "queued jobs by class")
        self._inflight_g = m.gauge("service_inflight_jobs", "jobs currently executing")
        self._wait_h = m.histogram("service_wait_seconds", "admission-to-execution wait")
        self._exec_h = m.histogram("service_exec_seconds", "execution wall seconds")
        self._latency_h = m.histogram("service_latency_seconds", "submit-to-done latency")
        self._makespan_h = m.histogram(
            "service_sim_makespan_seconds", "simulated device makespan per job"
        )

    # -- journal -----------------------------------------------------------------

    def _journal_record(self, event: str, job: Job, **fields: object) -> None:
        if self.journal is None or self.journal.closed:
            return
        self.journal.record(event, job.key, **fields)
        self._journal_records.inc(event=event)

    def recover(self) -> list[Job]:
        """Replay the journal: resubmit every admitted-but-unfinished job.

        Call on a fresh service instance pointed at a crashed
        predecessor's ``journal_path``, before (or after) ``start()``.
        At-least-once, idempotent per recovery: jobs are deduped by
        :attr:`~repro.service.job.Job.key` and force-admitted past the
        depth caps — the predecessor already accepted them once.
        Recovered jobs replay fault-free (the journal persists no
        injector), matching the ladder's own one-shot fault semantics.
        """
        from repro.resilience.journal import incomplete_jobs, read_journal

        require(self.journal is not None, "recovery needs a configured journal_path")
        jobs = incomplete_jobs(read_journal(self.journal.path))
        recovered: list[Job] = []
        for job in jobs:
            self._journal_record("recovered", job)
            if self.submit(job, force=True).accepted:
                self._recovered.inc()
                recovered.append(job)
        return recovered

    # -- producer API ------------------------------------------------------------

    def submit(self, job: Job, force: bool = False) -> AdmissionDecision:
        """Offer *job* to admission control; never blocks.

        ``force`` (journal recovery only) bypasses the depth and class
        caps — the job was already admitted once by a prior incarnation.
        """
        self._submitted.inc(priority=job.priority.name.lower())
        decision = self.queue.submit(job, force=force)
        if decision.accepted:
            job.submit_time = time.monotonic()
            self._depth.set(self.queue.depth_of(job.priority), priority=job.priority.name.lower())
            self._journal_record("admitted", job, spec=job.to_spec())
        else:
            self._rejected.inc(priority=job.priority.name.lower())
            self._journal_record("rejected", job, reason=decision.reason)
            self.results[job.job_id] = JobResult(
                job_id=job.job_id,
                status=JobStatus.REJECTED,
                scheme=job.scheme,
                n=job.n,
                priority=job.priority,
                error=decision.reason,
            )
        return decision

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher on the running event loop."""
        require(self._dispatcher is None, "service already started")
        self._dispatcher = asyncio.get_running_loop().create_task(self._dispatch())

    async def start_executor(self) -> None:
        """Bring the execution backend up eagerly (worker spawn, warm state).

        Optional — the first dispatched attempt also starts it — but
        load generators call this before timing so pool spawn cost is
        not billed to the first job's latency.
        """
        await self.executor.start()

    async def drain(self, poll_s: float = 0.005) -> None:
        """Wait until the queue is empty and nothing is executing."""
        while self.queue.depth or self._inflight:
            await asyncio.sleep(poll_s)

    async def stop(self) -> None:
        """Drain accepted work, then shut the dispatcher and backend down."""
        await self.drain()
        await self.queue.close()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._inflight:
            await asyncio.gather(*self._inflight)
        await self.executor.stop()
        if self.journal is not None:
            self.journal.close()

    async def abort(self) -> None:
        """Crash-like shutdown: stop *now*, abandoning queued and in-flight work.

        The chaos harness's stand-in for a service-process kill: nothing
        drains, so admitted jobs stay unfinished in the journal and a
        successor instance can :meth:`recover` them.  Cancellations are
        collected with ``return_exceptions=True`` — the cancelled tasks'
        ``CancelledError`` is their expected terminal state here, not a
        failure to hide (rule RPL008 forbids swallowing it in handlers).
        """
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            await asyncio.gather(self._dispatcher, return_exceptions=True)
            self._dispatcher = None
        inflight = list(self._inflight)
        for task in inflight:
            task.cancel()
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        await self.queue.close()
        await self.executor.stop()
        if self.journal is not None:
            self.journal.close()

    # -- internals ---------------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            # Ownership transfer: the slot is handed to the _run_unit task,
            # whose finally releases it (or the None branch below does).
            await self._capacity.acquire()  # noqa: RPL101
            job = await self.queue.get()
            if job is None:
                self._capacity.release()
                return
            # One dispatch unit (a singleton or a coalesced batch) per
            # capacity slot; coalescing happens *inside* the task so the
            # popped jobs are always visible to drain() via _inflight.
            task = asyncio.get_running_loop().create_task(self._run_unit(job))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _coalesce(self, first: Job) -> list[Job]:
        """Grow a batch from the queue head without reordering it.

        Only ever takes the exact job ``queue.get()`` would serve next,
        and only while it shares *first*'s priority class
        (:meth:`~repro.service.queue.JobQueue.get_compatible_nowait`);
        lingers up to the configured budget for stragglers, a latency
        bound the batching property tests pin.
        """
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.batch_linger_s
        while len(batch) < self._coalescer.batch_max:
            candidate = self.queue.get_compatible_nowait(first.priority)
            if candidate is not None:
                batch.append(candidate)
                continue
            remaining = deadline - loop.time()
            if remaining <= 0.0 or self.queue.closed:
                break
            await asyncio.sleep(min(remaining, 0.001))
        return batch

    async def _run_unit(self, first: Job) -> None:
        """Run one dispatch unit: coalesce, place, execute, settle."""
        batch = [first]
        if self._coalescer.enabled:
            batch = await self._coalesce(first)
        self._depth.set(
            self.queue.depth_of(first.priority), priority=first.priority.name.lower()
        )
        try:
            head = self.scheduler.pick(first)
            assignments = [head] + [
                self.scheduler.book(head.worker, job) for job in batch[1:]
            ]
            worker = head.worker
            for job in batch:
                self._journal_record("dispatched", job, worker=worker.name)
            async with worker.semaphore:
                self._inflight_g.inc(len(batch))
                try:
                    if len(batch) == 1:
                        results = [await self.handle_job(first, worker)]
                    else:
                        results = await self._run_batch(batch, worker)
                finally:
                    self._inflight_g.dec(len(batch))
            for assignment in assignments:
                self.scheduler.complete(assignment)
            for job, result in zip(batch, results):
                self._record(job, result)
        finally:
            self._capacity.release()

    async def _run_batch(self, jobs: list[Job], worker: Worker) -> list[JobResult]:
        """First attempts ride one executor round-trip; failures peel off.

        Each job whose batched first attempt failed re-enters
        :meth:`handle_job` with that failure pre-recorded, so the retry
        ladder, backoff, fallback, and journal semantics are *identical*
        to a singleton dispatch from attempt 2 on — and the batch's
        successful jobs are entirely unaffected.
        """
        from repro.exec.base import AttemptRequest

        started = time.monotonic()
        timeouts = [
            job.timeout_s if job.timeout_s is not None else self.config.job_timeout_s
            for job in jobs
        ]
        requests = [
            AttemptRequest(
                job=job,
                preset=worker.preset,
                machine=worker.machine,
                timeout_s=timeout,
            )
            for job, timeout in zip(jobs, timeouts)
        ]
        for job in jobs:
            self._journal_record("attempt", job, number=1, kind="attempt")
        budget = sum(timeouts)
        try:
            # The executor deadlines itself at budget + grace and returns
            # per-item exception values; this outer wait_for only guards
            # against a backend that stops responding entirely.
            outcomes = await asyncio.wait_for(
                self.executor.execute_batch(requests), budget + 5.0
            )
        except asyncio.TimeoutError:
            self._timeouts.inc(len(jobs))
            outcomes = [
                TimeoutError(f"batched attempt timed out after {budget:g}s") for _ in jobs
            ]
        except ReproError as exc:
            outcomes = [type(exc)(str(exc)) for _ in jobs]
        results: list[JobResult | None] = [None] * len(jobs)
        laggards: list[int] = []
        for index, (job, outcome) in enumerate(zip(jobs, outcomes)):
            if isinstance(outcome, BaseException) or outcome is None:
                laggards.append(index)
                continue
            result = self._finish_job(
                job, worker, outcome, attempts=1, retries=0, started=started
            )
            if result.completed and self.config.trace_dir is not None:
                await asyncio.to_thread(self._dump_job_trace, job, result)
            results[index] = result
        if laggards:
            # handle_job dumps its own traces, records its own retry
            # metrics, and runs concurrently per laggard — each job backs
            # off on its own clock, exactly as a singleton retry would.
            peeled = await asyncio.gather(
                *(
                    self.handle_job(
                        jobs[index],
                        worker,
                        first_error=f"attempt 1: {outcomes[index]}",
                        started_at=started,
                        first_salvage=getattr(outcomes[index], "salvage", None),
                    )
                    for index in laggards
                )
            )
            for index, result in zip(laggards, peeled):
                results[index] = result
        return results  # type: ignore[return-value]

    async def handle_job(
        self,
        job: Job,
        worker: Worker,
        first_error: str | None = None,
        started_at: float | None = None,
        first_salvage=None,
    ) -> JobResult:
        """Run one admitted job to a terminal state (the timeout-guarded handler).

        ``first_error``/``started_at`` let a failed *batched* first attempt
        (already executed and journaled by :meth:`_run_batch`) enter the
        ladder as if rung 1 just failed here — the backoff, injector
        disarm, fallback, and journal records from attempt 2 on are
        byte-identical to a singleton dispatch; ``first_salvage`` carries
        that attempt's salvaged snapshot, if any, into the
        erasure-recover rung.
        """
        # Deferred: repro.exec.base imports service modules, so a module-level
        # import here would be circular when repro.exec loads first.
        from repro.exec.base import AttemptRequest

        started = started_at if started_at is not None else time.monotonic()
        wait_s = max(0.0, started - job.submit_time)
        timeout = job.timeout_s if job.timeout_s is not None else self.config.job_timeout_s
        attempts = 0
        retries = 0
        outcome = None
        error: str | None = None
        pending_error = first_error
        salvage = first_salvage
        if pending_error is not None:
            attempts = 1
            error = pending_error
        while outcome is None:
            if pending_error is not None:
                # Attempt 1 already ran (batched) and failed; consume the
                # failure and fall through to the backoff ladder below
                # without re-journaling or re-executing it.
                pending_error = None
            else:
                salvage = None
                attempts += 1
                self._journal_record("attempt", job, number=attempts, kind="attempt")
                try:
                    request = AttemptRequest(
                        job=job, preset=worker.preset, machine=worker.machine, timeout_s=timeout
                    )
                    outcome = await asyncio.wait_for(self.executor.execute(request), timeout)
                    break
                except asyncio.TimeoutError:
                    error = f"attempt {attempts} timed out after {timeout:g}s"
                    self._timeouts.inc()
                except ReproError as exc:
                    # Scheme-level failures AND executor infrastructure failures
                    # (a crashed pool worker) land here: the attempt is requeued
                    # through the same backoff ladder either way.  A crashed
                    # worker's salvaged snapshot rides on the exception.
                    error = f"attempt {attempts}: {exc}"
                    salvage = getattr(exc, "salvage", None)
            if salvage is not None:
                # Erasure-recover rung: try to decode the failure forward
                # before paying for a from-scratch restart.
                outcome = await self._try_forward_recovery(job, worker, salvage, timeout)
                salvage = None
                if outcome is not None:
                    break
            delay = self.config.retry.backoff_s(retries + 1)
            if delay is None:
                break
            retries += 1
            self._retries.inc()
            if job.injector is not None:
                job.injector.disarm()  # the fault was a one-shot event
            await asyncio.sleep(delay)
        if outcome is None and self.config.retry.fallback_to_checkpoint:
            self._fallbacks.inc()
            self._journal_record("attempt", job, number=attempts + 1, kind="fallback")
            try:
                request = AttemptRequest(
                    job=job,
                    preset=worker.preset,
                    machine=worker.machine,
                    kind="fallback",
                    retry=self.config.retry,
                    timeout_s=timeout,
                )
                outcome = await asyncio.wait_for(self.executor.execute(request), timeout)
            except asyncio.TimeoutError:
                error = f"fallback timed out after {timeout:g}s"
                self._timeouts.inc()
            except ReproError as exc:
                error = f"fallback: {exc}"

        finished = time.monotonic()
        exec_s = finished - started
        if outcome is None:
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.FAILED,
                scheme=job.scheme,
                n=job.n,
                priority=job.priority,
                worker=worker.name,
                attempts=attempts,
                retries=retries,
                wait_s=wait_s,
                exec_s=exec_s,
                latency_s=wait_s + exec_s,
                error=error or "exhausted retry ladder",
            )
        result = self._finish_job(
            job, worker, outcome, attempts=attempts, retries=retries, started=started
        )
        if result.completed and self.config.trace_dir is not None:
            # Trace files can reach megabytes; keep the write off the loop.
            await asyncio.to_thread(self._dump_job_trace, job, result)
        return result

    async def _try_forward_recovery(
        self, job: Job, worker: Worker, salvage, timeout: float
    ) -> AttemptOutcome | None:
        """One erasure-recover deliberation: repair + resume, or decline.

        Sits between a failed attempt and its backoff/restart: the
        forward-vs-backward cost model (:func:`repro.recovery.decision.
        choose_recovery`) decides whether the salvaged snapshot is worth
        decoding; the blocking repair + resume then runs off the event
        loop under the job's own attempt timeout.  Any decline, decode
        failure, or timeout returns ``None`` — the ordinary restart rungs
        take over, so forward recovery can only ever *save* work, never
        lose correctness.
        """
        from repro.recovery import choose_recovery, execute_resume

        decision = choose_recovery(job, worker.machine, salvage)
        self._journal_record(
            "recovery",
            job,
            forward=decision.forward,
            reason=decision.reason,
            resume_iteration=salvage.resume_iteration,
            erased_rows=len(salvage.bad_matrix_rows) + len(salvage.bad_chk_rows),
        )
        if not decision.forward:
            self._recovery_backward.inc(reason="declined")
            return None
        try:
            outcome = await asyncio.wait_for(
                asyncio.to_thread(execute_resume, job, worker.machine, salvage), timeout
            )
        except asyncio.TimeoutError:
            self._timeouts.inc()
            self._recovery_backward.inc(reason="timeout")
            return None
        except ReproError:
            # Undecodable after all (SalvageError) or the resumed run
            # itself failed; restart from scratch — never guess forward.
            self._recovery_backward.inc(reason="failed")
            return None
        self._recovery_forward.inc()
        self._recovery_erasure_tiles.inc(outcome.extras.get("erasure_tiles", 0))
        return outcome

    def _finish_job(
        self,
        job: Job,
        worker: Worker,
        outcome: AttemptOutcome,
        *,
        attempts: int,
        retries: int,
        started: float,
    ) -> JobResult:
        """Gate and package one successful attempt outcome.

        The shared success tail of :meth:`handle_job` and
        :meth:`_run_batch` — the residual gate (the service-level "no
        incorrect results" contract) applies identically either way.
        """
        finished = time.monotonic()
        wait_s = max(0.0, started - job.submit_time)
        exec_s = finished - started
        self._note_runtime(outcome.runtime)
        status = JobStatus.COMPLETED
        error: str | None = None
        if outcome.residual is not None and outcome.residual > self.config.residual_tolerance:
            status = JobStatus.FAILED
            error = f"residual {outcome.residual:.3e} exceeds {self.config.residual_tolerance:g}"
            self._incorrect.inc()
        return JobResult(
            job_id=job.job_id,
            status=status,
            scheme=job.scheme,
            n=job.n,
            priority=job.priority,
            worker=worker.name,
            attempts=attempts,
            retries=retries,
            corrected_errors=outcome.corrected_errors,
            corrected_sites=list(outcome.corrected_sites),
            restarts=outcome.restarts,
            fallback_used=outcome.fallback_used,
            wait_s=wait_s,
            exec_s=exec_s,
            latency_s=wait_s + exec_s,
            sim_makespan=outcome.sim_makespan,
            residual=outcome.residual,
            error=error,
            timeline=outcome.timeline,
            factor=outcome.factor if self.config.keep_factors else None,
        )

    def _note_runtime(self, runtime: dict | None) -> None:
        """Fold one dag-runtime executor summary into the service metrics.

        The summary is plain data so it survives the process backend's
        pickle boundary; counters and per-kind duration histograms are
        kept mutually consistent (one observation per counted task), which
        the chaos battery's ``executor_metrics_consistent`` invariant
        checks.
        """
        if not runtime:
            return
        for kind, count in runtime.get("task_total", {}).items():
            self._runtime_tasks.inc(count, kind=kind)
        for kind, durations in runtime.get("task_seconds", {}).items():
            hist = self.metrics.histogram(
                f"runtime_task_seconds_{kind}", f"dag runtime {kind} task durations"
            )
            for duration in durations:
                hist.observe(duration)
        self._runtime_ready_depth.set(
            max(self._runtime_ready_depth.value(), float(runtime.get("max_ready_depth", 0)))
        )
        self._runtime_lookahead.set(
            max(self._runtime_lookahead.value(), float(runtime.get("max_lookahead_depth", 0)))
        )
        stalls = runtime.get("stalls", 0)
        if stalls:
            self._runtime_stalls.inc(stalls)

    def _dump_job_trace(self, job: Job, result: JobResult) -> None:
        trace_dir = Path(self.config.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        # Checkpoint-fallback runs follow the offline protocol contract
        # (periodic sweeps; unguarded-read windows are informational), so
        # analyze-trace checks them under the "offline" ruleset.
        scheme = "offline" if result.fallback_used else job.scheme
        dump_trace(
            tag_timeline(result.timeline, job.job_id),
            scheme,
            trace_dir / f"job-{job.job_id}.json",
            job=job.job_id,
        )

    def _record(self, job: Job, result: JobResult) -> None:
        self.results[job.job_id] = result
        self._journal_record(
            result.status.value,
            job,
            attempts=result.attempts,
            retries=result.retries,
            fallback=result.fallback_used,
        )
        self.queue.note_service_time(result.exec_s)
        if result.completed:
            self._completed.inc(worker=result.worker or "?")
            self._corrections.inc(result.corrected_errors)
            self._restarts.inc(result.restarts)
            self._flops.inc(job.flops)
        else:
            self._failed.inc()
        self._wait_h.observe(result.wait_s)
        self._exec_h.observe(result.exec_s)
        self._latency_h.observe(result.latency_s)
        if result.sim_makespan:
            self._makespan_h.observe(result.sim_makespan)
        self.completions.put_nowait(result)
