"""Job and result records for the solve service.

A :class:`Job` is one SPD factorize/solve request as it travels through the
service: admission → queue → scheduler → execution under an ABFT scheme →
:class:`JobResult`.  Jobs carry their own :class:`~repro.faults.injector.
FaultInjector` (one-shot plans, pre-sampled from a per-job generator) so a
retry or fallback replays fault-free, exactly like the paper's restart
protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.blas.flops import potrf_flops
from repro.faults.injector import FaultInjector
from repro.util.exceptions import ValidationError
from repro.util.validation import check_positive, require

SCHEMES = ("offline", "online", "enhanced", "dag")


class Priority(enum.IntEnum):
    """Admission classes, most urgent first (lower value = served first)."""

    INTERACTIVE = 0
    BATCH = 1
    BEST_EFFORT = 2

    @classmethod
    def parse(cls, text: "str | int | Priority") -> "Priority":
        if isinstance(text, cls):
            return text
        if isinstance(text, int):
            return cls(text)
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValidationError(
                f"unknown priority {text!r}; have {[p.name.lower() for p in cls]}"
            ) from None


class JobStatus(str, enum.Enum):
    COMPLETED = "completed"
    FAILED = "failed"
    REJECTED = "rejected"


@dataclass
class Job:
    """One solve/factorize request."""

    job_id: int
    n: int
    scheme: str = "enhanced"
    priority: Priority = Priority.BATCH
    block_size: int | None = None
    numerics: str = "real"
    verify_interval: int = 1
    seed: int = 0
    injector: FaultInjector | None = None
    timeout_s: float | None = None
    #: threads the ``dag`` scheme's tile runtime may use for this job
    #: (the scheduler charges the job that many cores); other schemes
    #: run single-threaded and must leave it at 1
    intra_workers: int = 1
    submit_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        require(self.scheme in SCHEMES, f"unknown scheme {self.scheme!r}; have {SCHEMES}")
        require(self.numerics in ("real", "shadow"), f"bad numerics {self.numerics!r}")
        check_positive("verify_interval", self.verify_interval)
        check_positive("intra_workers", self.intra_workers)
        if self.scheme == "dag":
            require(
                self.numerics == "real",
                "the dag scheme runs real numerics only",
            )
        else:
            require(
                self.intra_workers == 1,
                f"scheme {self.scheme!r} is single-threaded; intra_workers must be 1",
            )
        self.priority = Priority.parse(self.priority)

    @property
    def flops(self) -> int:
        """Useful factorization flops this job represents."""
        return potrf_flops(self.n)

    @property
    def key(self) -> str:
        """The job's identity for journal dedup: ``(seed, job_id)``.

        Everything deterministic about a job — input matrix, fault plans —
        derives from this pair, so it is exactly the granularity at which
        a replayed submission is "the same job".
        """
        return f"{self.seed}:{self.job_id}"

    def to_spec(self) -> dict:
        """The job as a plain-JSON dict the journal can persist.

        The injector is deliberately excluded: injected faults are
        one-shot *events*, not properties of the job, so a journal-replayed
        job runs fault-free — the same restart semantics the retry ladder
        applies when it disarms the injector before a retry.
        """
        return {
            "job_id": int(self.job_id),
            "n": int(self.n),
            "scheme": self.scheme,
            "priority": self.priority.name.lower(),
            "block_size": None if self.block_size is None else int(self.block_size),
            "numerics": self.numerics,
            "verify_interval": int(self.verify_interval),
            "seed": int(self.seed),
            "timeout_s": None if self.timeout_s is None else float(self.timeout_s),
            "intra_workers": int(self.intra_workers),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "Job":
        """Rebuild a job from :meth:`to_spec` output (journal replay)."""
        return cls(
            job_id=int(spec["job_id"]),
            n=int(spec["n"]),
            scheme=spec.get("scheme", "enhanced"),
            priority=Priority.parse(spec.get("priority", "batch")),
            block_size=spec.get("block_size"),
            numerics=spec.get("numerics", "real"),
            verify_interval=int(spec.get("verify_interval", 1)),
            seed=int(spec.get("seed", 0)),
            timeout_s=spec.get("timeout_s"),
            intra_workers=int(spec.get("intra_workers", 1)),
        )


@dataclass
class JobResult:
    """Terminal record of one job (kept by the service, summarized by reports)."""

    job_id: int
    status: JobStatus
    scheme: str
    n: int
    priority: Priority
    worker: str | None = None
    attempts: int = 1
    retries: int = 0
    corrected_errors: int = 0
    #: (tile, row, col) sites ABFT corrected — part of the determinism
    #: contract: identical across execution backends for the same job
    corrected_sites: list = field(default_factory=list)
    restarts: int = 0
    fallback_used: bool = False
    wait_s: float = 0.0
    exec_s: float = 0.0
    latency_s: float = 0.0
    sim_makespan: float = 0.0
    residual: float | None = None
    error: str | None = None
    timeline: object | None = field(default=None, repr=False, compare=False)
    #: the factor itself, kept only when ``ServiceConfig.keep_factors`` is
    #: set (chaos invariants compare factors bit-for-bit across scenarios)
    factor: object | None = field(default=None, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        return self.status is JobStatus.COMPLETED
