"""Priority job queue with admission control and bounded backpressure.

Three priority classes (:class:`~repro.service.job.Priority`) share one
bounded queue.  Admission is decided synchronously at submit time:

- the queue holds at most ``max_depth`` jobs overall;
- each class may additionally be capped (``class_limits``), so best-effort
  traffic cannot starve interactive work of queue space;
- a rejected submission is *not* an error — the caller gets an
  :class:`AdmissionDecision` with ``retry_after_s``, a hint derived from
  the current backlog and an EWMA of observed service times (the classic
  reject-with-retry-after backpressure contract).

``get()`` serves strictly by class (interactive first), FIFO within a
class.  Closing the queue wakes all getters with ``None``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.service.job import Job, Priority
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one submit attempt."""

    accepted: bool
    reason: str = "ok"
    retry_after_s: float | None = None


class JobQueue:
    """Bounded multi-class FIFO with retry-after backpressure."""

    def __init__(
        self,
        max_depth: int = 64,
        class_limits: dict[Priority, int] | None = None,
        service_time_hint_s: float = 0.05,
    ) -> None:
        check_positive("max_depth", max_depth)
        self.max_depth = max_depth
        self.class_limits = dict(class_limits or {})
        for limit in self.class_limits.values():
            check_positive("class limit", limit)
        self._queues: dict[Priority, deque[Job]] = {p: deque() for p in Priority}
        self._cond = asyncio.Condition()
        self._closed = False
        # EWMA of observed per-job service seconds; seeds the retry-after
        # hint before the first completion is observed.
        self._ewma_service_s = service_time_hint_s
        self.drained_total = 0

    # -- introspection -----------------------------------------------------------

    @property
    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth_of(self, priority: Priority) -> int:
        return len(self._queues[Priority.parse(priority)])

    @property
    def closed(self) -> bool:
        return self._closed

    # -- backpressure ------------------------------------------------------------

    def note_service_time(self, seconds: float, alpha: float = 0.3) -> None:
        """Feed one observed service time into the retry-after estimator."""
        require(seconds >= 0, "service time must be nonnegative")
        self._ewma_service_s += alpha * (seconds - self._ewma_service_s)

    def retry_after_hint(self, overflow: int = 1) -> float:
        """Seconds a rejected client should wait before resubmitting.

        Scaled to how long the current backlog (plus the client's own
        overflow) takes to drain at the observed service rate — a full
        queue quotes a longer wait than a briefly-over-limit one.
        """
        backlog = self.depth + max(1, overflow)
        return max(0.001, backlog * self._ewma_service_s)

    # -- producer side -----------------------------------------------------------

    def submit(self, job: Job, force: bool = False) -> AdmissionDecision:
        """Admit *job* or reject it with a retry-after hint (synchronous).

        ``force`` bypasses the depth and class caps (never the closed
        check): journal recovery re-admits jobs the service already
        accepted once, so bouncing them off admission control would turn
        an at-least-once replay into a lossy one.
        """
        if self._closed:
            return AdmissionDecision(False, reason="queue closed")
        if force:
            self._queues[job.priority].append(job)
            self._wake()
            return AdmissionDecision(True, reason="forced")
        if self.depth >= self.max_depth:
            return AdmissionDecision(
                False,
                reason=f"queue full (depth {self.depth} >= {self.max_depth})",
                retry_after_s=self.retry_after_hint(self.depth - self.max_depth + 1),
            )
        limit = self.class_limits.get(job.priority)
        if limit is not None and len(self._queues[job.priority]) >= limit:
            return AdmissionDecision(
                False,
                reason=f"class {job.priority.name.lower()} full ({limit})",
                retry_after_s=self.retry_after_hint(),
            )
        self._queues[job.priority].append(job)
        self._wake()
        return AdmissionDecision(True)

    def _wake(self) -> None:
        async def notify() -> None:
            async with self._cond:
                self._cond.notify_all()

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # no loop yet: getters will see the job when they start
        loop.create_task(notify())

    # -- consumer side -----------------------------------------------------------

    def _pop(self) -> Job | None:
        for priority in Priority:
            if self._queues[priority]:
                self.drained_total += 1
                return self._queues[priority].popleft()
        return None

    async def get(self) -> Job | None:
        """Next job by class-then-FIFO order; ``None`` once closed and empty."""
        async with self._cond:
            while True:
                job = self._pop()
                if job is not None:
                    return job
                if self._closed:
                    return None
                await self._cond.wait()

    def get_compatible_nowait(self, priority: Priority) -> Job | None:
        """Pop the job :meth:`get` would serve next — but only if it is in
        *priority*'s class; ``None`` otherwise (or when empty).

        The batch coalescer's fetch primitive: because it only ever takes
        the exact head of service order, coalescing can never reorder
        jobs — a higher-priority arrival makes this return ``None``,
        ending the batch, and that arrival is served by the next ``get``.
        """
        priority = Priority.parse(priority)
        for p in Priority:
            if self._queues[p]:
                if p is not priority:
                    return None
                self.drained_total += 1
                return self._queues[p].popleft()
        return None

    async def close(self) -> None:
        """Refuse new work and wake blocked getters (drains what's queued)."""
        self._closed = True
        async with self._cond:
            self._cond.notify_all()
