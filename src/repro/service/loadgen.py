"""Load generation and the latency/throughput report.

Two standard driving modes:

- **open loop** (``rate``): job arrivals are a Poisson process — submit
  times do not depend on completions, so the generator exposes the queue's
  admission control honestly (rejected arrivals are *lost*, recorded, and
  reported — the backpressure demo);
- **closed loop** (``concurrency``): a fixed number of outstanding jobs;
  each completion triggers the next submission, and a rejection waits the
  quoted ``retry_after_s`` before resubmitting — so every job eventually
  completes (the CI smoke contract).

Job mixes are generated deterministically from a root seed with
:func:`repro.util.rng.derive_rng`: job *i*'s size, priority, and fault
plans depend only on ``(seed, i)``, never on submission order.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.faults.campaign import CampaignSpec, sample_injector
from repro.service.core import SolveService
from repro.service.job import Job, JobResult, JobStatus, Priority
from repro.util.formatting import render_table
from repro.util.rng import derive_rng
from repro.util.validation import check_positive, require

#: spawn-key namespace for per-job fault sampling (the matrix uses 1)
FAULT_RNG_KEY = 0
#: spawn-key namespace for the open-loop arrival process
ARRIVAL_RNG_KEY = 2

_PRIORITY_MIX = (
    (Priority.INTERACTIVE, 0.2),
    (Priority.BATCH, 0.6),
    (Priority.BEST_EFFORT, 0.2),
)


@dataclass(frozen=True)
class LoadGenConfig:
    """One synthetic workload."""

    jobs: int = 20
    sizes: tuple[int, ...] = (64, 96, 128)
    block_size: int = 32
    scheme: str = "enhanced"
    numerics: str = "real"
    fault_prob: float = 0.0
    fault_kind: str = "storage"
    seed: int = 0
    #: open loop: mean arrivals per second (None = closed loop)
    rate: float | None = None
    #: closed loop: outstanding jobs (used when rate is None)
    concurrency: int = 4
    #: per-job runtime threads for ``scheme="dag"`` jobs (others ignore it)
    intra_workers: int = 1

    def __post_init__(self) -> None:
        check_positive("jobs", self.jobs)
        require(bool(self.sizes), "need at least one job size")
        require(0.0 <= self.fault_prob <= 1.0, "fault_prob must be in [0, 1]")
        require(self.fault_kind in ("storage", "computing"), f"bad kind {self.fault_kind!r}")
        if self.rate is not None:
            check_positive("rate", self.rate)
        check_positive("concurrency", self.concurrency)
        check_positive("intra_workers", self.intra_workers)


def make_job(cfg: LoadGenConfig, index: int) -> Job:
    """Job *index* of the workload — a pure function of ``(cfg.seed, index)``."""
    gen = derive_rng(cfg.seed, index, FAULT_RNG_KEY)
    n = int(cfg.sizes[int(gen.integers(0, len(cfg.sizes)))])
    pick = float(gen.random())
    priority = Priority.BATCH
    acc = 0.0
    for klass, weight in _PRIORITY_MIX:
        acc += weight
        if pick < acc:
            priority = klass
            break
    injector = None
    if float(gen.random()) < cfg.fault_prob:
        nb = max(1, -(-n // cfg.block_size))
        spec = CampaignSpec(nb=nb, kind=cfg.fault_kind)
        injector = sample_injector(spec, cfg.block_size, gen)
    return Job(
        job_id=index,
        n=n,
        scheme=cfg.scheme,
        priority=priority,
        block_size=cfg.block_size,
        numerics=cfg.numerics,
        seed=cfg.seed,
        injector=injector,
        intra_workers=cfg.intra_workers if cfg.scheme == "dag" else 1,
    )


def make_jobs(cfg: LoadGenConfig) -> list[Job]:
    return [make_job(cfg, i) for i in range(cfg.jobs)]


@dataclass
class LoadReport:
    """What a load run produced, ready to render or assert on."""

    wall_s: float
    submitted: int
    completed: int
    failed: int
    rejected: int
    corrected_errors: int
    restarts: int
    retries: int
    fallbacks: int
    p50_latency_s: float
    p90_latency_s: float
    p99_latency_s: float
    jobs_per_s: float
    gflops_served: float

    @classmethod
    def from_service(cls, service: SolveService, wall_s: float) -> "LoadReport":
        m = service.metrics
        latency = m["service_latency_seconds"]
        completed = int(m["service_jobs_completed_total"].value())
        return cls(
            wall_s=wall_s,
            submitted=int(m["service_jobs_submitted_total"].value()),
            completed=completed,
            failed=int(m["service_jobs_failed_total"].value()),
            rejected=int(m["service_jobs_rejected_total"].value()),
            corrected_errors=int(m["service_corrected_errors_total"].value()),
            restarts=int(m["service_restarts_total"].value()),
            retries=int(m["service_retries_total"].value()),
            fallbacks=int(m["service_fallbacks_total"].value()),
            p50_latency_s=latency.percentile(0.5),
            p90_latency_s=latency.percentile(0.9),
            p99_latency_s=latency.percentile(0.99),
            jobs_per_s=completed / wall_s if wall_s > 0 else 0.0,
            gflops_served=(
                m["service_useful_flops_total"].value() / wall_s / 1e9 if wall_s > 0 else 0.0
            ),
        )

    def render(self, title: str = "load report") -> str:
        rows = [
            ("wall seconds", f"{self.wall_s:.3f}"),
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("rejected", self.rejected),
            ("corrected errors", self.corrected_errors),
            ("restarts", self.restarts),
            ("retries", self.retries),
            ("fallbacks", self.fallbacks),
            ("latency p50/p90/p99 (s)", f"{self.p50_latency_s:.4f} / "
                                        f"{self.p90_latency_s:.4f} / {self.p99_latency_s:.4f}"),
            ("throughput (jobs/s)", f"{self.jobs_per_s:.2f}"),
            ("useful GFLOP/s served", f"{self.gflops_served:.3f}"),
        ]
        return render_table(["metric", "value"], rows, title=title)


async def run_open_loop(service: SolveService, cfg: LoadGenConfig) -> list[JobResult]:
    """Poisson arrivals at ``cfg.rate``; rejections are recorded, not retried."""
    require(cfg.rate is not None, "open loop needs a rate")
    gen = derive_rng(cfg.seed, ARRIVAL_RNG_KEY)
    for job in make_jobs(cfg):
        service.submit(job)
        await asyncio.sleep(float(gen.exponential(1.0 / cfg.rate)))
    await service.drain()
    return [service.results[i] for i in range(cfg.jobs) if i in service.results]


async def run_closed_loop(service: SolveService, cfg: LoadGenConfig) -> list[JobResult]:
    """Fixed outstanding window; rejected submissions honor retry-after."""
    jobs = make_jobs(cfg)
    next_index = 0
    outstanding = 0

    async def submit_next() -> None:
        nonlocal next_index, outstanding
        job = jobs[next_index]
        next_index += 1
        while True:
            decision = service.submit(job)
            if decision.accepted:
                outstanding += 1
                return
            await asyncio.sleep(decision.retry_after_s or 0.01)

    while next_index < len(jobs) and outstanding < cfg.concurrency:
        await submit_next()
    while outstanding:
        result = await service.completions.get()
        if result.status is not JobStatus.REJECTED:
            outstanding -= 1
        if next_index < len(jobs):
            await submit_next()
    return [service.results[i] for i in range(cfg.jobs) if i in service.results]


async def run_load(service: SolveService, cfg: LoadGenConfig) -> tuple[LoadReport, list[JobResult]]:
    """Drive *service* with *cfg* end to end and report."""
    # Spawn the execution backend before the clock starts so pool startup
    # cost is a fixed setup charge, not part of job 0's measured latency.
    await service.start_executor()
    try:
        service.start()
        t0 = time.monotonic()
        if cfg.rate is not None:
            results = await run_open_loop(service, cfg)
        else:
            results = await run_closed_loop(service, cfg)
    finally:
        await service.stop()
    report = LoadReport.from_service(service, time.monotonic() - t0)
    return report, results
