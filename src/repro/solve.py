"""Fault-tolerant SPD linear solvers — the paper's motivating use case.

"Cholesky decomposition has been widely used to solve linear equations
arising from linear least squares problems, non-linear optimization, Monte
Carlo simulations, and Kalman filters" (Section I).  This module wraps the
fault-tolerant factorization into the solver a downstream user actually
calls:

- :func:`ft_solve` — solve ``A x = b`` (single or multiple right-hand
  sides) by an ABFT-protected factorization plus triangular solves, with
  optional iterative refinement;
- :func:`ft_lstsq` — least squares via the normal equations
  ``AᵀA x = AᵀB`` under the same protection.

The factorization is the O(n³) part and runs under the chosen scheme on
the simulated machine; the O(n²) triangular solves run on the host and are
priced as TRSM work on the simulated clock.  Iterative refinement serves a
double purpose: it polishes rounding *and* acts as an end-to-end residual
check that would flag any corruption that slipped past ABFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.blas.flops import trsm_flops
from repro.core import AbftConfig, enhanced_potrf, offline_potrf, online_potrf
from repro.core.base import FtPotrfResult
from repro.faults.injector import FaultInjector
from repro.hetero.machine import Machine
from repro.util.validation import check_square, require

_SCHEMES = {
    "offline": offline_potrf,
    "online": online_potrf,
    "enhanced": enhanced_potrf,
}


@dataclass
class FtSolveResult:
    """Outcome of a fault-tolerant solve."""

    x: np.ndarray
    factorization: FtPotrfResult
    solve_seconds: float  # modelled time of the triangular solves
    refinement_steps: int
    residual: float  # ‖Ax − b‖ / (‖A‖‖x‖ + ‖b‖), from refinement

    @property
    def total_seconds(self) -> float:
        """Factorization (incl. restarts) + solve on the simulated clock."""
        return self.factorization.makespan + self.solve_seconds


def _triangular_solve_time(machine: Machine, n: int, nrhs: int) -> float:
    """Modelled seconds for the two panel TRSMs of a solve."""
    cost = machine.context(numerics="shadow").cost
    flops = 2 * trsm_flops(nrhs, n)  # forward + backward
    return flops / (cost.gpu_sustained_gflops("trsm") * 1e9)


def ft_solve(
    machine: Machine,
    a: np.ndarray,
    b: np.ndarray,
    scheme: str = "enhanced",
    block_size: int | None = None,
    config: AbftConfig | None = None,
    injector: FaultInjector | None = None,
    refine_steps: int = 1,
) -> FtSolveResult:
    """Solve the SPD system ``A x = b`` under ABFT protection.

    *a* is not modified (the factorization works on a copy).  *b* may be a
    vector or an (n, k) block of right-hand sides.  ``refine_steps`` rounds
    of iterative refinement use the original A, so the reported residual is
    a ground-truth end-to-end check.
    """
    n = check_square("a", a)
    rhs = np.atleast_2d(b.T).T  # (n,) -> (n, 1) without copying (n, k)
    require(rhs.shape[0] == n, f"b has {rhs.shape[0]} rows, A is {n}x{n}")
    require(scheme in _SCHEMES, f"unknown scheme {scheme!r}; have {sorted(_SCHEMES)}")
    require(refine_steps >= 0, "refine_steps must be >= 0")

    work = a.copy()
    fact = _SCHEMES[scheme](
        machine,
        a=work,
        block_size=block_size,
        config=config,
        injector=injector,
    )
    ell = fact.factor

    # L y = b ; L^T x = y  (solve all RHS at once)
    y = scipy.linalg.solve_triangular(ell, rhs, lower=True)
    x = scipy.linalg.solve_triangular(ell.T, y, lower=False)

    steps = 0
    a_norm = np.linalg.norm(a, ord=1)
    for _ in range(refine_steps):
        r = rhs - a @ x
        dy = scipy.linalg.solve_triangular(ell, r, lower=True)
        dx = scipy.linalg.solve_triangular(ell.T, dy, lower=False)
        x = x + dx
        steps += 1

    r = rhs - a @ x
    denom = a_norm * np.linalg.norm(x, ord=1) + np.linalg.norm(rhs, ord=1)
    residual = float(np.linalg.norm(r, ord=1) / denom) if denom else 0.0

    solve_time = (1 + steps) * _triangular_solve_time(machine, n, rhs.shape[1])
    x_out = x[:, 0] if b.ndim == 1 else x
    return FtSolveResult(
        x=x_out,
        factorization=fact,
        solve_seconds=solve_time,
        refinement_steps=steps,
        residual=residual,
    )


def ft_lstsq(
    machine: Machine,
    a: np.ndarray,
    b: np.ndarray,
    scheme: str = "enhanced",
    block_size: int | None = None,
    ridge: float = 0.0,
    **kwargs,
) -> FtSolveResult:
    """Least squares ``min ‖A x − b‖₂`` via protected normal equations.

    Forms ``G = AᵀA (+ ridge·I)`` and ``AᵀB`` and calls :func:`ft_solve`.
    The normal-equations route squares the condition number — acceptable
    here because iterative refinement (on G) polishes the result, and the
    point is protecting the O(n³) factorization.
    """
    require(a.ndim == 2, "a must be a matrix")
    require(a.shape[0] >= a.shape[1], "need at least as many rows as columns")
    gram = a.T @ a
    if ridge:
        gram[np.diag_indices_from(gram)] += ridge
    gram = (gram + gram.T) / 2.0
    rhs = a.T @ b
    return ft_solve(machine, gram, rhs, scheme=scheme, block_size=block_size, **kwargs)
