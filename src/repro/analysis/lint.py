"""``ast``-based lint pass enforcing repo invariants (rules RPL001–RPL009).

The rules guard properties the test suite cannot see directly:

- **RPL001** — no bare ``np.random.*`` *calls* outside ``util/rng.py``.
  Reproducibility: all randomness must flow through
  :func:`repro.util.rng.resolve_rng` so every experiment is seedable.
  (Type annotations naming ``np.random.Generator`` are fine — only calls
  are flagged.)
- **RPL002** — no silent dtype narrowing in ``core/``, ``magma/``,
  ``blas/``: ``.astype(np.float32)``-style conversions or
  ``dtype=float32/float16`` keywords.  The two-checksum code's detection
  thresholds are calibrated for float64 round-off; narrowing a tile or
  checksum silently turns round-off into "faults".
- **RPL003** — exceptions must come from :mod:`repro.util.exceptions`:
  raising builtin exception classes (``ValueError``, ``RuntimeError``, ...)
  bypasses the :class:`~repro.util.exceptions.ReproError` hierarchy callers
  catch.  ``SystemExit`` (CLI argument errors) and ``NotImplementedError``
  (abstract methods) are conventional and allowed.
- **RPL004** — every task launch in ``magma/ops.py`` with a ``fn=``
  numerics callback mutates device tiles in place, so it must declare
  ``tile_writes=`` (the event the checksum-update pairing and the protocol
  analyzer key on) — an undeclared mutation is invisible to
  :mod:`repro.analysis.protocol`.
- **RPL005** — every ``async def`` handler in :mod:`repro.service` (a
  coroutine named ``handle*`` or ``*_handler``) must enforce a timeout via
  ``asyncio.wait_for`` / ``asyncio.timeout`` / ``asyncio.timeout_at``.
  The service wraps blocking factorizations in worker threads; a handler
  awaiting one without a deadline can wedge a pool slot forever, which no
  test observes until the loadgen hangs.
- **RPL006** — no per-tile Python loops on the verification hot path:
  inside the designated hot modules (``core/correct.py``,
  ``core/checksum.py``, ``core/update.py``, ``core/batchverify.py``), a
  ``for``/``while`` loop body must not call the per-tile accessors
  ``tile_view`` / ``strip`` / ``block``.  The batched engine
  (:mod:`repro.core.batchverify`) exists so these paths issue stacked
  operations over run views; a new per-tile loop silently reintroduces
  the swarm of small kernels Optimization 1 removed.  Cold paths
  (diagnostics, host reference implementations) opt out with
  ``# noqa: RPL006`` on the loop line.
- **RPL007** — no ndarray passed positionally into a cross-process submit
  call (``put`` / ``put_nowait`` / ``submit`` / ``apply_async`` / ``send``)
  inside ``exec/`` and ``service/``.  The process backend's zero-copy
  contract says matrices cross the worker boundary as
  :class:`~repro.hetero.memory.ShmDescriptor` records over shared memory;
  a pickled ndarray in a queue payload silently reintroduces the copy
  (and the multi-MB IPC) the transport exists to avoid.  The check is a
  conservative heuristic: it flags direct ``np.*`` / known-producer calls
  (``job_matrix``, ``random_spd``, ``.copy()``), names assigned from
  them, and parameters annotated ``np.ndarray``.

- **RPL008** — no swallowed cancellation or silenced broad excepts in the
  concurrency layers (``exec/``, ``service/``, ``resilience/``).  Two
  shapes are flagged: (a) an ``except`` naming ``asyncio.CancelledError``
  whose body never re-raises — cancellation is control flow, and eating
  it detaches a task from ``stop()``/``abort()`` and deadlocks drains;
  (b) an ``except Exception`` / ``except BaseException`` / bare ``except``
  whose body does nothing but ``pass``/``continue`` — a silently dropped
  infrastructure failure is exactly the signal the circuit breaker and
  the retry ladder need to see.  Genuinely-intentional sinks opt out with
  ``# noqa: RPL008`` on the ``except`` line.
- **RPL009** — runtime task kernels must declare their tile footprints.
  In :mod:`repro.runtime` the scheduler derives every dependency edge
  from the ``reads=`` / ``writes=`` cell sets declared at ``graph.add``
  time, so (a) any call carrying an ``fn=`` task body must also carry
  both ``reads=`` and ``writes=``, and (b) raw tile/strip accessors
  (``tile`` / ``strip`` / ``tile_view`` / ``block`` / ``strip_panel`` /
  ``block_row``) may be called only inside a task body — a ``_body*``
  function, a function handed to some ``fn=``, or an accessor method
  delegating to another accessor.  An undeclared access races every
  schedule the DAG permits and no single test run will catch it.

The flow tier (RPL101–RPL103, :mod:`repro.analysis.flow`) registers here
too so ``--select``, noqa accounting and the generated docs table see one
registry; its checkers are whole-program and run through
:func:`run_lint` with ``tiers=("flow",)`` rather than per-file.

Suppression: ``# noqa`` on a line suppresses every rule there;
``# noqa: RPL001,RPL003`` suppresses just those.  A *comment-only* line
``# noqa: RPL007`` applies file-wide (coded directives only — a bare
file-level ``# noqa`` would silence everything and is ignored).  Explicit
codes belonging to rules that ran but suppressed nothing are themselves
reported (rule ``noqa-unused``) so suppressions cannot rot silently.
Rules live in a registry keyed by id — register new ones with
:func:`rule`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.report import Finding
from repro.util.exceptions import ValidationError

_NARROW_DTYPES = {"float32", "float16", "half", "single"}
_BUILTIN_EXCEPTIONS = {
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "Exception",
    "IndexError",
    "KeyError",
    "LookupError",
    "MemoryError",
    "OSError",
    "OverflowError",
    "RuntimeError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintTarget:
    """One parsed file, as handed to every rule."""

    path: Path
    tree: ast.AST
    lines: list[str]

    @property
    def posix(self) -> str:
        return self.path.as_posix()


Checker = Callable[[LintTarget], list[tuple[int, str]]]

TIERS = ("classic", "flow")


@dataclass(frozen=True)
class Rule:
    id: str
    description: str
    check: Checker | None  # None for flow-tier rules (whole-program checkers)
    tier: str = "classic"
    scope: str = "repo-wide"
    noqa: str = "line-level"


RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    description: str,
    *,
    tier: str = "classic",
    scope: str = "repo-wide",
    noqa: str = "line-level",
) -> Callable[[Checker], Checker]:
    """Register a lint rule under *rule_id* (pluggable registry)."""

    def register(check: Checker) -> Checker:
        RULES[rule_id] = Rule(rule_id, description, check, tier=tier, scope=scope, noqa=noqa)
        return check

    return register


def rules_table() -> str:
    """The markdown rule table embedded in ``docs/static_analysis.md``.

    Generated so the docs cannot drift from the registry — a doc-sync
    test regenerates this and diffs it against the committed file.
    """
    header = "| id | tier | scope | noqa policy | description |"
    sep = "| --- | --- | --- | --- | --- |"
    rows = [header, sep]
    for rid in sorted(RULES):
        r = RULES[rid]
        rows.append(f"| {r.id} | {r.tier} | {r.scope} | {r.noqa} | {r.description} |")
    return "\n".join(rows)


# AST helpers ------------------------------------------------------------------


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def _names_narrow_dtype(node: ast.expr) -> bool:
    chain = _attr_chain(node)
    if chain and chain[0] in ("np", "numpy") and chain[-1] in _NARROW_DTYPES:
        return True
    return isinstance(node, ast.Constant) and node.value in _NARROW_DTYPES


# Rules ------------------------------------------------------------------------


@rule(
    "RPL001",
    "no bare np.random.* calls outside util/rng.py",
    scope="repo-wide (except util/rng.py)",
    noqa="line-level",
)
def _check_bare_random(target: LintTarget) -> list[tuple[int, str]]:
    if target.posix.endswith("util/rng.py"):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            out.append(
                (
                    node.lineno,
                    f"bare {'.'.join(chain)}() call; route randomness through "
                    "repro.util.rng.resolve_rng",
                )
            )
    return out


@rule(
    "RPL002",
    "no silent dtype narrowing in core//magma//blas/",
    scope="core/, magma/, blas/",
    noqa="line-level",
)
def _check_dtype_narrowing(target: LintTarget) -> list[tuple[int, str]]:
    if not any(part in ("core", "magma", "blas") for part in target.path.parts):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and any(_names_narrow_dtype(arg) for arg in node.args)
        ):
            out.append((node.lineno, "astype() to a narrower float dtype"))
        for kw in node.keywords:
            if kw.arg == "dtype" and kw.value is not None and _names_narrow_dtype(kw.value):
                out.append((node.lineno, "dtype= keyword narrows to sub-f64 precision"))
    return out


@rule(
    "RPL003",
    "raise only exceptions from util/exceptions.py",
    scope="repo-wide (except util/exceptions.py)",
    noqa="line-level",
)
def _check_exception_origin(target: LintTarget) -> list[tuple[int, str]]:
    if target.posix.endswith("util/exceptions.py"):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            out.append(
                (
                    node.lineno,
                    f"raise of builtin {name}; use the repro.util.exceptions "
                    "hierarchy (e.g. ValidationError)",
                )
            )
    return out


@rule(
    "RPL004",
    "launches in magma/ops.py must declare their tile writes",
    scope="magma/ops.py",
    noqa="line-level",
)
def _check_declared_mutation(target: LintTarget) -> list[tuple[int, str]]:
    if not target.posix.endswith("magma/ops.py"):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain or not chain[-1].startswith("launch_"):
            continue
        kwargs = {kw.arg for kw in node.keywords if kw.arg}
        if "fn" in kwargs and "tile_writes" not in kwargs:
            out.append(
                (
                    node.lineno,
                    "in-place numerics launch without tile_writes=; the "
                    "checksum-update pairing cannot be verified",
                )
            )
    return out


_TIMEOUT_CALLS = {"wait_for", "timeout", "timeout_at"}


def _is_handler_name(name: str) -> bool:
    return name.startswith("handle") or name.endswith("_handler")


def _enforces_timeout(fn: ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) >= 2 and chain[0] == "asyncio" and chain[-1] in _TIMEOUT_CALLS:
            return True
    return False


@rule(
    "RPL005",
    "service/resilience async handlers must enforce a timeout",
    scope="service/, resilience/",
    noqa="line-level (on the async def line)",
)
def _check_handler_timeout(target: LintTarget) -> list[tuple[int, str]]:
    if not any(part in ("service", "resilience") for part in target.path.parts):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.AsyncFunctionDef) or not _is_handler_name(node.name):
            continue
        if not _enforces_timeout(node):
            out.append(
                (
                    node.lineno,
                    f"async handler {node.name}() awaits without a timeout; wrap the "
                    "await in asyncio.wait_for / asyncio.timeout",
                )
            )
    return out


#: Modules whose real-mode numerics are required to stay batched.
_HOT_MODULES = (
    "core/correct.py",
    "core/checksum.py",
    "core/update.py",
    "core/batchverify.py",
)

#: Per-tile accessors whose presence in a loop body marks a per-tile loop.
#: The fused run accessors (``strip_row``, ``strip_panel``, ``block_row``,
#: ``run_view`` …) are exactly what the rule pushes code toward.
_PER_TILE_ACCESSORS = {"tile_view", "strip", "block"}


@rule(
    "RPL006",
    "no per-tile accessor loops in the verification hot modules",
    scope="core/ hot modules",
    noqa="line-level (cold paths opt out on the loop line)",
)
def _check_per_tile_loops(target: LintTarget) -> list[tuple[int, str]]:
    if not any(target.posix.endswith(mod) for mod in _HOT_MODULES):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for inner in ast.walk(node):
            if inner is node or not isinstance(inner, ast.Call):
                continue
            if (
                isinstance(inner.func, ast.Attribute)
                and inner.func.attr in _PER_TILE_ACCESSORS
            ):
                out.append(
                    (
                        node.lineno,
                        f"per-tile {inner.func.attr}() loop on the hot path; "
                        "stack the batch through a run view / "
                        "BatchVerifyEngine instead (or # noqa: RPL006 a "
                        "cold path)",
                    )
                )
                break
    return out


#: Queue/pool methods that move a payload toward another process.
_SUBMIT_CALLS = {"put", "put_nowait", "submit", "apply_async", "send", "send_bytes"}

#: Call roots/names that produce ndarrays (the transport must never carry).
_ARRAY_PRODUCERS = {"job_matrix", "random_spd", "empty_like", "zeros_like", "ones_like"}


def _looks_like_array(node: ast.expr, arrayish: set[str]) -> bool:
    """Conservatively: does this expression evaluate to an ndarray?"""
    if isinstance(node, ast.Name):
        return node.id in arrayish
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain and chain[0] in ("np", "numpy"):
            return True
        if chain and chain[-1] in _ARRAY_PRODUCERS:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "copy":
            return True
    return False


def _is_ndarray_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return "ndarray" in text


@rule(
    "RPL007",
    "no ndarray positionally into cross-process submit calls",
    scope="exec/, service/",
    noqa="line-level",
)
def _check_ndarray_transport(target: LintTarget) -> list[tuple[int, str]]:
    if not any(part in ("exec", "service") for part in target.path.parts):
        return []
    out = []
    for scope in ast.walk(target.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arrayish: set[str] = set()
        all_args = scope.args.posonlyargs + scope.args.args + scope.args.kwonlyargs
        for arg in all_args:
            if _is_ndarray_annotation(arg.annotation):
                arrayish.add(arg.arg)
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                if _looks_like_array(node.value, arrayish):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            arrayish.add(tgt.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_ndarray_annotation(node.annotation) or (
                    node.value is not None and _looks_like_array(node.value, arrayish)
                ):
                    arrayish.add(node.target.id)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _SUBMIT_CALLS:
                continue
            for arg in node.args:
                candidates = arg.elts if isinstance(arg, (ast.Tuple, ast.List)) else [arg]
                for el in candidates:
                    if _looks_like_array(el, arrayish):
                        out.append(
                            (
                                node.lineno,
                                f"ndarray passed positionally into .{node.func.attr}(); "
                                "cross-process payloads must carry a ShmDescriptor "
                                "(repro.hetero.memory), never a pickled matrix",
                            )
                        )
    return out


#: Catch-alls whose silent bodies hide the failures resilience reacts to.
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    """Dotted names this handler catches (last segment each), "" for bare."""
    if handler.type is None:
        return [""]
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in nodes:
        chain = _attr_chain(node)
        names.append(chain[-1] if chain else "?")
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the body only passes/continues (or evaluates a constant)."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


@rule(
    "RPL008",
    "no swallowed CancelledError / silenced broad excepts in exec//service//resilience/",
    scope="exec/, service/, resilience/",
    noqa="line-level (on the except line)",
)
def _check_swallowed_failures(target: LintTarget) -> list[tuple[int, str]]:
    if not any(part in ("exec", "service", "resilience") for part in target.path.parts):
        return []
    out = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _handler_names(node)
        if "CancelledError" in names and not _reraises(node):
            out.append(
                (
                    node.lineno,
                    "except CancelledError without re-raise; cancellation is "
                    "control flow — handle-and-raise, or let it propagate",
                )
            )
        elif (set(names) & _BROAD_EXCEPTIONS or "" in names) and _body_is_silent(node):
            caught = " | ".join(n or "<bare>" for n in names)
            out.append(
                (
                    node.lineno,
                    f"except {caught} with a silent body; a dropped failure "
                    "never reaches the retry ladder or circuit breaker "
                    "(# noqa: RPL008 for an intentional sink)",
                )
            )
    return out


#: Raw tile/strip accessors the runtime may only touch from a task body.
_RUNTIME_ACCESSORS = {"tile", "strip", "tile_view", "block", "strip_panel", "block_row"}


def _fn_kwarg_names(tree: ast.AST) -> set[str]:
    """Function names handed to some ``fn=`` kwarg (directly or as the
    factory being called: ``fn=_potf2_body(...)`` marks ``_potf2_body``)."""
    refs: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg != "fn":
                continue
            value = kw.value
            if isinstance(value, ast.Call):
                value = value.func
            chain = _attr_chain(value)
            if chain:
                refs.add(chain[-1])
    return refs


@rule(
    "RPL009",
    "runtime task kernels must declare their tile reads/writes",
    scope="runtime/",
    noqa="line-level",
)
def _check_runtime_footprints(target: LintTarget) -> list[tuple[int, str]]:
    if "runtime" not in target.path.parts:
        return []
    out: list[tuple[int, str]] = []
    for node in ast.walk(target.tree):
        if not isinstance(node, ast.Call):
            continue
        kwargs = {kw.arg for kw in node.keywords if kw.arg}
        if "fn" in kwargs and not {"reads", "writes"} <= kwargs:
            out.append(
                (
                    node.lineno,
                    "task launch with fn= but without reads=/writes=; the DAG "
                    "derives every dependency edge from the declared footprint",
                )
            )
    fn_refs = _fn_kwarg_names(target.tree)

    def _is_task_body(owner: str | None) -> bool:
        return owner is not None and (
            owner.startswith("_body") or owner in fn_refs or owner in _RUNTIME_ACCESSORS
        )

    def _visit(node: ast.AST, owner: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _visit(child, child.name)
                continue
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _RUNTIME_ACCESSORS
                and not _is_task_body(owner)
            ):
                out.append(
                    (
                        child.lineno,
                        f"raw {child.func.attr}() access outside a task body; "
                        "runtime kernels touch tiles only from fn= bodies whose "
                        "reads=/writes= the graph has seen",
                    )
                )
            _visit(child, owner)

    _visit(target.tree, None)
    return sorted(out)


# Flow-tier registrations ------------------------------------------------------
# Whole-program rules (check=None): dispatched by run_lint, not per-file.

rule(
    "RPL101",
    "resources acquired in the concurrency layers must be released on all "
    "paths, including exception edges (leak-on-raise, double-release)",
    tier="flow",
    scope="exec/, service/, resilience/",
    noqa="line-level at the acquire site (comment the ownership transfer)",
)(None)
rule(
    "RPL102",
    "no blocking sinks (time.sleep, sync file I/O, queue.get, np.linalg) "
    "reachable from async def without to_thread / run_in_executor",
    tier="flow",
    scope="repo-wide (roots: every async def)",
    noqa="line-level at the first call edge in the async root, or at the sink",
)(None)
rule(
    "RPL103",
    "attributes written from both event-loop and worker-thread call paths "
    "must be guarded by one consistent lock",
    tier="flow",
    scope="exec/, service/, resilience/ classes",
    noqa="line-level at the flagged write site",
)(None)


# Driver -----------------------------------------------------------------------


def _suppressed(line: str, rule_id: str) -> bool:
    match = _NOQA_RE.search(line)
    if not match:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare "# noqa" silences everything
    return rule_id in {c.strip().upper() for c in codes.split(",")}


@dataclass
class _NoqaDirective:
    """One real ``# noqa`` comment (found by tokenizing, so noqa text in
    strings and docstrings never counts)."""

    line: int
    codes: frozenset[str] | None  # None = bare "# noqa"
    file_level: bool  # comment-only line with explicit codes
    used: bool = False


def _scan_noqa(source: str) -> list[_NoqaDirective]:
    import io
    import tokenize

    directives: list[_NoqaDirective] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return directives
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(tok.string)
        if not match:
            continue
        codes_text = match.group("codes")
        codes = (
            None
            if codes_text is None
            else frozenset(c.strip().upper() for c in codes_text.split(",") if c.strip())
        )
        comment_only = tok.line.strip() == tok.string.strip()
        directives.append(
            _NoqaDirective(
                line=tok.start[0],
                codes=codes,
                file_level=comment_only and codes is not None,
            )
        )
    return directives


class _Suppressions:
    """Per-file noqa directives with usage accounting."""

    def __init__(self) -> None:
        self._by_file: dict[str, list[_NoqaDirective]] = {}

    def add_file(self, path: str, source: str) -> None:
        self._by_file[path] = _scan_noqa(source)

    def known_file(self, path: str) -> bool:
        return path in self._by_file

    def suppresses(self, path: str, line: int, rule_id: str) -> bool:
        """True if a directive covers (path, line, rule); marks it used."""
        hit = False
        for d in self._by_file.get(path, []):
            if d.file_level:
                if d.codes is not None and rule_id in d.codes:
                    d.used = True
                    hit = True
            elif d.line == line:
                if d.codes is None or rule_id in d.codes:
                    d.used = True
                    hit = True
        return hit

    def unused_findings(self, ran_rule_ids: set[str]) -> list[Finding]:
        """``noqa-unused`` findings for explicit codes of rules that ran
        but suppressed nothing.  Bare ``# noqa`` and codes of rules that
        did not run this invocation (e.g. flow codes during a
        classic-only run) are never reported."""
        out: list[Finding] = []
        for path in sorted(self._by_file):
            for d in self._by_file[path]:
                if d.used or d.codes is None:
                    continue
                stale = sorted(d.codes & ran_rule_ids)
                if not stale:
                    continue
                out.append(
                    Finding(
                        rule="noqa-unused",
                        severity="error",
                        message=(
                            f"# noqa: {', '.join(stale)} suppresses nothing; "
                            "remove the stale directive"
                        ),
                        where=f"{path}:{d.line}",
                        detail={"file": path, "line": d.line, "codes": stale},
                    )
                )
        return out


def _iter_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def _select_rules(select: Iterable[str] | None, tiers: tuple[str, ...]) -> list[Rule]:
    if select:
        unknown = [r for r in select if r not in RULES]
        if unknown:
            raise ValidationError(
                f"unknown lint rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULES))}"
            )
        # An explicit selection overrides the tier filter: asking for
        # RPL102 by id means "run it", --flow or not.
        return [RULES[r] for r in select]
    return [r for r in RULES.values() if r.tier in tiers]


def run_lint(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    tiers: tuple[str, ...] = ("classic",),
    cache_dir: Path | None = None,
    report_unused_noqa: bool = True,
) -> list[Finding]:
    """Run the registered rules over *paths* (files or directories).

    *tiers* picks which rule tiers execute: ``("classic",)`` is the
    per-file AST pass, ``("flow",)`` the whole-program dataflow pass
    (``--flow`` adds it in the CLI).  *select* further restricts to the
    given rule ids.  *cache_dir* persists the flow tier's call-graph
    build keyed on a source digest.  Files that fail to parse are
    reported as ``parse-error`` findings rather than raising.

    Suppression accounting runs last: any explicit noqa code belonging to
    a rule that executed but suppressed nothing becomes a ``noqa-unused``
    error (disable with *report_unused_noqa* for partial runs).
    """
    active = _select_rules(select, tiers)
    suppressions = _Suppressions()
    findings: list[Finding] = []

    parsed: list[tuple[str, ast.Module]] = []
    sources: list[tuple[str, str]] = []
    targets: list[LintTarget] = []
    for path in _iter_files(paths):
        source = path.read_text()
        key = str(path)
        suppressions.add_file(key, source)
        sources.append((key, source))
        try:
            tree = ast.parse(source, filename=key)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    severity="error",
                    message=str(exc),
                    where=f"{path}:{exc.lineno or 0}",
                )
            )
            continue
        parsed.append((key, tree))
        targets.append(LintTarget(path=path, tree=tree, lines=source.splitlines()))

    # Classic tier: per-file checkers.
    for target in targets:
        for rl in active:
            if rl.check is None:
                continue
            for lineno, message in rl.check(target):
                if suppressions.suppresses(str(target.path), lineno, rl.id):
                    continue
                findings.append(
                    Finding(
                        rule=rl.id,
                        severity="error",
                        message=message,
                        where=f"{target.path}:{lineno}",
                        detail={"line": lineno, "file": str(target.path)},
                    )
                )

    # Flow tier: whole-program checkers over everything parsed.
    active_ids = {r.id for r in active}
    if any(r.tier == "flow" for r in active):
        from repro.analysis.flow.blocking import check_blocking
        from repro.analysis.flow.callgraph import build_call_graph
        from repro.analysis.flow.lifecycle import check_lifecycle
        from repro.analysis.flow.locks import check_locks

        raw: list[Finding] = []
        if "RPL101" in active_ids:
            raw.extend(check_lifecycle(parsed))
        if "RPL102" in active_ids or "RPL103" in active_ids:
            graph = build_call_graph(sources, cache_dir=cache_dir)
            if "RPL102" in active_ids:
                raw.extend(check_blocking(graph))
            if "RPL103" in active_ids:
                raw.extend(check_locks(graph))
        for f in raw:
            anchors = [(f.detail.get("file", ""), f.detail.get("line", 0))]
            for extra in f.detail.get("also_suppress", []):
                epath, _, eline = extra.rpartition(":")
                if eline.isdigit():
                    anchors.append((epath, int(eline)))
            if any(suppressions.suppresses(p, ln, f.rule) for p, ln in anchors):
                continue
            findings.append(f)

    if report_unused_noqa:
        findings.extend(suppressions.unused_findings(active_ids))
    return findings


def lint_paths(
    paths: Iterable[str | Path], select: Iterable[str] | None = None
) -> list[Finding]:
    """Classic-tier lint over *paths* (the historical entry point)."""
    return run_lint(paths, select=select, tiers=("classic",))
