"""RPL102 — blocking calls reachable from ``async def`` without a handoff.

Roots are every ``async def`` in the analyzed file set.  From each root
the checker follows only *synchronous* call edges — an ``await`` into an
async callee hands off to that coroutine, which is its own root; a call
routed through ``asyncio.to_thread`` / ``run_in_executor`` leaves the
event loop and sanitizes everything below it.  If the walk reaches a
known blocking sink (``time.sleep``, ``os.fsync``, sync file I/O, a
non-awaited blocking ``queue.get``, an ``np.linalg`` factorization), the
event loop would stall for the sink's duration.

Findings anchor at the *first call edge inside the async root* — that is
the line a reader can fix (wrap in ``to_thread``) — with the sink's own
site recorded as an alternate suppression anchor: a ``# noqa: RPL102`` on
either line silences the path, so a deliberately-blocking primitive
(``InlineExecutor.execute``, the journal's batched ``fsync``) is
suppressed once at its source instead of at every async caller.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.flow.callgraph import CallGraph, CallSite, FunctionInfo, Sink
from repro.analysis.report import Finding

__all__ = ["check_blocking"]

RULE_ID = "RPL102"


def _sink_findings_for_root(root: FunctionInfo, graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, int]] = set()  # (sink path, sink line)

    def report(sink: Sink, holder: FunctionInfo, first_edge: CallSite | None) -> None:
        key = (holder.path, sink.line)
        if key in reported:
            return
        reported.add(key)
        if first_edge is None:
            where = f"{root.path}:{sink.line}"
            via = "directly"
            also: list[str] = []
        else:
            where = f"{root.path}:{first_edge.line}"
            via = f"via sync call '{first_edge.callee}()' ({holder.path}:{sink.line})"
            also = [f"{holder.path}:{sink.line}"]
        findings.append(
            Finding(
                rule=RULE_ID,
                severity="error",
                message=(
                    f"async '{root.name}' reaches blocking {sink.kind} "
                    f"'{sink.label}' {via}; hand it off with asyncio.to_thread / "
                    "run_in_executor"
                ),
                where=where,
                detail={
                    "file": root.path,
                    "line": sink.line if first_edge is None else first_edge.line,
                    "sink": f"{holder.path}:{sink.line}",
                    "also_suppress": also,
                },
            )
        )

    # Sinks in the root's own body (awaited queue.get is already excluded
    # at extraction time).
    for sink in root.sinks:
        report(sink, root, None)

    # BFS over sync, unsanitized edges; each path remembers the edge in
    # the root that started it (the fix/suppression anchor).
    seen: set[str] = {root.qualname}
    work: deque[tuple[FunctionInfo, CallSite]] = deque()
    for call in root.calls:
        if call.awaited or call.sanitized:
            continue
        for callee in graph.resolve_call(call, root):
            if callee.is_async or callee.qualname in seen:
                continue
            seen.add(callee.qualname)
            work.append((callee, call))
    while work:
        fn, first_edge = work.popleft()
        for sink in fn.sinks:
            report(sink, fn, first_edge)
        for call in fn.calls:
            if call.awaited or call.sanitized:
                continue
            for callee in graph.resolve_call(call, fn):
                if callee.is_async or callee.qualname in seen:
                    continue
                seen.add(callee.qualname)
                work.append((callee, first_edge))
    return findings


def check_blocking(graph: CallGraph) -> list[Finding]:
    """RPL102 over a built call graph."""
    findings: list[Finding] = []
    for fn in graph.functions:
        if fn.is_async:
            findings.extend(_sink_findings_for_root(fn, graph))
    return findings
