"""Flow-sensitive whole-program analysis (the lint ``--flow`` tier).

The classic rules (RPL001–RPL008) are per-statement AST pattern matches;
they cannot see a resource leaked only when an exception unwinds, a
blocking call reached *transitively* from a coroutine, or an attribute
mutated from two threads under different locks.  This subpackage adds the
three missing ingredients and the checkers built on them:

- :mod:`repro.analysis.flow.cfg` — per-function control-flow graphs from
  ``ast``, with explicit exception edges modelling ``try``/``except``/
  ``finally`` and the fact that nearly every statement can raise;
- :mod:`repro.analysis.flow.dataflow` — a small forward dataflow engine
  (gen/kill facts over CFG nodes, worklist to fixpoint) whose transfer
  functions apply a statement's effect only on its *normal* out-edge — on
  the exception edge the acquisition never happened;
- :mod:`repro.analysis.flow.callgraph` — a module-level call graph over a
  file set: function definitions, name-resolved call edges, blocking-sink
  sites, thread-entry references (``asyncio.to_thread`` / ``Thread(target=``
  / ``Process(target=`` / pool ``submit``), and per-call-site lock context.
  Builds are cacheable keyed on a source digest (the CI gate caches them).

Checkers (registered in the lint registry under the ``flow`` tier):

- **RPL101** (:mod:`.lifecycle`) — resource lifecycle over the CFG:
  every lock/semaphore ``acquire()``, shared-memory handle, journal file
  handle, and started service in ``exec//service//resilience/`` must be
  released on *all* paths including exception edges; double releases are
  flagged too.
- **RPL102** (:mod:`.blocking`) — call-graph reachability from ``async
  def`` bodies to known blocking sinks (``time.sleep``, sync file I/O,
  blocking queue ``get``, ``np.linalg`` factorizations, ``os.fsync``)
  without an intervening ``asyncio.to_thread`` / ``run_in_executor``.
- **RPL103** (:mod:`.locks`) — lock-discipline race heuristic: attributes
  of shared executor/service objects written from both event-loop and
  worker-thread call paths must be guarded by one consistent lock.
"""

from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.dataflow import solve_forward

__all__ = ["CFG", "CallGraph", "build_call_graph", "build_cfg", "solve_forward"]
