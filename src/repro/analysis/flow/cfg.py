"""Statement-level control-flow graphs with exception edges.

One :class:`CFG` per function (or module body).  Nodes are individual
``ast.stmt`` objects plus two synthetic terminals:

- ``EXIT`` — normal completion (fall off the end, ``return``);
- ``REXIT`` — exceptional completion (an uncaught exception unwinds out
  of the function).

Each node carries two successor sets:

- ``succ`` — normal-flow successors (the statement completed);
- ``esucc`` — exception successors (the statement raised).  Every
  statement is conservatively assumed to *may* raise: attribute access,
  arithmetic, calls — nearly anything can throw in Python, and for
  leak-on-raise analysis the cost of a spurious exception edge is far
  lower than a missed one.

``try`` modeling (the part pattern-matchers can't do):

- Statements in a ``try`` body get exception edges to every handler
  entry.  An edge to the *outer* exception target is added only when no
  handler catches broadly (bare ``except`` / ``Exception`` /
  ``BaseException``) — otherwise a handler that releases-and-reraises
  would be reported as a leak even though it always runs.
- A ``finally`` block is built once; its exit edges go to the
  after-``try`` node, the outer exception target, and — when the
  protected region contains ``return``/``break``/``continue`` — the
  corresponding abrupt-completion targets.  That merges the
  continuations (a may-analysis over-approximation): facts live at the
  ``finally`` exit flow to all of them, which is exactly what makes
  "released only on the happy path" visible.
- ``return`` inside a ``try``/``finally`` routes through the innermost
  enclosing ``finally`` (not straight to ``EXIT``), so a release in the
  ``finally`` is correctly seen on the return path.
- ``with`` blocks do **not** model ``__exit__`` as a release; checkers
  that care (RPL101) treat ``with`` items as self-managing and never
  track them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.util.exceptions import ValidationError

__all__ = ["CFG", "CFGNode", "build_cfg"]

# Exception types a handler for which means "this handler sees every
# unwind" — the try body then needs no exception edge past the handlers.
_BROAD_HANDLERS = {"Exception", "BaseException"}


@dataclass
class CFGNode:
    """One statement (or synthetic terminal) in a function's CFG."""

    index: int
    stmt: ast.stmt | None  # None for EXIT / REXIT / FIN / EXC
    label: str = ""
    succ: set[int] = field(default_factory=set)
    esucc: set[int] = field(default_factory=set)

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0


@dataclass
class CFG:
    """Control-flow graph for one function body."""

    name: str
    nodes: list[CFGNode]
    entry: int
    exit: int
    rexit: int

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def statement_nodes(self) -> list[CFGNode]:
        return [n for n in self.nodes if n.stmt is not None]

    def preds(self) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
        """(normal-predecessors, exception-predecessors) maps."""
        npred: dict[int, set[int]] = {n.index: set() for n in self.nodes}
        epred: dict[int, set[int]] = {n.index: set() for n in self.nodes}
        for n in self.nodes:
            for s in n.succ:
                npred[s].add(n.index)
            for s in n.esucc:
                epred[s].add(n.index)
        return npred, epred


def _region_has(stmts: list[ast.stmt], kinds: tuple[type, ...]) -> bool:
    return any(isinstance(n, kinds) for s in stmts for n in ast.walk(s))


# Loop context: (header index, after index, finally-stack depth at entry).
_Loop = tuple[int, int, int]


class _Builder:
    """Recursive-descent CFG construction.

    Each ``_build_*`` method wires a statement sequence between an entry
    point and its continuation targets, threading context: the normal
    continuation, the exception target (where a raise inside the region
    lands), the loop header/after pair for ``break``/``continue``, and a
    stack of enclosing ``finally`` entries so abrupt completions route
    through them.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: list[CFGNode] = []
        self.exit = self._synthetic("EXIT")
        self.rexit = self._synthetic("REXIT")
        self._fin_stack: list[int] = []

    def _synthetic(self, label: str) -> int:
        node = CFGNode(index=len(self.nodes), stmt=None, label=label)
        self.nodes.append(node)
        return node.index

    def _stmt_node(self, stmt: ast.stmt) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, label=type(stmt).__name__)
        self.nodes.append(node)
        return node.index

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self._seq(body, after=self.exit, exc=self.rexit, loop=None)
        return CFG(name=self.name, nodes=self.nodes, entry=entry, exit=self.exit, rexit=self.rexit)

    # ── sequencing ──────────────────────────────────────────────────────

    def _seq(self, body: list[ast.stmt], after: int, exc: int, loop: _Loop | None) -> int:
        """Wire *body* so it continues to *after*; return its entry index."""
        entry = after
        # Build back-to-front so each statement knows its continuation.
        for stmt in reversed(body):
            entry = self._stmt(stmt, after=entry, exc=exc, loop=loop)
        return entry

    def _stmt(self, stmt: ast.stmt, after: int, exc: int, loop: _Loop | None) -> int:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, after, exc, loop)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, after, exc)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, after, exc, loop)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, after, exc, loop)
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt)
            target = self._fin_stack[-1] if self._fin_stack else self.exit
            self.nodes[node].succ.add(target)
            self.nodes[node].esucc.add(exc)
            return node
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt)
            self.nodes[node].esucc.add(exc)
            return node
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self._stmt_node(stmt)
            if loop is not None:
                header, loop_after, fin_depth = loop
                inner_fins = self._fin_stack[fin_depth:]
                direct = loop_after if isinstance(stmt, ast.Break) else header
                self.nodes[node].succ.add(inner_fins[-1] if inner_fins else direct)
            self.nodes[node].esucc.add(exc)
            return node
        # Nested defs/classes: a single node, no descent (each function
        # gets its own CFG); everything else is a plain statement.
        node = self._stmt_node(stmt)
        self.nodes[node].succ.add(after)
        self.nodes[node].esucc.add(exc)
        return node

    # ── compound statements ─────────────────────────────────────────────

    def _build_if(self, stmt: ast.If, after: int, exc: int, loop: _Loop | None) -> int:
        node = self._stmt_node(stmt)
        then_entry = self._seq(stmt.body, after=after, exc=exc, loop=loop)
        else_entry = self._seq(stmt.orelse, after=after, exc=exc, loop=loop)
        self.nodes[node].succ.update({then_entry, else_entry})
        self.nodes[node].esucc.add(exc)
        return node

    def _build_loop(self, stmt: ast.While | ast.For | ast.AsyncFor, after: int, exc: int) -> int:
        header = self._stmt_node(stmt)
        # ``orelse`` runs when the loop ends without break; for fact
        # tracking it's just another path from header to after.
        else_entry = self._seq(stmt.orelse, after=after, exc=exc, loop=None)
        body_entry = self._seq(
            stmt.body, after=header, exc=exc, loop=(header, after, len(self._fin_stack))
        )
        self.nodes[header].succ.update({body_entry, else_entry})
        if not stmt.orelse:
            self.nodes[header].succ.add(after)
        self.nodes[header].esucc.add(exc)
        return header

    def _build_with(
        self, stmt: ast.With | ast.AsyncWith, after: int, exc: int, loop: _Loop | None
    ) -> int:
        # The with-statement node models entering the context managers
        # (which may raise before the body runs).  ``__exit__`` is not
        # modeled as a statement: context managers are self-releasing, so
        # checkers never track with-items, and body exceptions propagate
        # to the enclosing exception target unchanged.
        node = self._stmt_node(stmt)
        body_entry = self._seq(stmt.body, after=after, exc=exc, loop=loop)
        self.nodes[node].succ.add(body_entry)
        self.nodes[node].esucc.add(exc)
        return node

    def _build_try(self, stmt: ast.Try, after: int, exc: int, loop: _Loop | None) -> int:
        protected = (
            stmt.body
            + [s for h in stmt.handlers for s in h.body]
            + stmt.orelse
        )
        if stmt.finalbody:
            # finally: built once; its exits reach every continuation the
            # protected region can complete to (merged continuations — a
            # may-analysis over-approximation).
            fin_targets = {after, exc}
            if _region_has(protected, (ast.Return,)):
                # A return routes through this finally, then onward to
                # the next enclosing finally (or EXIT).
                fin_targets.add(self._fin_stack[-1] if self._fin_stack else self.exit)
            if loop is not None:
                header, loop_after, fin_depth = loop
                if len(self._fin_stack) >= fin_depth:
                    if _region_has(protected, (ast.Break,)):
                        fin_targets.add(loop_after)
                    if _region_has(protected, (ast.Continue,)):
                        fin_targets.add(header)
            fin_entry = self._seq_fanout(stmt.finalbody, fin_targets, exc=exc, loop=loop)
            after_inner = fin_entry
            exc_inner = fin_entry
            self._fin_stack.append(fin_entry)
        else:
            after_inner = after
            exc_inner = exc

        try:
            # Handlers: body continues to the finally (or after); a raise
            # inside a handler goes to the finally-as-exception-path (or
            # the outer target).
            handler_entries: list[int] = []
            broad = False
            for handler in stmt.handlers:
                handler_entries.append(
                    self._seq(handler.body, after=after_inner, exc=exc_inner, loop=loop)
                )
                broad = broad or _handler_is_broad(handler)

            # else: runs after the try body completes normally.
            else_entry = self._seq(stmt.orelse, after=after_inner, exc=exc_inner, loop=loop)

            # try body: exceptions go to every handler entry, plus the
            # finally/outer path unless some handler catches broadly.
            body_exc_targets = set(handler_entries)
            if not broad:
                body_exc_targets.add(exc_inner)
            return self._seq_hub(
                stmt.body, after=else_entry, exc_targets=body_exc_targets, loop=loop
            )
        finally:
            if stmt.finalbody:
                self._fin_stack.pop()

    # ── multi-target plumbing ───────────────────────────────────────────

    def _seq_fanout(
        self, body: list[ast.stmt], after_targets: set[int], exc: int, loop: _Loop | None
    ) -> int:
        """Like :meth:`_seq` but the sequence's exit fans out to several
        normal continuations (used for ``finally`` exits)."""
        join = self._synthetic("FIN")
        self.nodes[join].succ.update(after_targets)
        return self._seq(body, after=join, exc=exc, loop=loop)

    def _seq_hub(
        self, body: list[ast.stmt], after: int, exc_targets: set[int], loop: _Loop | None
    ) -> int:
        """Like :meth:`_seq` but every statement's exception edge fans out
        to several targets (try body → handlers + maybe outer)."""
        if not exc_targets:
            raise ValidationError("try body needs at least one exception target")
        if len(exc_targets) == 1:
            return self._seq(body, after=after, exc=next(iter(exc_targets)), loop=loop)
        hub = self._synthetic("EXC")
        # The hub's *exception* successors carry facts onward; dataflow
        # treats synthetic nodes as identity transfers, so this is purely
        # topological.
        self.nodes[hub].esucc.update(exc_targets)
        return self._seq(body, after=after, exc=hub, loop=loop)


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: list[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in names:
        if isinstance(expr, ast.Name) and expr.id in _BROAD_HANDLERS:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in _BROAD_HANDLERS:
            return True
    return False


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef, name: str | None = None) -> CFG:
    """Build the CFG for one function definition."""
    return _Builder(name or func.name).build(func.body)
