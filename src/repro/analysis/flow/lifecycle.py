"""RPL101 — resource lifecycle over the CFG (leak-on-raise, double-release).

Scope: files under ``exec/``, ``service/`` and ``resilience/`` — the
layers that hand-manage locks, shared-memory segments, journal file
handles and started services.  (``hetero/memory.py`` manages arena leases
with its own ref-counting and finalizers; it is deliberately out of
scope.)

Tracked resource kinds and their protocols:

========  ==========================================  ==========================================
kind      acquired by                                 released by
========  ==========================================  ==========================================
lock      ``<expr>.acquire()``                        ``<expr>.release()`` on the same expr text
service   ``name.start_executor()`` / ``name.start()``  ``stop/stop_sync/abort/close/join/terminate/kill``
file      ``name = open(...)`` / ``name = p.open(...)``  ``name.close()``
shm       ``name = SharedArena/SharedMemory/...(...)``   ``close/release/unlink/unlink_backing/detach``
========  ==========================================  ==========================================

Lock receivers are matched by their expression text (``self._slots``);
the other kinds require a plain local name, and the fact is *killed* when
that name escapes the function — returned, stored into an attribute or
container, or passed as a call argument — because an escaped resource's
lifetime is someone else's intra-procedural problem.

The dataflow polarity (gen on the normal edge only, kill on both — see
:mod:`repro.analysis.flow.dataflow`) yields the two reports:

- a held-fact alive at ``REXIT`` → acquired, then an exception escaped
  before any release ran: **leak-on-raise**;
- a held-fact alive at ``EXIT`` → some normal return path skips the
  release: **leak-on-return**;
- at a release site, a rel-fact present with no held-fact → the same
  resource was already released on every path reaching here:
  **double-release**.

``with`` items are never tracked (context managers self-release), and a
resource deliberately handed to another owner gets ``# noqa: RPL101``
with a comment at the acquire line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath

from repro.analysis.flow.cfg import CFGNode, build_cfg
from repro.analysis.flow.dataflow import solve_forward
from repro.analysis.report import Finding

__all__ = ["check_lifecycle", "function_lifecycle_findings"]

RULE_ID = "RPL101"

_SCOPE_DIRS = {"exec", "service", "resilience"}

_SHM_CONSTRUCTORS = {"SharedArena", "SharedMemory", "attach_shared_array"}
_SERVICE_ACQUIRE = {"start_executor", "start"}
_SERVICE_RELEASE = {"stop", "stop_sync", "abort", "close", "join", "terminate", "kill"}
_SHM_RELEASE = {"close", "release", "unlink", "unlink_backing", "detach"}


@dataclass(frozen=True)
class _Op:
    """One acquire/release recognized inside a single statement."""

    kind: str  # "lock" | "service" | "file" | "shm"
    recv: str  # receiver text ("self._slots") or local name ("fh")
    line: int


def _unparse_recv(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *by this statement itself* — excludes
    nested statement bodies, which are separate CFG nodes."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]  # simple statements: walk the whole node


def _iter_calls(exprs: list[ast.expr]):
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                yield node


@dataclass
class _StmtOps:
    acquires: list[_Op]
    releases: list[_Op]
    escapes: set[str]  # receiver names whose facts die here


def _with_bound_names(func: ast.AST) -> set[str]:
    """Names bound by ``with ... as name`` anywhere in the function —
    those resources are context-managed and never tracked."""
    bound: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    bound.add(item.optional_vars.id)
    return bound


def _scan_stmt(stmt: ast.stmt, name_kinds: dict[str, str], skip: set[str]) -> _StmtOps:
    """Recognize the ops a single statement performs.

    *name_kinds* maps already-seen Name receivers to their kind so a
    release like ``fh.close()`` is attributed to the right resource;
    *skip* holds with-bound names that must never be tracked.
    """
    ops = _StmtOps(acquires=[], releases=[], escapes=set())
    exprs = _own_exprs(stmt)

    # Name-receiver acquisitions: ``x = open(...)`` / ``x = SharedArena(...)``.
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        value = stmt.value
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(target, ast.Name) and isinstance(value, ast.Call):
            callee = None
            if isinstance(value.func, ast.Name):
                callee = value.func.id
            elif isinstance(value.func, ast.Attribute):
                callee = value.func.attr
            if target.id not in skip:
                if callee == "open":
                    ops.acquires.append(_Op("file", target.id, stmt.lineno))
                    name_kinds[target.id] = "file"
                elif callee in _SHM_CONSTRUCTORS:
                    ops.acquires.append(_Op("shm", target.id, stmt.lineno))
                    name_kinds[target.id] = "shm"

    for call in _iter_calls(exprs):
        method = call.func.attr
        recv_node = call.func.value
        recv = _unparse_recv(recv_node)
        if recv is None:
            continue
        is_name = isinstance(recv_node, ast.Name)
        if method == "acquire":
            ops.acquires.append(_Op("lock", recv, call.lineno))
        elif method == "release" and recv not in name_kinds:
            ops.releases.append(_Op("lock", recv, call.lineno))
        elif is_name and recv not in skip and method in _SERVICE_ACQUIRE:
            ops.acquires.append(_Op("service", recv, call.lineno))
            name_kinds.setdefault(recv, "service")
        elif is_name and recv in name_kinds:
            kind = name_kinds[recv]
            if kind == "service" and method in _SERVICE_RELEASE:
                ops.releases.append(_Op(kind, recv, call.lineno))
            elif kind == "file" and method == "close":
                ops.releases.append(_Op(kind, recv, call.lineno))
            elif kind == "shm" and method in _SHM_RELEASE:
                ops.releases.append(_Op(kind, recv, call.lineno))

    # Escapes: a tracked *name* used outside a ``recv.method(...)`` chain
    # (returned, stored, passed as an argument) leaves our jurisdiction.
    tracked_names = {n for n in name_kinds if n not in skip}
    if tracked_names:
        for expr in exprs:
            for parent in ast.walk(expr):
                for fieldname, value in ast.iter_fields(parent):
                    children = value if isinstance(value, list) else [value]
                    for child in children:
                        if (
                            isinstance(child, ast.Name)
                            and isinstance(child.ctx, ast.Load)
                            and child.id in tracked_names
                        ):
                            base_of_attr = (
                                isinstance(parent, ast.Attribute) and fieldname == "value"
                            )
                            if not base_of_attr:
                                ops.escapes.add(child.id)
    return ops


def function_lifecycle_findings(
    func: ast.FunctionDef | ast.AsyncFunctionDef, path: str
) -> list[Finding]:
    """Run the RPL101 dataflow over one function; returns its findings."""
    cfg = build_cfg(func)
    skip = _with_bound_names(func)

    # Pass 1: per-statement ops (name_kinds accumulates across statements
    # in source order so releases after the acquire resolve their kind).
    name_kinds: dict[str, str] = {}
    stmt_ops: dict[int, _StmtOps] = {}
    for node in sorted(cfg.statement_nodes(), key=lambda n: n.line):
        stmt_ops[node.index] = _scan_stmt(node.stmt, name_kinds, skip)

    # Universes of possible facts per receiver, so kill sets can be
    # concrete (the engine takes sets, not predicates).
    held_universe: dict[str, set[tuple]] = {}
    rel_universe: dict[str, set[tuple]] = {}
    for ops in stmt_ops.values():
        for op in ops.acquires:
            held_universe.setdefault(op.recv, set()).add(("H", op.kind, op.recv, op.line))
        for op in ops.releases:
            rel_universe.setdefault(op.recv, set()).add(("R", op.recv, op.line))
    if not held_universe:
        return []

    def transfer(node: CFGNode) -> tuple[set, set]:
        ops = stmt_ops[node.index]
        gen: set = set()
        kill: set = set()
        for recv in ops.escapes:
            kill |= held_universe.get(recv, set())
            kill |= rel_universe.get(recv, set())
        for op in ops.releases:
            kill |= held_universe.get(op.recv, set())
            gen.add(("R", op.recv, op.line))
        for op in ops.acquires:
            fact = ("H", op.kind, op.recv, op.line)
            kill |= held_universe.get(op.recv, set()) - {fact}
            kill |= rel_universe.get(op.recv, set())
            gen.add(fact)
        return gen, kill

    in_facts = solve_forward(cfg, transfer)

    findings: list[Finding] = []

    def held(facts, recv: str) -> bool:
        return any(f[0] == "H" and f[2] == recv for f in facts)

    # Double-release: at a release site, a *different* release already ran
    # on some path and nothing is held.  (Same-line rel facts are ignored
    # so a single release inside a loop body — balancing per-iteration
    # acquires — doesn't flag itself via the back edge.)
    for node in cfg.statement_nodes():
        facts = in_facts[node.index]
        for op in stmt_ops[node.index].releases:
            prior = any(f[0] == "R" and f[1] == op.recv and f[2] != op.line for f in facts)
            if prior and not held(facts, op.recv):
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        severity="error",
                        message=(
                            f"{op.kind} '{op.recv}' may already be released when "
                            f"released again here (in {func.name})"
                        ),
                        where=f"{path}:{op.line}",
                        detail={"file": path, "line": op.line, "shape": "double-release"},
                    )
                )

    # Leaks: held facts alive at the terminals, reported at the acquire.
    leak_raise = {f for f in in_facts[cfg.rexit] if f[0] == "H"}
    leak_return = {f for f in in_facts[cfg.exit] if f[0] == "H"}
    for fact in sorted(leak_raise | leak_return, key=lambda f: f[3]):
        _, kind, recv, line = fact
        paths = []
        if fact in leak_raise:
            paths.append("when an exception escapes")
        if fact in leak_return:
            paths.append("on a normal return path")
        findings.append(
            Finding(
                rule=RULE_ID,
                severity="error",
                message=(
                    f"{kind} '{recv}' acquired here may not be released "
                    f"{' and '.join(paths)} (in {func.name}); release in a finally "
                    "block, or # noqa: RPL101 a deliberate ownership transfer"
                ),
                where=f"{path}:{line}",
                detail={"file": path, "line": line, "shape": "leak"},
            )
        )
    return findings


def check_lifecycle(sources: list[tuple[str, ast.Module]]) -> list[Finding]:
    """RPL101 over parsed (path, tree) pairs; scope-filtered internally."""
    findings: list[Finding] = []
    for path, tree in sources:
        if not _SCOPE_DIRS & set(PurePosixPath(path).parts):
            continue
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(function_lifecycle_findings(node, path))
    return findings
