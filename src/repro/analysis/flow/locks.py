"""RPL103 — lock-discipline race heuristic over the call graph.

The concurrency layers share one shape: an object owned by the event loop
(``SolveService``, an :class:`~repro.exec.base.Executor`) whose methods
also run on worker threads — ``run_sync`` via ``asyncio.to_thread``,
``worker_main`` as a ``Process`` target, metric helpers called from pool
threads.  Any attribute such an object mutates from *both* sides needs
one consistent lock, or increments get lost and containers corrupt.

Contexts are derived from the call graph:

- **worker-thread context** — closure over sync call edges rooted at
  every function handed to another thread (``to_thread(fn)``,
  ``run_in_executor(_, fn)``, ``Thread/Process(target=fn)``,
  ``pool.submit(fn)``);
- **event-loop context** — closure over sync, *unsanitized* call edges
  rooted at every ``async def`` (awaited callees are async and therefore
  roots themselves; a sanitized edge runs off-loop by construction).

A write site's guard is the lexically enclosing ``with`` whose item looks
like a lock (receiver's last segment contains ``lock``/``mutex``), with
*transitive* caller inheritance: a helper whose every call site runs
under the same lock — directly or because the caller itself inherited it
— counts as guarded by it (the ``_do_locked`` idiom, fixpointed so
``a() -> b() -> c()`` chains propagate the guard).

For each attribute of a class in ``exec//service//resilience/`` written
from both contexts, the checker flags unguarded write sites and
inconsistent guards (two different locks serialize nothing).
``__init__``/``__post_init__`` writes are exempt — the object is not yet
shared during construction.
"""

from __future__ import annotations

from collections import deque
from pathlib import PurePosixPath

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.report import Finding

__all__ = ["check_locks"]

RULE_ID = "RPL103"

_SCOPE_DIRS = {"exec", "service", "resilience"}
_CTOR_NAMES = {"__init__", "__post_init__"}


def _closure(graph: CallGraph, seeds: list[FunctionInfo], follow_sanitized: bool) -> set[str]:
    """Qualnames reachable from *seeds* over sync call edges."""
    seen = {fn.qualname for fn in seeds}
    work = deque(seeds)
    while work:
        fn = work.popleft()
        for call in fn.calls:
            if call.awaited:
                continue
            if call.sanitized and not follow_sanitized:
                continue
            for callee in graph.resolve_call(call, fn):
                if callee.is_async or callee.qualname in seen:
                    continue
                seen.add(callee.qualname)
                work.append(callee)
    return seen


def _thread_context(graph: CallGraph) -> set[str]:
    seeds: list[FunctionInfo] = []
    seen: set[str] = set()
    for fn in graph.functions:
        for ref in fn.thread_refs:
            for target in graph.resolve(ref):
                if target.qualname not in seen:
                    seen.add(target.qualname)
                    seeds.append(target)
    return _closure(graph, seeds, follow_sanitized=True)


def _loop_context(graph: CallGraph) -> set[str]:
    seeds = [fn for fn in graph.functions if fn.is_async]
    return _closure(graph, seeds, follow_sanitized=False)


def _inherited_locks(graph: CallGraph) -> dict[str, str | None]:
    """For every function, the one lock *all* its callers hold at every
    call site — counting locks the callers themselves inherited, fixpointed
    so guards propagate down ``a() -> b() -> c()`` helper chains."""
    callers: dict[str, list[tuple[FunctionInfo, str | None]]] = {}
    for fn in graph.functions:
        for call in fn.calls:
            for callee in graph.resolve_call(call, fn):
                callers.setdefault(callee.qualname, []).append((fn, call.lock))

    inherited: dict[str, str | None] = {fn.qualname: None for fn in graph.functions}
    for _ in range(10):  # cap: cycles without locks converge immediately
        changed = False
        for fn in graph.functions:
            sites = callers.get(fn.qualname)
            if not sites:
                continue
            locks = {lock or inherited.get(caller.qualname) for caller, lock in sites}
            new = locks.pop() if len(locks) == 1 else None
            if new != inherited[fn.qualname]:
                inherited[fn.qualname] = new
                changed = True
        if not changed:
            break
    return inherited


def check_locks(graph: CallGraph) -> list[Finding]:
    """RPL103 over a built call graph."""
    thread_ctx = _thread_context(graph)
    loop_ctx = _loop_context(graph)

    inherited = _inherited_locks(graph)

    # (class, attr) -> write sites as (fn, AttrWrite, effective lock).
    sites: dict[tuple[str, str], list] = {}
    for fn in graph.functions:
        if fn.owner is None or fn.name in _CTOR_NAMES:
            continue
        if not _SCOPE_DIRS & set(PurePosixPath(fn.path).parts):
            continue
        in_thread = fn.qualname in thread_ctx
        in_loop = fn.qualname in loop_ctx
        if not (in_thread or in_loop):
            continue
        if not fn.attr_writes:
            continue
        for write in fn.attr_writes:
            lock = write.lock or inherited[fn.qualname]
            sites.setdefault((fn.owner, write.attr), []).append(
                (fn, write, lock, in_thread, in_loop)
            )

    findings: list[Finding] = []
    for (owner, attr), entries in sorted(sites.items()):
        wrote_thread = any(t for _, _, _, t, _ in entries)
        wrote_loop = any(loop for _, _, _, _, loop in entries)
        if not (wrote_thread and wrote_loop):
            continue
        locks = {lock for _, _, lock, _, _ in entries}
        if locks == {None}:
            # Entirely unguarded on both sides; flag once at the first site.
            fn, write, _, _, _ = min(entries, key=lambda e: (e[0].path, e[1].line))
            findings.append(
                _finding(
                    owner,
                    attr,
                    fn,
                    write,
                    f"'{owner}.{attr}' is written from both event-loop and "
                    "worker-thread call paths with no lock held at any write",
                )
            )
        elif None in locks:
            for fn, write, lock, _, _ in sorted(entries, key=lambda e: (e[0].path, e[1].line)):
                if lock is None:
                    held = ", ".join(sorted(x for x in locks if x))
                    findings.append(
                        _finding(
                            owner,
                            attr,
                            fn,
                            write,
                            f"'{owner}.{attr}' is written from both event-loop and "
                            f"worker-thread call paths; this write is unguarded "
                            f"while others hold {held}",
                        )
                    )
        elif len(locks) > 1:
            fn, write, _, _, _ = min(entries, key=lambda e: (e[0].path, e[1].line))
            all_locks = ", ".join(sorted(x for x in locks if x))
            findings.append(
                _finding(
                    owner,
                    attr,
                    fn,
                    write,
                    f"'{owner}.{attr}' is written from both event-loop and "
                    f"worker-thread call paths under different locks ({all_locks}); "
                    "two locks serialize nothing",
                )
            )
    return findings


def _finding(owner: str, attr: str, fn: FunctionInfo, write, message: str) -> Finding:
    return Finding(
        rule=RULE_ID,
        severity="error",
        message=f"{message} (write in {fn.name})",
        where=f"{fn.path}:{write.line}",
        detail={"file": fn.path, "line": write.line, "class": owner, "attr": attr},
    )
