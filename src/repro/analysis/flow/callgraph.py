"""Module-level call graph over a file set, with a source-keyed cache.

Name resolution is *receiver-typed where possible, conservative
otherwise*.  The extractor records the receiver text of every call site
plus three cheap sources of type evidence — ``x = ClassName(...)`` local
bindings, parameter annotations, and class attribute types (from
``self.attr = ClassName(...)`` in any method and class-level annotations)
— so ``service.start()`` resolves to ``SolveService.start`` instead of
every ``start`` in the repo.  When no evidence exists, an attribute call
resolves to every *method* of that name and a bare call to every free
function of that name: for the checkers built on top (RPL102/RPL103) a
spurious edge costs a reviewable false positive while a missing edge
hides a real bug, so over-linking within the right category is the
right trade.

Besides plain call edges, the extractor records everything the
concurrency checkers need in one pass per function:

- **sinks** — blocking operations (``time.sleep``, ``os.fsync``, sync
  file I/O, non-awaited blocking ``queue.get``, ``np.linalg``
  factorizations);
- **thread refs** — callables handed to another thread or process
  (``asyncio.to_thread(fn)``, ``loop.run_in_executor(_, fn)``,
  ``Thread(target=fn)`` / ``Process(target=fn)``, ``pool.submit(fn)``);
  these seed RPL103's worker-thread context, and call edges *through*
  them are marked ``sanitized`` so RPL102 stops at the handoff;
- **attr writes** — mutations of ``self.<attr>`` (assignment, augmented
  assignment, subscript stores, mutator-method calls) with the lexically
  enclosing ``with``-lock, for RPL103's lock-discipline check;
- **lock context per call site** — so a helper whose *every* caller holds
  the same lock can inherit that guard (the ``_do_locked`` idiom).

Builds serialize to JSON and are cached keyed on the sha256 of the sorted
``(path, source)`` pairs — the CI flow job wires that cache through
``actions/cache`` so unchanged trees skip extraction entirely.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.util.exceptions import ValidationError

__all__ = [
    "AttrWrite",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "Sink",
    "build_call_graph",
    "source_digest",
]

CACHE_VERSION = 2

#: Attribute methods that mutate their receiver in place.
_MUTATORS = {
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "update",
}

#: ``np.linalg`` members that do real factorization work (seconds on big
#: operands — never acceptable inline on the event loop).
_LINALG_SINKS = {"cholesky", "qr", "svd", "eig", "eigh", "solve", "inv", "lstsq", "pinv"}

#: Path methods that hit the filesystem synchronously.
_FILE_IO_METHODS = {"read_text", "write_text", "read_bytes", "write_bytes"}

#: Receiver-name fragments that mark a ``.get(...)`` as a blocking queue
#: read rather than a dict lookup.
_QUEUEISH = ("queue", "inbox", "outbox")

_CLASSNAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")

#: Generic/typing wrappers to skip when digging a class name out of an
#: annotation — ``Optional[JobJournal]`` names JobJournal, not Optional.
_TYPING_WRAPPERS = {
    "Annotated",
    "Any",
    "Awaitable",
    "Callable",
    "ClassVar",
    "Deque",
    "Dict",
    "Final",
    "FrozenSet",
    "Iterable",
    "Iterator",
    "List",
    "Mapping",
    "MutableMapping",
    "Optional",
    "Sequence",
    "Set",
    "Tuple",
    "Type",
    "Union",
}


def _is_classlike(name: str) -> bool:
    stripped = name.lstrip("_")
    return bool(stripped) and stripped[:1].isupper() and name not in _TYPING_WRAPPERS


@dataclass
class CallSite:
    """One call expression inside a function body."""

    callee: str  # bare name: last attribute segment or the Name itself
    line: int
    recv: str | None = None  # receiver chain text ("self._journal"), None for bare calls
    awaited: bool = False
    sanitized: bool = False  # behind to_thread / run_in_executor
    lock: str | None = None  # enclosing with-lock receiver, e.g. "self._lock"


@dataclass
class Sink:
    """A known-blocking operation site."""

    kind: str  # "sleep" | "fsync" | "file-io" | "linalg" | "queue-get"
    label: str  # human-readable call text, e.g. "time.sleep"
    line: int


@dataclass
class AttrWrite:
    """A mutation of ``self.<attr>`` inside a method."""

    attr: str
    line: int
    lock: str | None = None  # enclosing with-lock receiver, if any


@dataclass
class FunctionInfo:
    """Everything the flow checkers need to know about one function."""

    qualname: str  # "pkg/mod.py::Class.method"
    path: str  # posix path as given to build_call_graph
    name: str  # bare function name
    owner: str | None  # enclosing class name, if a method
    is_async: bool
    line: int
    calls: list[CallSite] = field(default_factory=list)
    sinks: list[Sink] = field(default_factory=list)
    thread_refs: list[str] = field(default_factory=list)
    attr_writes: list[AttrWrite] = field(default_factory=list)
    param_types: dict[str, str] = field(default_factory=dict)  # arg name -> class
    local_types: dict[str, str] = field(default_factory=dict)  # local name -> class
    attr_types: dict[str, str] = field(default_factory=dict)  # self.attr -> class
    iter_sources: dict[str, str] = field(default_factory=dict)  # for-target -> container


@dataclass
class CallGraph:
    """Functions indexed by bare name, plus receiver-type evidence."""

    functions: list[FunctionInfo]
    digest: str
    classes: dict[str, dict[str, str]] = field(default_factory=dict)  # class -> attr -> type
    bases: dict[str, list[str]] = field(default_factory=dict)  # class -> base classes

    def __post_init__(self) -> None:
        self.by_name: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
            # ``ClassName(...)`` constructs an instance: route the call
            # edge to the class's __init__.
            if fn.name == "__init__" and fn.owner:
                self.by_name.setdefault(fn.owner, []).append(fn)
            # Method-body ``self.attr = ClassName(...)`` evidence.
            if fn.owner and fn.attr_types:
                slot = self.classes.setdefault(fn.owner, {})
                for attr, cls in fn.attr_types.items():
                    slot.setdefault(attr, cls)
        self._children: dict[str, list[str]] = {}
        for cls, parents in self.bases.items():
            for parent in parents:
                self._children.setdefault(parent, []).append(cls)

    def resolve(self, callee: str) -> list[FunctionInfo]:
        """Every function with this bare name (untyped lookup)."""
        return self.by_name.get(callee, [])

    def _receiver_class(
        self, recv: str, caller: FunctionInfo, _depth: int = 0
    ) -> str | None:
        parts = recv.split(".")
        if parts[0] == "self":
            if caller.owner is None:
                return None
            if len(parts) == 1:
                return caller.owner
            if len(parts) == 2:
                return self.classes.get(caller.owner, {}).get(parts[1])
            return None
        base = caller.local_types.get(parts[0]) or caller.param_types.get(parts[0])
        if base is None and _depth < 3:
            # ``for handle in self._handles:`` — type the loop target from
            # its container (element types are conflated into the
            # container's recorded class, see _class_from_annotation).
            container = caller.iter_sources.get(parts[0])
            if container is not None and container != recv:
                base = self._receiver_class(container, caller, _depth + 1)
        if base is None:
            return None
        if len(parts) == 1:
            return base
        if len(parts) == 2:
            return self.classes.get(base, {}).get(parts[1])
        return None

    def _hierarchy(self, cls: str) -> set[str]:
        """*cls* plus transitive ancestors and descendants — the classes a
        receiver statically typed as *cls* could dynamically dispatch to."""
        out = {cls}
        work = [cls]
        while work:  # ancestors
            for parent in self.bases.get(work.pop(), []):
                if parent not in out:
                    out.add(parent)
                    work.append(parent)
        work = [cls]
        while work:  # descendants
            for child in self._children.get(work.pop(), []):
                if child not in out:
                    out.add(child)
                    work.append(child)
        return out

    def resolve_call(self, call: CallSite, caller: FunctionInfo) -> list[FunctionInfo]:
        """Candidates for a call site, narrowed by receiver evidence.

        - Bare ``foo()`` → free functions named ``foo`` plus ``Foo()``
          constructors (never someone's *method* ``foo``).
        - Receiver typed as one of *our* classes → methods of that class's
          hierarchy (ancestors for inherited helpers, descendants for
          virtual dispatch through a base-typed handle).
        - Receiver typed as a class we never scanned (``asyncio.Semaphore``,
          ``threading.Lock``) → no edges: its methods cannot be in this
          graph, and same-named methods of unrelated classes are noise.
        - Untyped attribute receiver → every method of that name.
        """
        cands = self.by_name.get(call.callee, [])
        if not cands:
            return []
        if call.recv is None:
            return [f for f in cands if f.owner is None or f.name == "__init__"]
        cls = self._receiver_class(call.recv, caller)
        if cls is not None:
            hier = self._hierarchy(cls)
            owned = [f for f in cands if f.owner in hier]
            # No hierarchy match: either the method lives outside the file
            # set (external class) or the type evidence was wrong; in both
            # cases same-named methods of unrelated classes are noise.
            return owned
        return [f for f in cands if f.owner is not None]

    def callers_of(self, name: str) -> list[tuple[FunctionInfo, CallSite]]:
        """Every (function, call site) pair that calls *name*."""
        out: list[tuple[FunctionInfo, CallSite]] = []
        for fn in self.functions:
            for call in fn.calls:
                if call.callee == name:
                    out.append((fn, call))
        return out

    # ── serialization ───────────────────────────────────────────────────

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": CACHE_VERSION,
                "digest": self.digest,
                "classes": self.classes,
                "bases": self.bases,
                "functions": [asdict(fn) for fn in self.functions],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CallGraph":
        raw = json.loads(text)
        if raw.get("version") != CACHE_VERSION:
            raise ValidationError(
                f"call-graph cache version {raw.get('version')!r} != {CACHE_VERSION}"
            )
        functions = []
        for entry in raw["functions"]:
            entry = dict(entry)
            entry["calls"] = [CallSite(**c) for c in entry["calls"]]
            entry["sinks"] = [Sink(**s) for s in entry["sinks"]]
            entry["attr_writes"] = [AttrWrite(**w) for w in entry["attr_writes"]]
            functions.append(FunctionInfo(**entry))
        return cls(
            functions=functions,
            digest=raw["digest"],
            classes=raw.get("classes", {}),
            bases=raw.get("bases", {}),
        )


def source_digest(sources: list[tuple[str, str]]) -> str:
    """sha256 over the sorted (path, source) pairs — the cache key."""
    h = hashlib.sha256()
    for path, text in sorted(sources):
        h.update(path.encode())
        h.update(b"\x00")
        h.update(text.encode())
        h.update(b"\x00")
    return h.hexdigest()


def _attr_chain(node: ast.expr) -> str | None:
    """Dotted text of a Name/Attribute chain, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _bare_callee(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _class_from_annotation(annotation: ast.expr | None) -> str | None:
    """``JobJournal | None`` / ``"Machine"`` / ``list[_WorkerHandle]`` →
    the first class-like bare name in the annotation.  Container element
    types are deliberately conflated with the container — good enough for
    ``for handle in self._handles`` receiver typing."""
    if annotation is None:
        return None
    try:
        text = ast.unparse(annotation)
    except ValueError:  # pragma: no cover - malformed constant in annotation
        return None
    text = text.strip().strip("'\"")
    saw_any = False
    for match in _CLASSNAME_RE.finditer(text):
        name = match.group(0).rsplit(".", 1)[-1]
        if name == "Any":
            saw_any = True
        if _is_classlike(name):
            return name
    # ``dict[str, Any]`` — the author declared the values untypeable;
    # treating them as an (unknown, external) class keeps method calls on
    # them from fanning out to every same-named method in the graph.
    return "_ExternalAny" if saw_any else None


def _class_from_ctor(value: ast.expr) -> str | None:
    """``ClassName(...)`` (possibly awaited) → "ClassName"."""
    if isinstance(value, ast.Await):
        value = value.value
    if not isinstance(value, ast.Call):
        return None
    name = _bare_callee(value.func)
    if name == "open":
        # File objects are external: typing them (as a class no scanned
        # file defines) stops ``fh.close()`` / ``fh.write()`` from fanning
        # out to every same-named method in the graph.
        return "_ExternalFileObject"
    if name and _is_classlike(name):
        return name
    return None


def _is_lock_guard(item: ast.withitem) -> str | None:
    """The with-item's receiver text if it looks like a lock, else None."""
    expr = item.context_expr
    # ``with self._lock:`` and ``with lock.acquire_timeout(...):`` both
    # count; what matters is the *receiver* the guard serializes on.
    if isinstance(expr, ast.Call):
        expr = expr.func
        if isinstance(expr, ast.Attribute):
            expr = expr.value
    chain = _attr_chain(expr)
    if chain is None:
        return None
    last = chain.rsplit(".", 1)[-1].lower()
    if "lock" in last or "mutex" in last:
        return chain
    return None


class _FunctionScanner(ast.NodeVisitor):
    """One pass over a single function body (not descending into nested
    function definitions — those are scanned as their own functions)."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self._lock_stack: list[str] = []
        self._await_depth = 0
        self._sanitize_depth = 0

    @property
    def _lock(self) -> str | None:
        return self._lock_stack[-1] if self._lock_stack else None

    # Nested defs get their own FunctionInfo; don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        guards = [g for item in node.items if (g := _is_lock_guard(item))]
        for item in node.items:
            self.visit(item.context_expr)
        self._lock_stack.extend(guards)
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            if guards:
                del self._lock_stack[-len(guards) :]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Await(self, node: ast.Await) -> None:
        self._await_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._await_depth -= 1

    # ── writes & type evidence ──────────────────────────────────────────

    def _record_write(self, target: ast.expr) -> None:
        # self.attr = ...  /  self.attr[k] = ...
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.info.attr_writes.append(
                AttrWrite(attr=target.attr, line=target.lineno, lock=self._lock)
            )

    def _record_types(self, target: ast.expr, value: ast.expr | None) -> None:
        if value is None:
            return
        cls = _class_from_ctor(value)
        if cls is None:
            # ``shm = self.segments.get(key)`` / ``h = self.handles[k]`` —
            # the local shares the container's (element-conflated) type;
            # resolved lazily through iter_sources like a loop target.
            if isinstance(target, ast.Name):
                source = value
                if (
                    isinstance(source, ast.Call)
                    and isinstance(source.func, ast.Attribute)
                    and source.func.attr in ("get", "pop", "popleft")
                ):
                    source = source.func.value
                elif isinstance(source, ast.Subscript):
                    source = source.value
                else:
                    return
                chain = _attr_chain(source)
                if chain is not None:
                    self.info.iter_sources.setdefault(target.id, chain)
            return
        if isinstance(target, ast.Name):
            self.info.local_types.setdefault(target.id, cls)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.info.attr_types.setdefault(target.attr, cls)

    def _record_iter(self, node: ast.For | ast.AsyncFor) -> None:
        if isinstance(node.target, ast.Name):
            source = node.iter
            # ``for shm in self.segments.values():`` — the values share
            # the container's (element-conflated) type.
            if (
                isinstance(source, ast.Call)
                and isinstance(source.func, ast.Attribute)
                and source.func.attr == "values"
                and not source.args
            ):
                source = source.func.value
            elif isinstance(source, (ast.Tuple, ast.List)) and source.elts:
                # ``for q in (self.inbox, self.outbox):`` — literal tuples
                # are near-always homogeneous; type from the first element.
                source = source.elts[0]
            chain = _attr_chain(source)
            if chain is not None:
                self.info.iter_sources.setdefault(node.target.id, chain)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._record_iter(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._record_iter(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target)
            self._record_types(target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target)
            self._record_types(node.target, node.value)
        cls = _class_from_annotation(node.annotation)
        if cls is not None:
            if isinstance(node.target, ast.Name):
                self.info.local_types.setdefault(node.target.id, cls)
            elif (
                isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                # ``self._handles: list[_WorkerHandle] = []`` — the
                # annotation beats the ctor-shape heuristic.
                self.info.attr_types[node.target.attr] = cls
        self.generic_visit(node)

    # ── calls ───────────────────────────────────────────────────────────

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        callee = _bare_callee(node.func)
        awaited = self._await_depth > 0

        self._record_sinks(node, chain, callee, awaited)

        handoff_refs = self._thread_handoff_refs(node, callee)
        if handoff_refs:
            self.info.thread_refs.extend(handoff_refs)

        # Mutator-method calls on self attributes are writes too:
        # ``self._idle.append(h)``, ``self._observations.clear()``.
        if (
            callee in _MUTATORS
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
        ):
            self.info.attr_writes.append(
                AttrWrite(attr=node.func.value.attr, line=node.lineno, lock=self._lock)
            )

        if callee is not None:
            recv = (
                _attr_chain(node.func.value) if isinstance(node.func, ast.Attribute) else None
            )
            self.info.calls.append(
                CallSite(
                    callee=callee,
                    line=node.lineno,
                    recv=recv,
                    awaited=awaited,
                    sanitized=self._sanitize_depth > 0,
                    lock=self._lock,
                )
            )

        # Calls nested in a thread handoff's arguments run off-loop.
        if handoff_refs:
            self._sanitize_depth += 1
            try:
                self.generic_visit(node)
            finally:
                self._sanitize_depth -= 1
        else:
            self.generic_visit(node)

    def _record_sinks(
        self, node: ast.Call, chain: str | None, callee: str | None, awaited: bool
    ) -> None:
        line = node.lineno
        if chain == "time.sleep":
            self.info.sinks.append(Sink("sleep", chain, line))
        elif chain == "os.fsync":
            self.info.sinks.append(Sink("fsync", chain, line))
        elif chain == "open" or (callee == "open" and isinstance(node.func, ast.Attribute)):
            self.info.sinks.append(Sink("file-io", chain or "open", line))
        elif callee in _FILE_IO_METHODS:
            self.info.sinks.append(Sink("file-io", chain or callee, line))
        elif chain is not None and ".linalg." in f".{chain}" and callee in _LINALG_SINKS:
            self.info.sinks.append(Sink("linalg", chain, line))
        elif callee == "get" and not awaited and isinstance(node.func, ast.Attribute):
            recv = _attr_chain(node.func.value)
            if recv is not None and any(q in recv.lower() for q in _QUEUEISH):
                self.info.sinks.append(Sink("queue-get", f"{recv}.get", line))

    def _thread_handoff_refs(self, node: ast.Call, callee: str | None) -> list[str]:
        """Bare names of callables this call hands to another thread."""
        refs: list[str] = []

        def ref_of(expr: ast.expr) -> str | None:
            return _bare_callee(expr) if isinstance(expr, (ast.Name, ast.Attribute)) else None

        if callee == "to_thread" and node.args:
            ref = ref_of(node.args[0])
            if ref:
                refs.append(ref)
        elif callee == "run_in_executor" and len(node.args) >= 2:
            ref = ref_of(node.args[1])
            if ref:
                refs.append(ref)
        elif callee in ("Thread", "Process", "Timer"):
            for kw in node.keywords:
                if kw.arg == "target":
                    ref = ref_of(kw.value)
                    if ref:
                        refs.append(ref)
        elif callee in ("submit", "apply_async", "map_async") and node.args:
            # Only pool-shaped receivers: ``service.submit(job)`` submits
            # a job *object*, it does not hand ``job`` to a thread.
            recv = (
                _attr_chain(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            last = recv.rsplit(".", 1)[-1].lower() if recv else ""
            if "pool" in last or "executor" in last:
                ref = ref_of(node.args[0])
                if ref:
                    refs.append(ref)
        return refs


def _scan_params(fn: ast.FunctionDef | ast.AsyncFunctionDef, info: FunctionInfo) -> None:
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        cls = _class_from_annotation(arg.annotation)
        if cls is not None:
            info.param_types[arg.arg] = cls


def _scan_source(
    path: str, tree: ast.Module
) -> tuple[list[FunctionInfo], dict[str, dict[str, str]], dict[str, list[str]]]:
    functions: list[FunctionInfo] = []
    class_types: dict[str, dict[str, str]] = {}
    class_bases: dict[str, list[str]] = {}

    def walk(node: ast.AST, owner: str | None, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(
                    qualname=f"{path}::{qual}",
                    path=path,
                    name=child.name,
                    owner=owner,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    line=child.lineno,
                )
                _scan_params(child, info)
                scanner = _FunctionScanner(info)
                for stmt in child.body:
                    scanner.visit(stmt)
                functions.append(info)
                walk(child, owner, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                base_names = [
                    b for base in child.bases if (b := _bare_callee(base)) is not None
                ]
                if base_names:
                    class_bases.setdefault(child.name, base_names)
                # Class-level annotations (dataclass fields) are receiver
                # type evidence: ``journal: JobJournal | None = None``.
                slots = class_types.setdefault(child.name, {})
                for stmt in child.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                        cls = _class_from_annotation(stmt.annotation)
                        if cls is not None:
                            slots.setdefault(stmt.target.id, cls)
                walk(child, child.name, f"{prefix}{child.name}.")
            else:
                walk(child, owner, prefix)

    walk(tree, None, "")
    return functions, class_types, class_bases


def build_call_graph(
    sources: list[tuple[str, str]],
    cache_dir: Path | None = None,
) -> CallGraph:
    """Build (or load from *cache_dir*) the call graph for *sources*.

    *sources* are ``(path, text)`` pairs; paths are used verbatim in
    qualnames and findings, so pass them repo-relative.
    """
    digest = source_digest(sources)
    cache_file = None
    if cache_dir is not None:
        cache_file = Path(cache_dir) / f"callgraph-{digest[:24]}.json"
        if cache_file.is_file():
            try:
                return CallGraph.from_json(cache_file.read_text(encoding="utf-8"))
            except (ValidationError, ValueError, KeyError, TypeError):
                pass  # stale/foreign cache: rebuild below

    functions: list[FunctionInfo] = []
    classes: dict[str, dict[str, str]] = {}
    bases: dict[str, list[str]] = {}
    for path, text in sorted(sources):
        try:
            tree = ast.parse(text)
        except SyntaxError:
            continue  # unparseable files simply contribute no functions
        fns, class_types, class_bases = _scan_source(path, tree)
        functions.extend(fns)
        for cls, attrs in class_types.items():
            slot = classes.setdefault(cls, {})
            for attr, typ in attrs.items():
                slot.setdefault(attr, typ)
        for cls, parents in class_bases.items():
            bases.setdefault(cls, parents)
    graph = CallGraph(functions=functions, digest=digest, classes=classes, bases=bases)

    if cache_file is not None:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        cache_file.write_text(graph.to_json(), encoding="utf-8")
    return graph
