"""A small forward may-dataflow engine over :mod:`repro.analysis.flow.cfg`.

Facts are opaque hashable values.  Each CFG node has a *gen* set and a
*kill* set (synthetic nodes have neither), and the engine iterates to a
fixpoint with the usual worklist:

- ``OUT_normal[n] = (IN[n] - kill[n]) | gen[n]``
- ``OUT_exc[n]    =  IN[n] - kill[n]``
- ``IN[n] = ⋃ OUT_normal[p] over normal preds  ∪  ⋃ OUT_exc[p] over
  exception preds``

The asymmetry is the whole point of having exception edges:

- **gen only on the normal edge** — if a statement raises, whatever it
  would have acquired was never acquired; the exception path must not
  carry the new fact.
- **kill on both edges** — a release statement that itself raises still
  counts as having disposed of the resource.  Without this, *every*
  ``acquire``/``release`` pair would flag leak-on-raise via the release
  statement's own exception edge, drowning real findings.

This is a may-analysis (union at joins): a fact reaches a node if it
holds on *some* path, which is the right polarity for "may leak" and
"may double-release" reporting.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Hashable

from repro.analysis.flow.cfg import CFG, CFGNode

__all__ = ["GenKill", "solve_forward"]

Fact = Hashable
# transfer(node) -> (gen, kill); called once per statement node.
GenKill = Callable[[CFGNode], tuple[set[Fact], set[Fact]]]


def solve_forward(
    cfg: CFG,
    transfer: GenKill,
    entry_facts: set[Fact] | None = None,
) -> dict[int, frozenset[Fact]]:
    """Solve to fixpoint; returns ``IN`` facts per node index.

    ``IN[cfg.exit]`` are the facts that may hold at normal return;
    ``IN[cfg.rexit]`` are the facts that may hold when an exception
    escapes the function — the leak-on-raise set.
    """
    gen: dict[int, set[Fact]] = {}
    kill: dict[int, set[Fact]] = {}
    for node in cfg.nodes:
        if node.stmt is None:
            gen[node.index], kill[node.index] = set(), set()
        else:
            gen[node.index], kill[node.index] = transfer(node)

    npred, epred = cfg.preds()
    in_facts: dict[int, set[Fact]] = {n.index: set() for n in cfg.nodes}
    in_facts[cfg.entry] = set(entry_facts or ())

    # Seed with every node: predecessors' OUT values start empty but the
    # entry's facts (and gens) must propagate even through cycles.
    work: deque[int] = deque(n.index for n in cfg.nodes)
    queued = set(work)
    while work:
        idx = work.popleft()
        queued.discard(idx)
        merged: set[Fact] = set(in_facts[idx]) if idx == cfg.entry else set()
        for p in npred[idx]:
            merged |= (in_facts[p] - kill[p]) | gen[p]
        for p in epred[idx]:
            merged |= in_facts[p] - kill[p]
        if merged != in_facts[idx]:
            in_facts[idx] = merged
            node = cfg.nodes[idx]
            for s in node.succ | node.esucc:
                if s not in queued:
                    queued.add(s)
                    work.append(s)
    return {idx: frozenset(facts) for idx, facts in in_facts.items()}
