"""RAW/WAW hazard detection over a simulated multi-stream schedule.

Optimization 1 fans checksum recalculation across concurrent CUDA streams;
Optimization 2 moves checksum updating to its own stream or the CPU.  Every
one of those concurrent lanes touches the same tiles the factorization
operates on, so the schedules are only correct if every conflicting pair of
accesses is ordered by an explicit dependency (an event wait, a stream
chain, a barrier).  The simulator executes whatever order the GPS model
produces — it will happily *succeed* on a racy graph — so this module is
the race detector: a **RAW** hazard is a read launched after a write of the
same tile with no dependency path from the write; a **WAW** hazard is two
unordered writes.  Launch (tid) order decides which access is "first":
that is the order a single-queue execution would pick, and it is how CUDA
semantics define the hazard classes.

WAR pairs are deliberately *not* reported.  The protocol routinely issues a
checksum recalculation (read) concurrently with the next operation's
checksum update (write) of the same strip — benign, because the read's
verification barrier is what later operations order against, not the read
itself.  A WAR "hazard" would flag every such pair in a perfectly correct
schedule; the RAW and WAW rules are the ones whose violation corrupts data.

Both address spaces are scanned: data tiles (``tile_reads``/``tile_writes``)
and checksum strips (``chk_reads``/``chk_writes``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.model import SPACES, AccessGraph
from repro.analysis.report import Finding
from repro.desim.trace import Span


def _pair_finding(
    graph: AccessGraph, kind: str, tile: tuple[int, int], space: str, a: int, b: int
) -> Finding:
    sa, sb = graph.span(a), graph.span(b)
    what = "read" if kind == "raw" else "write"
    return Finding(
        rule=f"hazard-{kind}",
        severity="error",
        message=(
            f"{space} tile {tile}: {what} {sb.name!r} (tid {b}, stream "
            f"{graph.stream_of(sb)}) is unordered with earlier write "
            f"{sa.name!r} (tid {a}, stream {graph.stream_of(sa)})"
        ),
        where=sb.name,
        detail={
            "tile": list(tile),
            "space": space,
            "first": {"tid": a, "name": sa.name, "stream": graph.stream_of(sa)},
            "second": {"tid": b, "name": sb.name, "stream": graph.stream_of(sb)},
        },
    )


def find_hazards(spans: Iterable[Span]) -> list[Finding]:
    """Report every RAW and WAW hazard in the schedule (empty list = race-free)."""
    graph = AccessGraph(spans)
    findings: list[Finding] = []
    for space in SPACES:
        tiles = set(graph.writes[space])
        for tile in sorted(tiles):
            writes = graph.writes[space].get(tile, [])
            reads = graph.reads[space].get(tile, [])
            for w in writes:
                for r in reads:
                    if r > w and not graph.reaches(w, r):
                        findings.append(
                            _pair_finding(graph, "raw", tile, space, w, r)
                        )
                for w2 in writes:
                    if w2 > w and not graph.reaches(w, w2):
                        findings.append(
                            _pair_finding(graph, "waw", tile, space, w, w2)
                        )
    return findings
