"""Happens-before model over a recorded schedule.

The drivers annotate every task touching matrix state with the event-protocol
meta keys of :mod:`repro.desim.trace` (``tile_reads``/``tile_writes``/
``tile_verifies`` for data tiles, ``chk_reads``/``chk_writes`` for checksum
strips).  :class:`AccessGraph` ingests the resulting spans and answers the
one question every protocol rule reduces to: *does event A happen before
event B in every legal execution of this dependency graph?*

Reachability uses ancestor bitsets: task ids are assigned in launch order and
dependencies always point at smaller tids, so tid order is a topological
order and each span's ancestor set is the union of its dependencies'
ancestor sets plus the dependencies themselves.  Bitsets are plain Python
ints — OR-ing two 10⁴-bit ints is a single C-level operation, which keeps
the whole-schedule analysis comfortably subsecond.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.desim.trace import (
    META_CHK_READS,
    META_CHK_WRITES,
    META_ITERATION,
    META_STREAM,
    META_TILE_READS,
    META_TILE_VERIFIES,
    META_TILE_WRITES,
    Span,
)

Tile = tuple[int, int]

#: The two address spaces the event protocol distinguishes.
SPACES = ("data", "chk")

_READ_KEYS = {"data": META_TILE_READS, "chk": META_CHK_READS}
_WRITE_KEYS = {"data": META_TILE_WRITES, "chk": META_CHK_WRITES}


def _normalize_tiles(value: object) -> list[Tile]:
    """Meta tile lists survive a JSON round-trip as lists of lists — accept
    any iterable of 2-sequences and return canonical ``(int, int)`` tuples."""
    if value is None:
        return []
    tiles: list[Tile] = []
    for item in value:  # type: ignore[union-attr]
        a, b = item
        tiles.append((int(a), int(b)))
    return tiles


@dataclass(frozen=True)
class Access:
    """One tile access by one span."""

    tid: int
    tile: Tile
    space: str


class AccessGraph:
    """Dependency reachability plus per-tile access indices for a schedule."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: list[Span] = sorted(spans, key=lambda s: s.tid)
        self._index: dict[int, int] = {s.tid: i for i, s in enumerate(self.spans)}
        self._anc = self._ancestor_bitsets()
        # space -> tile -> tids in tid (= topological) order
        self.reads: dict[str, dict[Tile, list[int]]] = {sp: {} for sp in SPACES}
        self.writes: dict[str, dict[Tile, list[int]]] = {sp: {} for sp in SPACES}
        self.verifies: dict[Tile, list[int]] = {}
        self._build_indices()

    # Construction ------------------------------------------------------------

    def _ancestor_bitsets(self) -> list[int]:
        anc: list[int] = [0] * len(self.spans)
        for i, span in enumerate(self.spans):
            bits = 0
            for dep in span.deps:
                j = self._index.get(dep)
                if j is None:
                    continue  # dep outside the analyzed window
                bits |= anc[j] | (1 << j)
            anc[i] = bits
        return anc

    def _build_indices(self) -> None:
        for span in self.spans:
            for space in SPACES:
                for tile in _normalize_tiles(span.meta.get(_READ_KEYS[space])):
                    self.reads[space].setdefault(tile, []).append(span.tid)
                for tile in _normalize_tiles(span.meta.get(_WRITE_KEYS[space])):
                    self.writes[space].setdefault(tile, []).append(span.tid)
            for tile in _normalize_tiles(span.meta.get(META_TILE_VERIFIES)):
                self.verifies.setdefault(tile, []).append(span.tid)

    # Queries -----------------------------------------------------------------

    def span(self, tid: int) -> Span:
        return self.spans[self._index[tid]]

    def reaches(self, a_tid: int, b_tid: int) -> bool:
        """True iff *a* happens-before *b* via the dependency graph.

        Strict: a span does not reach itself (POTF2 both reads and writes
        its diagonal tile in one span; the read sees the *pre*-write state).
        """
        ia, ib = self._index[a_tid], self._index[b_tid]
        return ia != ib and bool(self._anc[ib] >> ia & 1)

    def last_writes_before(self, tile: Tile, tid: int, space: str = "data") -> list[int]:
        """Maximal writes of *tile* ordered before span *tid*: writes W with
        ``reaches(W, tid)`` not themselves reached by a later such write."""
        prior = [w for w in self.writes[space].get(tile, []) if self.reaches(w, tid)]
        return [
            w
            for w in prior
            if not any(o != w and self.reaches(w, o) for o in prior)
        ]

    @staticmethod
    def iteration_of(span: Span) -> int | None:
        value = span.meta.get(META_ITERATION)
        return None if value is None else int(value)

    @staticmethod
    def stream_of(span: Span) -> str:
        return str(span.meta.get(META_STREAM, "?"))
