"""SARIF 2.1.0 output for lint findings (``--format sarif``).

Emits the minimal valid document CI annotation consumers (GitHub code
scanning and friends) require: ``$schema``/``version``, one run with a
tool driver listing every rule that executed, and one result per finding
with ``ruleId``, ``level``, ``message.text`` and a physical location.

:func:`validate_sarif` checks a document against an embedded *structural*
subset of the official 2.1.0 schema (the required properties and types
above) using the in-container ``jsonschema`` package — the full
canonical schema lives behind a network fetch this environment doesn't
have, and the subset pins exactly the shape our emitter and the tests
rely on.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.report import Finding

__all__ = ["SARIF_SCHEMA_URI", "render_sarif", "sarif_document", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Structural subset of the SARIF 2.1.0 schema: every property our
#: emitter writes, with the official "required" sets for the objects we
#: produce.  Validated with jsonschema (draft 2020-12 semantics).
SARIF_MINI_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": SARIF_VERSION},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {"type": "string"}
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type": "string"}
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

_LEVELS = {"error": "error", "info": "note"}


def _split_where(where: str) -> tuple[str, int]:
    """``"path/to/file.py:42"`` -> (uri, line); tolerates missing line."""
    path, sep, line = where.rpartition(":")
    if sep and line.isdigit():
        return path, max(1, int(line))
    return where, 1


def sarif_document(
    findings: list[Finding],
    rules: dict[str, str],
    tool_name: str = "repro-lint",
) -> dict[str, Any]:
    """Build the SARIF document as a dict.

    *rules* maps rule id -> description for every rule that *executed*
    (not just those that fired) — SARIF consumers use the driver rule
    list to render "checked but clean" state.
    """
    results = []
    for f in findings:
        uri, line = _split_where(f.where)
        results.append(
            {
                "ruleId": f.rule,
                "level": _LEVELS.get(f.severity, "warning"),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {"startLine": line},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {"id": rid, "shortDescription": {"text": desc}}
                            for rid, desc in sorted(rules.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: list[Finding],
    rules: dict[str, str],
    tool_name: str = "repro-lint",
) -> str:
    return json.dumps(sarif_document(findings, rules, tool_name), indent=2, sort_keys=True)


def validate_sarif(document: dict[str, Any] | str) -> None:
    """Raise ``jsonschema.ValidationError`` if *document* is not valid
    against the structural SARIF 2.1.0 subset."""
    import jsonschema

    if isinstance(document, str):
        document = json.loads(document)
    jsonschema.validate(instance=document, schema=SARIF_MINI_SCHEMA)
