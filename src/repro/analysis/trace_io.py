"""Trace (de)serialization for offline analysis.

``python -m repro analyze-trace`` can either shadow-run a scheme in-process
or analyze a previously dumped trace; this module defines that dump format:
a small JSON document with the scheme name and the full span list, meta and
dependency tids included.  Tile-coordinate tuples degrade to JSON arrays on
the way out; :func:`load_trace` restores them so a round-tripped timeline
analyzes identically to a live one.

Format history:

- **v1** — single-run dumps: ``{version, scheme, spans}``.
- **v2** — adds service-produced per-job traces: an optional top-level
  ``job`` id, and span meta may carry :data:`repro.desim.trace.META_JOB`
  (kept as a plain int on restore).  v1 documents still load — the reader
  accepts both versions, so pre-service dumps remain analyzable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.desim.trace import (
    META_CHK_READS,
    META_CHK_WRITES,
    META_JOB,
    META_TILE_READS,
    META_TILE_VERIFIES,
    META_TILE_WRITES,
    Span,
    Timeline,
)
from repro.util.exceptions import ValidationError

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_TILE_LIST_KEYS = (
    META_TILE_READS,
    META_TILE_WRITES,
    META_TILE_VERIFIES,
    META_CHK_READS,
    META_CHK_WRITES,
)


def dump_trace(
    timeline: Timeline, scheme: str, path: str | Path, job: int | None = None
) -> Path:
    """Write *timeline* (and the scheme that produced it) as JSON.

    *job* tags the document with the service job id that produced it; the
    per-span :data:`~repro.desim.trace.META_JOB` meta (if present) is
    serialized with the rest of the meta either way.
    """
    doc: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "scheme": scheme,
        "spans": [
            {
                "tid": s.tid,
                "name": s.name,
                "kind": s.kind,
                "resource": s.resource,
                "start": s.start,
                "finish": s.finish,
                "meta": s.meta,
                "deps": list(s.deps),
            }
            for s in timeline
        ],
    }
    if job is not None:
        doc["job"] = int(job)
    path = Path(path)
    path.write_text(json.dumps(doc))
    return path


def _restore_meta(meta: dict[str, Any]) -> dict[str, Any]:
    out = dict(meta)
    for key in _TILE_LIST_KEYS:
        if key in out and out[key] is not None:
            out[key] = [tuple(int(v) for v in item) for item in out[key]]
    if META_JOB in out and out[META_JOB] is not None:
        out[META_JOB] = int(out[META_JOB])
    return out


def load_trace(path: str | Path) -> tuple[Timeline, str]:
    """Read a dumped trace back as ``(timeline, scheme)`` (v1 and v2 docs)."""
    timeline, scheme, _ = load_trace_doc(path)
    return timeline, scheme


def load_trace_doc(path: str | Path) -> tuple[Timeline, str, int | None]:
    """Read a dumped trace as ``(timeline, scheme, job_id)``.

    ``job_id`` is ``None`` for v1 documents and v2 documents dumped outside
    the service.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or "spans" not in doc:
        raise ValidationError(f"{path}: not a repro trace dump")
    if doc.get("version") not in SUPPORTED_VERSIONS:
        raise ValidationError(
            f"{path}: trace format version {doc.get('version')!r}, "
            f"expected one of {SUPPORTED_VERSIONS}"
        )
    spans = [
        Span(
            tid=int(raw["tid"]),
            name=str(raw["name"]),
            kind=str(raw["kind"]),
            resource=raw["resource"],
            start=float(raw["start"]),
            finish=float(raw["finish"]),
            meta=_restore_meta(raw.get("meta", {})),
            deps=tuple(int(d) for d in raw.get("deps", ())),
        )
        for raw in doc["spans"]
    ]
    job = doc.get("job")
    return Timeline(spans), str(doc.get("scheme", "")), int(job) if job is not None else None
