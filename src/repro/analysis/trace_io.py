"""Trace (de)serialization for offline analysis.

``python -m repro analyze-trace`` can either shadow-run a scheme in-process
or analyze a previously dumped trace; this module defines that dump format:
a small JSON document with the scheme name and the full span list, meta and
dependency tids included.  Tile-coordinate tuples degrade to JSON arrays on
the way out; :func:`load_trace` restores them so a round-tripped timeline
analyzes identically to a live one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.desim.trace import (
    META_CHK_READS,
    META_CHK_WRITES,
    META_TILE_READS,
    META_TILE_VERIFIES,
    META_TILE_WRITES,
    Span,
    Timeline,
)
from repro.util.exceptions import ValidationError

FORMAT_VERSION = 1

_TILE_LIST_KEYS = (
    META_TILE_READS,
    META_TILE_WRITES,
    META_TILE_VERIFIES,
    META_CHK_READS,
    META_CHK_WRITES,
)


def dump_trace(timeline: Timeline, scheme: str, path: str | Path) -> Path:
    """Write *timeline* (and the scheme that produced it) as JSON."""
    doc = {
        "version": FORMAT_VERSION,
        "scheme": scheme,
        "spans": [
            {
                "tid": s.tid,
                "name": s.name,
                "kind": s.kind,
                "resource": s.resource,
                "start": s.start,
                "finish": s.finish,
                "meta": s.meta,
                "deps": list(s.deps),
            }
            for s in timeline
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(doc))
    return path


def _restore_meta(meta: dict[str, Any]) -> dict[str, Any]:
    out = dict(meta)
    for key in _TILE_LIST_KEYS:
        if key in out and out[key] is not None:
            out[key] = [tuple(int(v) for v in item) for item in out[key]]
    return out


def load_trace(path: str | Path) -> tuple[Timeline, str]:
    """Read a dumped trace back as ``(timeline, scheme)``."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or "spans" not in doc:
        raise ValidationError(f"{path}: not a repro trace dump")
    if doc.get("version") != FORMAT_VERSION:
        raise ValidationError(
            f"{path}: trace format version {doc.get('version')!r}, "
            f"expected {FORMAT_VERSION}"
        )
    spans = [
        Span(
            tid=int(raw["tid"]),
            name=str(raw["name"]),
            kind=str(raw["kind"]),
            resource=raw["resource"],
            start=float(raw["start"]),
            finish=float(raw["finish"]),
            meta=_restore_meta(raw.get("meta", {})),
            deps=tuple(int(d) for d in raw.get("deps", ())),
        )
        for raw in doc["spans"]
    ]
    return Timeline(spans), str(doc.get("scheme", ""))
