"""Static analyzers for the ABFT protocol, schedules, and the repo itself.

Three analyzers, all runnable from the CLI:

- :mod:`repro.analysis.protocol` — walks a scheme run's recorded schedule
  (spans annotated with per-tile read/write/verify events) and checks the
  paper's ordering invariants: verified-read (Table I), checksum staleness,
  Opt-3 deferral legality, and final coverage.
- :mod:`repro.analysis.hazards` — a RAW/WAW race detector over the same
  schedule: conflicting tile accesses on concurrent streams with no
  dependency path between them.
- :mod:`repro.analysis.lint` — an ``ast``-based lint pass enforcing repo
  invariants (rule ids ``RPL001``–``RPL005``) with ``# noqa:``-style
  suppressions.

``python -m repro analyze-trace`` and ``python -m repro lint`` expose them
with text and ``--json`` reporters; error findings exit nonzero.
"""

from repro.analysis.hazards import find_hazards
from repro.analysis.lint import lint_paths
from repro.analysis.model import AccessGraph
from repro.analysis.protocol import check_protocol
from repro.analysis.report import Finding, render_json, render_text
from repro.analysis.trace_io import dump_trace, load_trace, load_trace_doc

__all__ = [
    "AccessGraph",
    "Finding",
    "check_protocol",
    "dump_trace",
    "find_hazards",
    "lint_paths",
    "load_trace",
    "load_trace_doc",
    "render_json",
    "render_text",
]
