"""Findings and reporters shared by all three analyzers.

A :class:`Finding` is one detected violation (or informational note).  The
text reporter prints one line per finding plus a summary; the JSON reporter
emits a machine-readable document for CI annotation.  Exit-code policy:
only ``error`` findings fail a run — ``info`` findings describe expected
properties of the analyzed scheme (e.g. Online's vulnerability windows).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.util.exceptions import ValidationError

SEVERITIES = ("error", "info")


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``rule`` is a stable identifier (``verified-read``, ``hazard-raw``,
    ``RPL001``, ...); ``where`` locates it — ``file:line`` for lint
    findings, span names for schedule findings; ``detail`` carries
    rule-specific structured context (tile, span tids, iterations).
    """

    rule: str
    severity: str
    message: str
    where: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValidationError(f"bad severity {self.severity!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
            "detail": self.detail,
        }


def error_count(findings: list[Finding]) -> int:
    return sum(1 for f in findings if f.severity == "error")


def render_text(findings: list[Finding], title: str = "analysis") -> str:
    """Human-readable report: one line per finding, errors first."""
    lines = []
    ordered = sorted(findings, key=lambda f: (f.severity != "error", f.rule, f.where))
    for f in ordered:
        lines.append(f"{f.severity.upper():5s} {f.rule}: {f.where}: {f.message}")
    errors = error_count(findings)
    infos = len(findings) - errors
    lines.append(
        f"{title}: {errors} error(s), {infos} info finding(s)"
        if findings
        else f"{title}: clean"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding], title: str = "analysis") -> str:
    """CI-friendly JSON document."""
    return json.dumps(
        {
            "title": title,
            "errors": error_count(findings),
            "infos": len(findings) - error_count(findings),
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
    )
