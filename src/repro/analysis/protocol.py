"""Static verifier for the paper's ABFT ordering invariants.

:func:`check_protocol` walks a recorded schedule (the spans of a scheme
run's :class:`~repro.desim.trace.Timeline`) and checks, purely from the
dependency graph, the properties Section III and Table I state about each
scheme:

**Verified-read.**  Every tile read by a factorization operation (SYRK,
GEMM, POTF2, TRSM) must be dominated by a verification of that tile issued
after the tile's last write, *in the same iteration* as the read.  Enhanced
is defined by this property; Online verifies after updates, so its reads
are covered only by a verification from an earlier iteration — the
*vulnerability window* between that verification and the read; Offline
leaves every read unverified until the final sweep.  The checker reports
each unguarded read with the tile and the (write, read) span pair bounding
its window.  For Enhanced, an unguarded read is an *error* unless it is a
legal Optimization-3 deferral: the reading operation is in
:data:`~repro.core.policy.DEFERRABLE_INPUT_KINDS` and the tile lies in the
strict lower triangle, where a deferred error stays one-per-column
correctable (reported as *info* instead).

**Checksum staleness.**  A verification recalculates checksums and compares
them with the maintained copies — meaningless if the maintained checksum of
a verified tile was last updated *before* some write the verification can
see.  For every verification V of tile T: if some write W of T ordered
before V has every checksum update of T (ordered before V) itself ordered
before W, the comparison runs against a stale checksum.  Checksum updates
unordered with W are counted as covering it: with Optimization 2 the
updating kernel runs on its own stream/the CPU concurrently with
verification issue order, and only the data-flow (both derive from the same
operation output) matters.

**Final coverage.**  Every tile's final value — each write not superseded
by a later ordered write — must be followed by some verification of that
tile, else an error in the finished factor escapes detection entirely.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.model import AccessGraph, Tile
from repro.analysis.report import Finding
from repro.core.policy import DEFERRABLE_INPUT_KINDS
from repro.desim.trace import Span
from repro.util.exceptions import ValidationError

SCHEMES = ("enhanced", "online", "offline")

#: Span kinds whose data-tile reads the verified-read rule covers.  The FT
#: machinery's own reads (checksum recalculation/updating, transfers) are
#: exempt: Table I's verification sets protect the *factorization*
#: operations' inputs, and the machinery reads tiles precisely in order to
#: protect them.
COMPUTE_KINDS = frozenset({"syrk", "gemm", "potf2", "trsm"})


def _verified_read(graph: AccessGraph, scheme: str) -> list[Finding]:
    findings: list[Finding] = []
    for span in graph.spans:
        if span.kind not in COMPUTE_KINDS:
            continue
        read_iter = graph.iteration_of(span)
        for tile in sorted(set(_data_reads(graph, span))):
            last_writes = graph.last_writes_before(tile, span.tid)
            if not last_writes:
                continue  # first touch: the read sees encoded/original data
            covering = [
                v
                for v in graph.verifies.get(tile, [])
                if graph.reaches(v, span.tid)
                and all(graph.reaches(w, v) for w in last_writes)
            ]
            if any(graph.iteration_of(graph.span(v)) == read_iter for v in covering):
                continue  # guarded: verified after the last write, this iteration
            flavor = "stale-verify" if covering else "unverified"
            write = graph.span(max(last_writes))
            findings.append(
                _classify_unguarded(scheme, span, write, tile, flavor)
            )
    return findings


def _classify_unguarded(
    scheme: str, read: Span, write: Span, tile: Tile, flavor: str
) -> Finding:
    window = (
        f"tile {tile}: window between write {write.name!r} (tid {write.tid}) "
        f"and read {read.name!r} (tid {read.tid})"
    )
    detail = {
        "tile": list(tile),
        "write": {"tid": write.tid, "name": write.name},
        "read": {"tid": read.tid, "name": read.name},
        "flavor": flavor,
    }
    if scheme == "enhanced":
        deferrable = read.kind in DEFERRABLE_INPUT_KINDS and tile[0] > tile[1]
        if deferrable:
            return Finding(
                rule="opt3-deferral",
                severity="info",
                message=f"deferred verification (Opt 3, correctable): {window}",
                where=read.name,
                detail=detail,
            )
        return Finding(
            rule="verified-read",
            severity="error",
            message=f"{flavor} read of a non-deferrable input: {window}",
            where=read.name,
            detail=detail,
        )
    if scheme == "online" and flavor == "unverified":
        return Finding(
            rule="verified-read",
            severity="error",
            message=f"read never post-update verified: {window}",
            where=read.name,
            detail=detail,
        )
    return Finding(
        rule="vuln-window",
        severity="info",
        message=f"vulnerability window ({flavor}): {window}",
        where=read.name,
        detail=detail,
    )


def _data_reads(graph: AccessGraph, span: Span) -> list[Tile]:
    return [t for t, tids in graph.reads["data"].items() if span.tid in tids]


def _checksum_staleness(graph: AccessGraph) -> list[Finding]:
    findings: list[Finding] = []
    for tile, verify_tids in sorted(graph.verifies.items()):
        writes = graph.writes["data"].get(tile, [])
        chk_writes = graph.writes["chk"].get(tile, [])
        for v in verify_tids:
            seen_updates = [u for u in chk_writes if graph.reaches(u, v)]
            for w in writes:
                if not graph.reaches(w, v):
                    continue
                # Covered unless every visible checksum update precedes W.
                if seen_updates and not all(
                    graph.reaches(u, w) for u in seen_updates
                ):
                    continue
                vs, ws = graph.span(v), graph.span(w)
                findings.append(
                    Finding(
                        rule="chk-stale",
                        severity="error",
                        message=(
                            f"tile {tile}: verification {vs.name!r} (tid {v}) sees "
                            f"write {ws.name!r} (tid {w}) but no checksum update "
                            "after it — comparison against a stale checksum"
                        ),
                        where=vs.name,
                        detail={
                            "tile": list(tile),
                            "verify": {"tid": v, "name": vs.name},
                            "write": {"tid": w, "name": ws.name},
                        },
                    )
                )
                break  # one stale write per (tile, verify) is enough
    return findings


def _final_coverage(graph: AccessGraph) -> list[Finding]:
    findings: list[Finding] = []
    for tile, writes in sorted(graph.writes["data"].items()):
        finals = [
            w
            for w in writes
            if not any(o != w and graph.reaches(w, o) for o in writes)
        ]
        for w in finals:
            if any(graph.reaches(w, v) for v in graph.verifies.get(tile, [])):
                continue
            ws = graph.span(w)
            findings.append(
                Finding(
                    rule="final-cover",
                    severity="error",
                    message=(
                        f"tile {tile}: final write {ws.name!r} (tid {w}) is never "
                        "followed by a verification — errors in the finished "
                        "factor escape detection"
                    ),
                    where=ws.name,
                    detail={"tile": list(tile), "write": {"tid": w, "name": ws.name}},
                )
            )
    return findings


def check_protocol(spans: Iterable[Span], scheme: str) -> list[Finding]:
    """Check a scheme run's schedule against the paper's ordering invariants.

    *spans* is a :class:`~repro.desim.trace.Timeline` or any iterable of
    spans carrying the event-protocol meta keys; *scheme* selects the
    expectations (``enhanced`` | ``online`` | ``offline``) as described in
    the module docstring.  Returns findings; ``error`` severity means the
    schedule violates its own scheme's contract, ``info`` documents the
    scheme's expected exposure (vulnerability windows, Opt-3 deferrals).
    """
    if scheme not in SCHEMES:
        raise ValidationError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    graph = AccessGraph(spans)
    findings = _verified_read(graph, scheme)
    findings += _checksum_staleness(graph)
    findings += _final_coverage(graph)
    return findings
