"""Figures 16/17: performance (GFLOPS) of MAGMA, CULA and the ABFT schemes.

Paper: "even with both computation error and memory error tolerance
capability, our Enhanced Online-ABFT is still faster than CULA on both
systems."
"""

import pytest
from conftest import save_artifact

from repro.experiments import performance


@pytest.fixture(scope="module")
def tardis_result():
    return performance.run("tardis")


@pytest.fixture(scope="module")
def bulldozer_result():
    return performance.run("bulldozer64")


def test_regenerate_fig16(benchmark, results_dir):
    res = benchmark.pedantic(performance.run, args=("tardis",), rounds=1, iterations=1)
    save_artifact(
        results_dir, "fig16_performance_tardis.txt",
        res.render("Figure 16 — GFLOPS on Tardis"),
    )


def test_regenerate_fig17(benchmark, results_dir):
    res = benchmark.pedantic(
        performance.run, args=("bulldozer64",), rounds=1, iterations=1
    )
    save_artifact(
        results_dir, "fig17_performance_bulldozer.txt",
        res.render("Figure 17 — GFLOPS on Bulldozer64"),
    )


@pytest.mark.parametrize("fixture_name", ["tardis_result", "bulldozer_result"])
def test_enhanced_beats_cula_everywhere(fixture_name, request):
    res = request.getfixturevalue(fixture_name)
    for e, c in zip(res.gflops["enhanced"], res.gflops["cula"]):
        assert e > c


@pytest.mark.parametrize("fixture_name", ["tardis_result", "bulldozer_result"])
def test_ft_schemes_close_to_magma(fixture_name, request):
    res = request.getfixturevalue(fixture_name)
    for scheme in ("offline", "online", "enhanced"):
        assert res.gflops[scheme][-1] > 0.9 * res.gflops["magma"][-1]


def test_sustained_rates_near_paper(tardis_result, bulldozer_result):
    """Paper-implied sustained rates: ≈270-300 GFLOPS on Tardis at n=20480,
    ≈1100-1200 GFLOPS on Bulldozer64 at n=30720."""
    idx_t = tardis_result.sizes.index(20480)
    assert 250 < tardis_result.gflops["magma"][idx_t] < 330
    idx_b = bulldozer_result.sizes.index(30720)
    assert 1000 < bulldozer_result.gflops["magma"][idx_b] < 1250
