"""Service scaling: execution backends × pool widths, with gates.

Regenerates ``results/BENCH_service.json`` — the multicore counterpart of
the hotpath perf trajectory.  Three assertions ride along:

- **determinism, always**: per-job results and raw factor bits are
  identical across inline/thread/process, whatever the host;
- **scaling, when the host can show it**: on a ≥ 4-core machine the
  process pool at 4 workers must clear 1.5× the 1-worker jobs/sec, and
  the job-size grid's largest order must run at least as fast through
  the process pool as inline (the dispatch-amortization crossover).  On
  smaller hosts (CI runners, laptops on battery) both gates are
  *skipped with a visible notice* — a 1-core box measuring no speedup
  is the expected physics, not a regression.

The grid here uses deliberately small orders so the benchmark stays
quick; the committed ``BENCH_service.json`` carries the full
256–2048 sweep from ``python -m repro bench --service``.
"""

from __future__ import annotations

import json
import os

import pytest
from conftest import save_artifact

from repro.experiments import scaling

_MIN_CORES = 4
_MIN_SPEEDUP = 1.5
#: Small orders keep the benchmark affordable; real crossover hunting
#: happens in the CLI run with the DEFAULT_GRID_SIZES sweep.
_GRID_SIZES = (64, 128)


@pytest.fixture(scope="module")
def scaling_doc():
    return scaling.run(jobs=8, workers=(1, 2, 4), grid_sizes=_GRID_SIZES, grid_jobs=2)


def test_regenerate_bench_service(benchmark, results_dir):
    doc = benchmark.pedantic(
        scaling.run,
        kwargs={"jobs": 4, "workers": (1, 2), "grid_sizes": ()},
        rounds=1,
        iterations=1,
    )
    assert all(doc["bit_identical"].values())
    assert doc["size_grid"] is None  # grid_sizes=() skips the sweep


def test_write_service_artifacts(scaling_doc, results_dir):
    save_artifact(
        results_dir,
        "BENCH_service.json",
        json.dumps(scaling_doc, indent=2, sort_keys=True),
    )
    save_artifact(results_dir, "service_scaling_summary.txt", scaling.render(scaling_doc))


def test_backends_bit_identical(scaling_doc):
    """The determinism half of the contract holds on every host."""
    assert scaling_doc["bit_identical"]["job_results"]
    assert scaling_doc["bit_identical"]["factors"]


def test_every_cell_completed_all_jobs(scaling_doc):
    for cells in scaling_doc["grid"].values():
        for cell in cells.values():
            assert cell["completed"] == scaling_doc["jobs_per_cell"]


def test_size_grid_measures_both_backends(scaling_doc):
    grid = scaling_doc["size_grid"]
    assert grid["sizes"] == sorted(_GRID_SIZES)
    for backend in ("inline", "process"):
        for n in grid["sizes"]:
            cell = grid["cells"][backend][str(n)]
            assert cell["completed"] == grid["jobs_per_cell"]
            assert cell["jobs_per_s"] > 0
    # The crossover fields are present whatever the host measured;
    # "process never wins" is a legal answer (None), not a schema hole.
    assert "measured_crossover_n" in grid
    assert "predicted_crossover_n" in grid
    assert grid["overhead_process_s"] >= 0.0


def test_load_service_doc_backfills_schema_1(tmp_path):
    legacy = {"schema": 1, "grid": {}, "speedup_vs_1_worker": {}}
    path = tmp_path / "BENCH_service.json"
    path.write_text(json.dumps(legacy))
    doc = scaling.load_service_doc(path)
    assert doc["size_grid"] is None  # backfilled, so consumers need no probing

    newer = dict(legacy, schema=scaling.SCHEMA_VERSION + 1)
    path.write_text(json.dumps(newer))
    with pytest.raises(Exception, match="newer"):
        scaling.load_service_doc(path)


def test_process_pool_scales_on_multicore_hosts(scaling_doc):
    cores = os.cpu_count() or 1
    if cores < _MIN_CORES:
        pytest.skip(
            f"NOTICE: host has {cores} core(s) (< {_MIN_CORES}); the "
            f"{_MIN_SPEEDUP:g}x process-scaling gate needs real parallelism "
            "and is skipped here"
        )
    ratio = scaling_doc["speedup_vs_1_worker"]["process"]
    assert ratio >= _MIN_SPEEDUP, (
        f"process pool at 4 workers reached only {ratio:.2f}x the 1-worker "
        f"throughput on a {cores}-core host (gate: {_MIN_SPEEDUP:g}x)"
    )


def test_process_beats_inline_at_the_largest_grid_size(scaling_doc):
    cores = os.cpu_count() or 1
    if cores < _MIN_CORES:
        pytest.skip(
            f"NOTICE: host has {cores} core(s) (< {_MIN_CORES}); the "
            "inline-vs-process crossover gate needs real parallelism "
            "and is skipped here"
        )
    grid = scaling_doc["size_grid"]
    top = str(max(grid["sizes"]))
    inline_jps = grid["cells"]["inline"][top]["jobs_per_s"]
    process_jps = grid["cells"]["process"][top]["jobs_per_s"]
    assert process_jps >= inline_jps, (
        f"process pool served {process_jps:.2f} jobs/s at n={top}, below "
        f"inline's {inline_jps:.2f} on a {cores}-core host"
    )
