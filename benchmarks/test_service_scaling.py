"""Service scaling: execution backends × pool widths, with gates.

Regenerates ``results/BENCH_service.json`` — the multicore counterpart of
the hotpath perf trajectory.  Two assertions ride along:

- **determinism, always**: per-job results and raw factor bits are
  identical across inline/thread/process, whatever the host;
- **scaling, when the host can show it**: on a ≥ 4-core machine the
  process pool at 4 workers must clear 1.5× the 1-worker jobs/sec.  On
  smaller hosts (CI runners, laptops on battery) the gate is *skipped
  with a visible notice* — a 1-core box measuring no speedup is the
  expected physics, not a regression.
"""

from __future__ import annotations

import json
import os

import pytest
from conftest import save_artifact

from repro.experiments import scaling

_MIN_CORES = 4
_MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def scaling_doc():
    return scaling.run(jobs=8, workers=(1, 2, 4))


def test_regenerate_bench_service(benchmark, results_dir):
    doc = benchmark.pedantic(
        scaling.run,
        kwargs={"jobs": 4, "workers": (1, 2)},
        rounds=1,
        iterations=1,
    )
    assert all(doc["bit_identical"].values())


def test_write_service_artifacts(scaling_doc, results_dir):
    save_artifact(
        results_dir,
        "BENCH_service.json",
        json.dumps(scaling_doc, indent=2, sort_keys=True),
    )
    save_artifact(results_dir, "service_scaling_summary.txt", scaling.render(scaling_doc))


def test_backends_bit_identical(scaling_doc):
    """The determinism half of the contract holds on every host."""
    assert scaling_doc["bit_identical"]["job_results"]
    assert scaling_doc["bit_identical"]["factors"]


def test_every_cell_completed_all_jobs(scaling_doc):
    for cells in scaling_doc["grid"].values():
        for cell in cells.values():
            assert cell["completed"] == scaling_doc["jobs_per_cell"]


def test_process_pool_scales_on_multicore_hosts(scaling_doc):
    cores = os.cpu_count() or 1
    if cores < _MIN_CORES:
        pytest.skip(
            f"NOTICE: host has {cores} core(s) (< {_MIN_CORES}); the "
            f"{_MIN_SPEEDUP:g}x process-scaling gate needs real parallelism "
            "and is skipped here"
        )
    ratio = scaling_doc["speedup_vs_1_worker"]["process"]
    assert ratio >= _MIN_SPEEDUP, (
        f"process pool at 4 workers reached only {ratio:.2f}x the 1-worker "
        f"throughput on a {cores}-core host (gate: {_MIN_SPEEDUP:g}x)"
    )
